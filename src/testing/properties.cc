#include "testing/properties.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "ast/printer.h"
#include "constraint/decision_cache.h"
#include "constraint/implication.h"
#include "core/equivalence.h"
#include "eval/retract.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "service/replica.h"
#include "service/scheduler.h"
#include "testing/oracle.h"
#include "transform/pipeline.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace testing {
namespace {

EvalOptions EngineOptions(const FuzzOptions& fo, EvalStrategy strategy,
                          int threads = 0) {
  EvalOptions opts;
  opts.max_iterations = fo.eval_max_iterations;
  opts.subsumption = fo.subsumption;
  opts.strategy = strategy;
  // 0 (the default) defers to the harness-wide knob; properties that pin a
  // specific count (strategy_confluence) pass it explicitly.
  opts.threads = threads > 0 ? threads : fo.eval_threads;
  opts.prepass = fo.prepass;
  return opts;
}

/// Key + birth of every stored fact, in storage order — the byte-level
/// fingerprint the deterministic-parallelism contract promises is thread-
/// count independent (seminaive.h EvalOptions::threads).
std::string StorageFingerprint(const EvalResult& r) {
  std::string out;
  for (const auto& [pred, rel] : r.db.relations()) {
    out += std::to_string(pred);
    out += '{';
    for (size_t i = 0; i < rel.size(); ++i) {
      out += rel.fact(i).Key();
      out += '@';
      out += std::to_string(rel.birth(i));
      out += ';';
    }
    out += '}';
  }
  return out;
}

std::string CountsByPred(const std::map<PredId, std::vector<Fact>>& m) {
  std::string out;
  for (const auto& [pred, facts] : m) {
    if (facts.empty()) continue;
    if (!out.empty()) out += " ";
    out += "p" + std::to_string(pred) + "=" + std::to_string(facts.size());
  }
  return out.empty() ? "(empty)" : out;
}

// ---------------------------------------------------------------------------
// oracle_equiv: the optimized engine against the naive reference oracle.

PropertyOutcome OracleEquiv(const FuzzCase& c, const FuzzOptions& fo) {
  auto eval = Evaluate(c.program, BuildDatabase(c),
                       EngineOptions(fo, EvalStrategy::kSemiNaive));
  if (!eval.ok()) {
    return PropertyOutcome::Fail("engine rejected generated program: " +
                                 eval.status().message());
  }
  auto oracle = OracleEvaluate(c.program, c.edb);
  if (!oracle.ok()) {
    return PropertyOutcome::Fail("oracle rejected generated program: " +
                                 oracle.status().message());
  }
  if (!eval->stats.reached_fixpoint || !oracle->reached_fixpoint) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }
  auto engine_map = EvalToMap(*eval);
  if (!SameDenotation(engine_map, oracle->facts)) {
    return PropertyOutcome::Fail(
        "engine and oracle denotations differ: engine " +
        CountsByPred(engine_map) + " vs oracle " +
        CountsByPred(oracle->facts));
  }
  auto engine_answers = QueryAnswers(*eval, c.query);
  auto oracle_answers = OracleQueryAnswers(*oracle, c.query);
  if (!engine_answers.ok() || !oracle_answers.ok()) {
    return PropertyOutcome::Fail("answer extraction failed");
  }
  if (!SameAnswers(*engine_answers, *oracle_answers)) {
    return PropertyOutcome::Fail(
        "query answers differ: engine " +
        std::to_string(engine_answers->size()) + " vs oracle " +
        std::to_string(oracle_answers->size()));
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// strategy_confluence: every strategy and thread count, one fixpoint.

PropertyOutcome StrategyConfluence(const FuzzCase& c, const FuzzOptions& fo) {
  Database db = BuildDatabase(c);
  struct Run {
    const char* name;
    EvalStrategy strategy;
    int threads;
  };
  const Run runs[] = {
      {"naive", EvalStrategy::kNaive, 1},
      {"semi-naive", EvalStrategy::kSemiNaive, 1},
      {"stratified", EvalStrategy::kStratified, 1},
      {"stratified-t2", EvalStrategy::kStratified, 2},
      {"stratified-t8", EvalStrategy::kStratified, 8},
  };
  std::vector<EvalResult> results;
  for (const Run& run : runs) {
    auto r = Evaluate(c.program, db,
                      EngineOptions(fo, run.strategy, run.threads));
    if (!r.ok()) {
      return PropertyOutcome::Fail(std::string(run.name) +
                                   " evaluation failed: " +
                                   r.status().message());
    }
    if (!r->stats.reached_fixpoint) {
      return PropertyOutcome::Skip(std::string(run.name) +
                                   " hit the iteration cap");
    }
    results.push_back(std::move(*r));
  }
  auto baseline = EvalToMap(results[1]);  // semi-naive
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 1) continue;
    auto other = EvalToMap(results[i]);
    if (!SameDenotation(baseline, other)) {
      return PropertyOutcome::Fail(std::string(runs[i].name) +
                                   " disagrees with semi-naive: " +
                                   CountsByPred(other) + " vs " +
                                   CountsByPred(baseline));
    }
  }
  // The parallel contract is stronger than semantic agreement: identical
  // storage (fact keys, order, birth stamps) at every thread count.
  std::string serial = StorageFingerprint(results[2]);
  if (StorageFingerprint(results[3]) != serial) {
    return PropertyOutcome::Fail(
        "stratified t=2 storage differs from serial");
  }
  if (StorageFingerprint(results[4]) != serial) {
    return PropertyOutcome::Fail(
        "stratified t=8 storage differs from serial");
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// rewrite_equiv: Section 7 pipelines preserve the query's answers.

/// `conj` minus its last linear atom — the planted "widened rule" bug.
Conjunction DropLastLinearAtom(const Conjunction& conj) {
  Conjunction out;
  const auto& linear = conj.linear();
  for (size_t i = 0; i + 1 < linear.size(); ++i) {
    (void)out.AddLinear(linear[i]);
  }
  for (const auto& [a, b] : conj.EqualityPairs()) (void)out.AddEquality(a, b);
  for (const auto& [v, s] : conj.SymbolBindings()) (void)out.BindSymbol(v, s);
  return out;
}

/// Applies the planted bug to a rewritten program (in place). Returns false
/// when the program offers no mutation site (nothing planted).
bool PlantBug(PlantedBug bug, Program* program) {
  if (bug == PlantedBug::kDropRule) {
    if (program->rules.size() <= 1) return false;
    program->rules.pop_back();
    return true;
  }
  if (bug == PlantedBug::kDropConstraintAtom) {
    for (Rule& rule : program->rules) {
      if (!rule.constraints.linear().empty()) {
        rule.constraints = DropLastLinearAtom(rule.constraints);
        return true;
      }
    }
    return false;
  }
  return false;
}

PropertyOutcome RewriteEquiv(const FuzzCase& c, const FuzzOptions& fo) {
  Database db = BuildDatabase(c);
  auto base = Evaluate(c.program, db,
                       EngineOptions(fo, EvalStrategy::kSemiNaive));
  if (!base.ok()) {
    return PropertyOutcome::Fail("baseline evaluation failed: " +
                                 base.status().message());
  }
  if (!base->stats.reached_fixpoint) {
    return PropertyOutcome::Skip("baseline hit the iteration cap");
  }
  auto base_answers = QueryAnswers(*base, c.query);
  if (!base_answers.ok()) {
    return PropertyOutcome::Fail("baseline answer extraction failed");
  }

  const char* specs[] = {"pred", "pred,qrp", "pred,qrp,mg", "balbin"};
  int compared = 0;
  for (const char* spec : specs) {
    auto steps = ParseSteps(spec);
    if (!steps.ok()) {
      return PropertyOutcome::Fail(std::string("ParseSteps(") + spec +
                                   ") failed");
    }
    PipelineOptions popts;
    auto rewritten = ApplyPipeline(c.program, c.query, *steps, popts);
    if (!rewritten.ok()) continue;  // clean rejection: not every pipeline
                                    // accepts every program shape
    Program program = std::move(rewritten->program);
    if (fo.bug != PlantedBug::kNone && std::string(spec) == "pred,qrp") {
      (void)PlantBug(fo.bug, &program);
    }
    auto eval = Evaluate(program, db,
                         EngineOptions(fo, EvalStrategy::kStratified));
    if (!eval.ok()) {
      // A pipeline must emit programs the engine accepts; a rejection here
      // is a transform bug, not a skip.
      return PropertyOutcome::Fail(std::string(spec) +
                                   " emitted a program the engine rejects: " +
                                   eval.status().message());
    }
    if (!eval->stats.reached_fixpoint) continue;  // strategy-dependent state
    auto answers = QueryAnswers(*eval, rewritten->query);
    if (!answers.ok()) {
      return PropertyOutcome::Fail(std::string(spec) +
                                   " answer extraction failed");
    }
    ++compared;
    if (!SameAnswers(*base_answers, *answers)) {
      return PropertyOutcome::Fail(
          std::string(spec) + " changed the query's answers: " +
          std::to_string(answers->size()) + " vs baseline " +
          std::to_string(base_answers->size()));
    }
  }
  if (compared == 0) {
    return PropertyOutcome::Skip("no pipeline produced a comparable run");
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// fm_projection: Π against a pointwise existential check.

/// The pin `$v = value` as a linear atom.
LinearConstraint PinAtom(VarId v, const Rational& value) {
  return LinearConstraint(LinearExpr::Var(v) - LinearExpr::Constant(value),
                          CmpOp::kEq);
}

PropertyOutcome FmProjection(const FuzzCase& c, const FuzzOptions& fo) {
  (void)fo;
  Rng rng(Rng::DeriveSeed(c.seed, 0xF11));
  ConstraintGenOptions cg;
  cg.num_vars = 4;
  cg.atoms = 3;
  cg.dense = true;  // mixed-coefficient atoms: the projection stress class

  Conjunction original;
  bool satisfiable = false;
  for (int attempt = 0; attempt < 8 && !satisfiable; ++attempt) {
    original = RandomConjunction(&rng, cg);
    satisfiable = original.IsSatisfiable();
  }
  if (!satisfiable) {
    return PropertyOutcome::Skip("no satisfiable conjunction in 8 draws");
  }

  auto projected = original.Project({1, 2});
  if (!projected.ok()) {
    return PropertyOutcome::Fail("Project failed: " +
                                 projected.status().message());
  }
  if (!Implies(original, *projected)) {
    return PropertyOutcome::Fail(
        "projection is not implied by the original: " + original.ToString() +
        " vs " + projected->ToString());
  }

  // Sample (x1, x2) points — integers and halves, so strict boundaries are
  // probed on both sides — and check that the projection holds at a point
  // exactly when some (x3, x4) completes it in the original. Both sides are
  // exact satisfiability calls, so any mismatch is a projection bug.
  std::vector<Rational> grid;
  for (int v : {-9, -4, -1, 0, 1, 4, 9}) grid.push_back(Rational(v));
  for (int v : {-9, -1, 1, 9}) grid.push_back(Rational(v) / Rational(2));
  for (const Rational& x1 : grid) {
    for (const Rational& x2 : grid) {
      Conjunction pinned_original = original;
      (void)pinned_original.AddLinear(PinAtom(1, x1));
      (void)pinned_original.AddLinear(PinAtom(2, x2));
      Conjunction pinned_projected = *projected;
      (void)pinned_projected.AddLinear(PinAtom(1, x1));
      (void)pinned_projected.AddLinear(PinAtom(2, x2));
      bool exists = pinned_original.IsSatisfiable();
      bool claimed = pinned_projected.IsSatisfiable();
      if (exists != claimed) {
        return PropertyOutcome::Fail(
            "projection disagrees at (" + x1.ToString() + ", " +
            x2.ToString() + "): exists=" + (exists ? "1" : "0") +
            " projected=" + (claimed ? "1" : "0") + " for " +
            original.ToString());
      }
    }
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// resume_scratch: incremental ingestion against a from-scratch run.

void SplitEdb(const FuzzCase& c, std::vector<Fact>* base,
              std::vector<Fact>* delta) {
  Rng rng(Rng::DeriveSeed(c.seed, 0x5EED));
  for (const Fact& fact : c.edb) {
    (rng.Chance(40) ? base : delta)->push_back(fact);
  }
}

PropertyOutcome ResumeScratch(const FuzzCase& c, const FuzzOptions& fo) {
  std::vector<Fact> base_facts, delta;
  SplitEdb(c, &base_facts, &delta);

  Database base_db;
  for (const Fact& fact : base_facts) base_db.AddFact(fact);
  auto base = Evaluate(c.program, base_db,
                       EngineOptions(fo, EvalStrategy::kStratified));
  if (!base.ok()) {
    return PropertyOutcome::Fail("base evaluation failed: " +
                                 base.status().message());
  }
  if (!base->stats.reached_fixpoint) {
    return PropertyOutcome::Skip("base hit the iteration cap");
  }
  auto resumed = ResumeEvaluate(c.program, std::move(*base), delta,
                                EngineOptions(fo, EvalStrategy::kStratified));
  if (!resumed.ok()) {
    return PropertyOutcome::Fail("ResumeEvaluate failed: " +
                                 resumed.status().message());
  }
  auto scratch = Evaluate(c.program, BuildDatabase(c),
                          EngineOptions(fo, EvalStrategy::kStratified));
  if (!scratch.ok()) {
    return PropertyOutcome::Fail("scratch evaluation failed: " +
                                 scratch.status().message());
  }
  if (!resumed->stats.reached_fixpoint || !scratch->stats.reached_fixpoint) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }
  auto resumed_map = EvalToMap(*resumed);
  auto scratch_map = EvalToMap(*scratch);
  if (!SameDenotation(resumed_map, scratch_map)) {
    return PropertyOutcome::Fail(
        "resumed and scratch denotations differ: resumed " +
        CountsByPred(resumed_map) + " vs scratch " +
        CountsByPred(scratch_map));
  }
  auto ra = QueryAnswers(*resumed, c.query);
  auto sa = QueryAnswers(*scratch, c.query);
  if (!ra.ok() || !sa.ok()) {
    return PropertyOutcome::Fail("answer extraction failed");
  }
  if (!SameAnswers(*ra, *sa)) {
    return PropertyOutcome::Fail("resumed answers differ from scratch: " +
                                 std::to_string(ra->size()) + " vs " +
                                 std::to_string(sa->size()));
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// service_roundtrip: the cqld line protocol against direct evaluation.

/// Parses `answers=N` out of a protocol OK line; -1 if absent.
int ParseAnswerCount(const std::string& line) {
  size_t pos = line.find("answers=");
  if (pos == std::string::npos) return -1;
  return std::atoi(line.c_str() + pos + 8);
}

/// Runs one QUERY line and extracts the sorted answer lines. Returns false
/// (with `error` set) on framing or protocol errors; `capped` is set when
/// the service reports a capped evaluation.
bool ServiceQuery(QueryService& service, const std::string& query_line,
                  std::vector<std::string>* answers, bool* capped,
                  std::string* error) {
  std::vector<std::string> out;
  HandleLine(service, "QUERY - " + query_line, &out);
  if (out.empty() || out.back() != "END") {
    *error = "response not END-terminated";
    return false;
  }
  if (out[0].rfind("OK", 0) != 0) {
    *error = "service error: " + out[0];
    return false;
  }
  *capped = out[0].find("fixpoint=0") != std::string::npos;
  int n = ParseAnswerCount(out[0]);
  if (n < 0 || static_cast<size_t>(n) + 2 != out.size()) {
    *error = "answers=N disagrees with the line count";
    return false;
  }
  answers->assign(out.begin() + 1, out.end() - 1);
  std::sort(answers->begin(), answers->end());
  return true;
}

/// Direct-evaluation answers, rendered and sorted like the service's.
Result<std::vector<std::string>> DirectAnswers(const FuzzCase& c,
                                               const FuzzOptions& fo,
                                               const Database& db,
                                               bool* capped) {
  CQLOPT_ASSIGN_OR_RETURN(
      EvalResult eval,
      Evaluate(c.program, db, EngineOptions(fo, EvalStrategy::kStratified)));
  *capped = !eval.stats.reached_fixpoint;
  CQLOPT_ASSIGN_OR_RETURN(std::vector<Fact> answers,
                          QueryAnswers(eval, c.query));
  std::vector<std::string> rendered;
  rendered.reserve(answers.size());
  for (const Fact& fact : answers) {
    rendered.push_back(fact.ToString(*c.program.symbols));
  }
  std::sort(rendered.begin(), rendered.end());
  return rendered;
}

PropertyOutcome ServiceRoundtrip(const FuzzCase& c, const FuzzOptions& fo) {
  std::vector<Fact> base_facts, delta;
  SplitEdb(c, &base_facts, &delta);

  Database base_db;
  for (const Fact& fact : base_facts) base_db.AddFact(fact);
  ServiceOptions sopts;
  sopts.eval = EngineOptions(fo, EvalStrategy::kStratified);
  auto service = QueryService::FromParts(c.program, base_db, sopts);
  if (!service.ok()) {
    return PropertyOutcome::Fail("FromParts failed: " +
                                 service.status().message());
  }

  std::string query_line = RenderQuery(c.query, *c.program.symbols);
  std::vector<std::string> served;
  bool served_capped = false;
  std::string error;
  if (!ServiceQuery(**service, query_line, &served, &served_capped, &error)) {
    return PropertyOutcome::Fail("protocol: " + error);
  }
  bool direct_capped = false;
  auto direct = DirectAnswers(c, fo, base_db, &direct_capped);
  if (!direct.ok()) {
    return PropertyOutcome::Fail("direct evaluation failed: " +
                                 direct.status().message());
  }
  if (served_capped || direct_capped) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }
  if (served != *direct) {
    return PropertyOutcome::Fail(
        "served answers differ from direct evaluation: " +
        std::to_string(served.size()) + " vs " +
        std::to_string(direct->size()));
  }

  if (delta.empty()) return PropertyOutcome::Ok();

  // Commit the delta through the protocol and re-query: the resumed answer
  // must match a from-scratch evaluation of the full EDB.
  std::string ingest = "INGEST";
  for (const Fact& fact : delta) {
    ingest += " " + fact.ToString(*c.program.symbols) + ".";
  }
  std::vector<std::string> out;
  HandleLine(**service, ingest, &out);
  if (out.empty() || out[0].rfind("OK", 0) != 0) {
    return PropertyOutcome::Fail(
        "INGEST rejected: " + (out.empty() ? std::string("(no response)")
                                           : out[0]));
  }
  if (!ServiceQuery(**service, query_line, &served, &served_capped, &error)) {
    return PropertyOutcome::Fail("protocol after ingest: " + error);
  }
  auto full = DirectAnswers(c, fo, BuildDatabase(c), &direct_capped);
  if (!full.ok()) {
    return PropertyOutcome::Fail("full evaluation failed: " +
                                 full.status().message());
  }
  if (served_capped || direct_capped) {
    return PropertyOutcome::Skip("iteration cap hit after ingest");
  }
  if (served != *full) {
    return PropertyOutcome::Fail(
        "post-ingest answers differ from scratch evaluation: " +
        std::to_string(served.size()) + " vs " +
        std::to_string(full->size()));
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// retract_vs_scratch: RetractEvaluate against a scratch run on the
// surviving EDB.

/// Core stats whose values the retract contract pins to the scratch run
/// (work counters accumulate and are deliberately excluded).
std::string ShapeStats(const EvalStats& s) {
  std::string out = std::to_string(s.iterations) + "/" +
                    (s.reached_fixpoint ? "1" : "0") + "/" +
                    (s.all_ground ? "1" : "0") + "/[";
  for (long it : s.scc_iterations) out += std::to_string(it) + ",";
  return out + "]";
}

PropertyOutcome RetractVsScratch(const FuzzCase& c, const FuzzOptions& fo) {
  std::vector<Fact> batch = GenerateRetractBatch(c, 0x4E7);
  if (batch.empty()) {
    return PropertyOutcome::Skip("EDB too small for a retract batch");
  }

  // Expected outcome, computed independently of RetractEvaluate: the batch
  // entries that name a stored (deduped) EDB row, first occurrence only.
  Database full_db = BuildDatabase(c);
  std::set<std::pair<PredId, std::string>> dead;
  std::set<std::pair<PredId, std::string>> named;
  int expect_removed = 0;
  for (const Fact& fact : batch) {
    named.insert({fact.pred, fact.Key()});
    const Relation* rel = full_db.Find(fact.pred);
    if (rel != nullptr && rel->RowOf(fact.Key()).has_value() &&
        dead.insert({fact.pred, fact.Key()}).second) {
      ++expect_removed;
    }
  }
  const int expect_missing = static_cast<int>(batch.size()) - expect_removed;
  // The protocol arm sees the batch after a text round-trip through the
  // loader, whose set semantics collapse within-batch repeats — only the
  // distinct named facts reach the service.
  const int wire_missing = static_cast<int>(named.size()) - expect_removed;
  Database surviving;
  for (const auto& [pred, rel] : full_db.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) {
      if (dead.count({pred, rel.fact(i).Key()}) == 0) {
        surviving.AddFact(rel.fact(i));
      }
    }
  }

  // Eval-level byte identity, both with traces (forces the conservative
  // prefix/full paths) and without (lets row-level counting splice): facts,
  // row order, births, traces, and shape stats must match a scratch run on
  // the surviving EDB exactly. A second retraction of the same batch must
  // be a pure no-op that only grows the miss counter — idempotence.
  for (bool tracing : {true, false}) {
    EvalOptions opts = EngineOptions(fo, EvalStrategy::kStratified);
    opts.record_trace = tracing;
    const char* arm = tracing ? "traced" : "untraced";
    auto base = Evaluate(c.program, full_db, opts);
    if (!base.ok()) {
      return PropertyOutcome::Fail("base evaluation failed: " +
                                   base.status().message());
    }
    if (!base->stats.reached_fixpoint) {
      return PropertyOutcome::Skip("base hit the iteration cap");
    }
    auto retracted = RetractEvaluate(c.program, std::move(*base), batch, opts);
    if (!retracted.ok()) {
      return PropertyOutcome::Fail("RetractEvaluate failed: " +
                                   retracted.status().message());
    }
    auto scratch = Evaluate(c.program, surviving, opts);
    if (!scratch.ok()) {
      return PropertyOutcome::Fail("scratch evaluation failed: " +
                                   scratch.status().message());
    }
    if (!retracted->stats.reached_fixpoint ||
        !scratch->stats.reached_fixpoint) {
      return PropertyOutcome::Skip("iteration cap hit before fixpoint");
    }
    if (retracted->stats.retracted_facts != expect_removed ||
        retracted->stats.retract_missing != expect_missing) {
      return PropertyOutcome::Fail(
          std::string(arm) + " arm miscounted the batch: removed " +
          std::to_string(retracted->stats.retracted_facts) + "/" +
          std::to_string(expect_removed) + ", missing " +
          std::to_string(retracted->stats.retract_missing) + "/" +
          std::to_string(expect_missing));
    }
    if (StorageFingerprint(*retracted) != StorageFingerprint(*scratch)) {
      return PropertyOutcome::Fail(
          std::string(arm) + " retract storage differs from scratch (path " +
          retracted->stats.retract_path + "): " +
          CountsByPred(EvalToMap(*retracted)) + " vs " +
          CountsByPred(EvalToMap(*scratch)));
    }
    if (tracing && RenderTrace(retracted->trace) != RenderTrace(scratch->trace)) {
      return PropertyOutcome::Fail(
          "retract derivation trace differs from scratch (path " +
          retracted->stats.retract_path + ")");
    }
    if (ShapeStats(retracted->stats) != ShapeStats(scratch->stats)) {
      return PropertyOutcome::Fail(
          std::string(arm) + " retract shape stats differ from scratch: " +
          ShapeStats(retracted->stats) + " vs " + ShapeStats(scratch->stats) +
          " (path " + retracted->stats.retract_path + ")");
    }
    auto again = RetractEvaluate(c.program, std::move(*retracted), batch, opts);
    if (!again.ok()) {
      return PropertyOutcome::Fail("second RetractEvaluate failed: " +
                                   again.status().message());
    }
    if (again->stats.retracted_facts != expect_removed ||
        again->stats.retract_missing !=
            expect_missing + static_cast<long>(batch.size())) {
      return PropertyOutcome::Fail(
          std::string(arm) +
          " re-retraction was not counted as all-missing");
    }
    if (StorageFingerprint(*again) != StorageFingerprint(*scratch)) {
      return PropertyOutcome::Fail(
          std::string(arm) + " re-retraction changed stored facts");
    }
  }

  // Service level: warm the prepared entry, RETRACT through the protocol
  // (so the epoch chain carries a retract delta the resume path must
  // honour), and require the re-served answers to match direct evaluation
  // of the surviving EDB.
  ServiceOptions sopts;
  sopts.eval = EngineOptions(fo, EvalStrategy::kStratified);
  auto service = QueryService::FromParts(c.program, full_db, sopts);
  if (!service.ok()) {
    return PropertyOutcome::Fail("FromParts failed: " +
                                 service.status().message());
  }
  std::string query_line = RenderQuery(c.query, *c.program.symbols);
  std::vector<std::string> served;
  bool capped = false;
  std::string error;
  if (!ServiceQuery(**service, query_line, &served, &capped, &error)) {
    return PropertyOutcome::Fail("pre-retract protocol: " + error);
  }
  std::string retract_line = "RETRACT";
  for (const Fact& fact : batch) {
    retract_line += " " + fact.ToString(*c.program.symbols) + ".";
  }
  std::vector<std::string> out;
  HandleLine(**service, retract_line, &out);
  if (out.empty() || out[0].rfind("OK", 0) != 0) {
    return PropertyOutcome::Fail(
        "RETRACT rejected: " +
        (out.empty() ? std::string("(no response)") : out[0]));
  }
  const std::string expect_ok = "OK removed=" + std::to_string(expect_removed) +
                                " missing=" + std::to_string(wire_missing);
  if (out[0].rfind(expect_ok, 0) != 0) {
    return PropertyOutcome::Fail("RETRACT miscounted over the protocol: '" +
                                 out[0] + "' vs '" + expect_ok + " ...'");
  }
  if (!ServiceQuery(**service, query_line, &served, &capped, &error)) {
    return PropertyOutcome::Fail("post-retract protocol: " + error);
  }
  bool direct_capped = false;
  auto direct = DirectAnswers(c, fo, surviving, &direct_capped);
  if (!direct.ok()) {
    return PropertyOutcome::Fail("direct surviving evaluation failed: " +
                                 direct.status().message());
  }
  if (capped || direct_capped) {
    return PropertyOutcome::Skip("iteration cap hit after retract");
  }
  if (served != *direct) {
    return PropertyOutcome::Fail(
        "post-retract served answers differ from the surviving EDB: " +
        std::to_string(served.size()) + " vs " +
        std::to_string(direct->size()));
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// scheduler_equiv: a random concurrent client schedule through the worker
// pool must leave the service observably equal to a serial replay.

PropertyOutcome SchedulerEquiv(const FuzzCase& c, const FuzzOptions& fo) {
  // Dedup the EDB by key and round-robin it into disjoint batches: each
  // batch is exactly one INGEST epoch, whatever order the pool commits
  // them in, so the epoch count is schedule-independent.
  std::vector<Fact> unique;
  {
    std::set<std::string> seen;
    for (const Fact& fact : c.edb) {
      if (seen.insert(fact.Key()).second) unique.push_back(fact);
    }
  }
  constexpr size_t kBatches = 3;
  std::vector<std::string> ingest_lines;
  for (size_t b = 0; b < kBatches; ++b) {
    std::string line = "INGEST";
    for (size_t i = b; i < unique.size(); i += kBatches) {
      line += " " + unique[i].ToString(*c.program.symbols) + ".";
    }
    if (line != "INGEST") ingest_lines.push_back(std::move(line));
  }

  ServiceOptions sopts;
  sopts.eval = EngineOptions(fo, EvalStrategy::kStratified);
  auto concurrent = QueryService::FromParts(c.program, Database(), sopts);
  if (!concurrent.ok()) {
    return PropertyOutcome::Fail("FromParts failed: " +
                                 concurrent.status().message());
  }
  std::string query_line = RenderQuery(c.query, *c.program.symbols);

  std::atomic<int> shed{0};
  std::mutex bad_mutex;
  std::vector<std::string> bad;
  {
    SchedulerOptions sched;
    const int worker_choices[] = {1, 2, 8};
    sched.workers = worker_choices[c.seed % 3];
    sched.queue_depth = 32;  // > total tasks: admission can never shed
    Scheduler scheduler(sched);
    auto submit = [&](const std::string& line, PriorityClass priority) {
      Scheduler::Task task;
      task.priority = priority;
      task.run = [&, line] {
        std::vector<std::string> out;
        HandleLine(**concurrent, line, &out);
        if (out.empty() || out.back() != "END" ||
            out[0].rfind("OK", 0) != 0) {
          std::lock_guard<std::mutex> hold(bad_mutex);
          bad.push_back(line + " -> " +
                        (out.empty() ? std::string("(no response)")
                                     : out[0]));
        }
      };
      task.shed = [&] { shed.fetch_add(1); };
      scheduler.TrySubmit(std::move(task));
    };
    // Two clients race: one commits the ingest epochs, one queries every
    // intermediate state. The scheduler (not the submission order) picks
    // the interleaving; mid-run answers are only checked for framing.
    std::thread ingester([&] {
      for (const std::string& line : ingest_lines) {
        submit(line, PriorityClass::kNormal);
      }
    });
    std::thread querier([&] {
      for (size_t i = 0; i <= ingest_lines.size(); ++i) {
        submit("QUERY - " + query_line, PriorityClass::kInteractive);
      }
    });
    ingester.join();
    querier.join();
    scheduler.Stop();  // drains every admitted task
  }
  if (shed.load() != 0) {
    return PropertyOutcome::Fail(
        "scheduler shed " + std::to_string(shed.load()) +
        " tasks below its admission bound");
  }
  if (!bad.empty()) {
    return PropertyOutcome::Fail("concurrent protocol error: " + bad[0]);
  }

  std::vector<std::string> concurrent_answers;
  bool concurrent_capped = false;
  std::string error;
  if (!ServiceQuery(**concurrent, query_line, &concurrent_answers,
                    &concurrent_capped, &error)) {
    return PropertyOutcome::Fail("protocol after concurrent run: " + error);
  }

  // Serial replay, built only after the pool drained: both services share
  // the program's SymbolTable, and interning is not synchronized across
  // service instances.
  auto serial = QueryService::FromParts(c.program, Database(), sopts);
  if (!serial.ok()) {
    return PropertyOutcome::Fail("serial FromParts failed: " +
                                 serial.status().message());
  }
  for (const std::string& line : ingest_lines) {
    std::vector<std::string> out;
    HandleLine(**serial, line, &out);
    if (out.empty() || out[0].rfind("OK", 0) != 0) {
      return PropertyOutcome::Fail(
          "serial INGEST rejected: " +
          (out.empty() ? std::string("(no response)") : out[0]));
    }
  }
  std::vector<std::string> serial_answers;
  bool serial_capped = false;
  if (!ServiceQuery(**serial, query_line, &serial_answers, &serial_capped,
                    &error)) {
    return PropertyOutcome::Fail("serial protocol: " + error);
  }
  if (concurrent_capped || serial_capped) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }
  if (concurrent_answers != serial_answers) {
    return PropertyOutcome::Fail(
        "concurrent answers differ from serial replay: " +
        std::to_string(concurrent_answers.size()) + " vs " +
        std::to_string(serial_answers.size()));
  }
  const auto expected_epoch = static_cast<int64_t>(ingest_lines.size());
  if ((*concurrent)->epoch() != expected_epoch ||
      (*serial)->epoch() != expected_epoch) {
    return PropertyOutcome::Fail(
        "epoch mismatch: concurrent " +
        std::to_string((*concurrent)->epoch()) + ", serial " +
        std::to_string((*serial)->epoch()) + ", expected " +
        std::to_string(expected_epoch));
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// crash_recovery: WAL durability under injected faults at every site.

/// A mkdtemp'd WAL directory, removed (known files + dir) on scope exit so
/// a million-iteration fuzz run does not litter /tmp.
struct TempWalDir {
  std::string path;
  TempWalDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/cqlopt-crash-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path.assign(buf.data());
  }
  ~TempWalDir() {
    if (path.empty()) return;
    for (const char* name : {"/wal.log", "/snapshot.cql", "/snapshot.tmp"}) {
      ::unlink((path + name).c_str());
    }
    ::rmdir(path.c_str());
  }
};

Result<std::unique_ptr<QueryService>> MakeWalService(const FuzzCase& c,
                                                     const FuzzOptions& fo,
                                                     const Database& base_db,
                                                     const std::string& dir) {
  ServiceOptions sopts;
  sopts.eval = EngineOptions(fo, EvalStrategy::kStratified);
  sopts.wal_dir = dir;
  return QueryService::FromParts(c.program, base_db, sopts);
}

/// The crash-recovery metamorphic property (`cqlfuzz --faults`): for every
/// WAL fail-point site and every ingest batch, crash the commit of that
/// batch at that site, recover a fresh service from the surviving files,
/// and require the recovered state to equal the never-crashed run —
/// batches whose record reached the log durably are recovered, a torn
/// record is truncated (and reported), and nothing else changes. The
/// scenario then finishes the remaining ingests and must converge to the
/// reference's final state. A seeded mid-run Compact() covers
/// snapshot-plus-tail-records recovery; eval/rule-alloc coverage at the end
/// checks an injected evaluation fault is a typed, non-poisoning error.
PropertyOutcome CrashRecovery(const FuzzCase& c, const FuzzOptions& fo) {
  // Partition the EDB into an initial database plus ingest batches of
  // genuinely new facts. (A batch that dedups to a no-op burns no epoch and
  // writes no record, so it could never crash — filter those out up front.)
  Rng rng(Rng::DeriveSeed(c.seed, 0xFA11));
  std::vector<Fact> initial;
  std::vector<std::vector<Fact>> raw(3);
  for (const Fact& fact : c.edb) {
    if (rng.Chance(30)) {
      initial.push_back(fact);
    } else {
      raw[static_cast<size_t>(rng.Uniform(0, 2))].push_back(fact);
    }
  }
  Database seen;
  Database base_db;
  for (const Fact& fact : initial) {
    if (seen.AddFact(fact) == InsertOutcome::kInserted) base_db.AddFact(fact);
  }
  std::vector<std::vector<Fact>> batches;
  for (std::vector<Fact>& candidates : raw) {
    std::vector<Fact> fresh;
    for (const Fact& fact : candidates) {
      if (seen.AddFact(fact) == InsertOutcome::kInserted) {
        fresh.push_back(fact);
      }
    }
    if (!fresh.empty()) batches.push_back(std::move(fresh));
  }
  if (batches.empty()) {
    return PropertyOutcome::Skip("EDB too small to form an ingest batch");
  }

  // The op script: growth, TTL'd growth, shrinkage, and an expiry sweep —
  // every WAL record kind a serving run can write. Retracting batch 0
  // right after it was ingested guarantees the retraction removes at least
  // one fact (burns an epoch and a WAL record, so an armed fail-point must
  // fire), and ticking past the 100ms TTL deadline drives the expire path
  // whenever a TTL batch exists (a trailing tick on single-batch cases
  // still logs a pure kTick record).
  struct CrashOp {
    enum class Kind { kIngest, kIngestTtl, kRetract, kTick };
    Kind kind;
    const std::vector<Fact>* facts = nullptr;
    int64_t ms = 0;
  };
  std::vector<Fact> ttl_head;  // stale-deadline probe: retracted pre-expiry
  std::vector<CrashOp> ops;
  ops.push_back({CrashOp::Kind::kIngest, &batches[0], 0});
  if (batches.size() > 1) {
    ops.push_back({CrashOp::Kind::kIngestTtl, &batches[1], 100});
  }
  ops.push_back({CrashOp::Kind::kRetract, &batches[0], 0});
  if (batches.size() > 1 && batches[1].size() > 1) {
    // Retract one TTL'd fact before its deadline: its deadline entry goes
    // stale, and the tick's sweep must skip it — in the original run and
    // byte-identically in every recovered one.
    ttl_head.push_back(batches[1].front());
    ops.push_back({CrashOp::Kind::kRetract, &ttl_head, 0});
  }
  ops.push_back({CrashOp::Kind::kTick, nullptr, 150});
  if (batches.size() > 2) {
    ops.push_back({CrashOp::Kind::kIngest, &batches[2], 0});
  }
  auto op_name = [](const CrashOp& op) -> const char* {
    switch (op.kind) {
      case CrashOp::Kind::kIngest: return "INGEST";
      case CrashOp::Kind::kIngestTtl: return "INGEST TTL";
      case CrashOp::Kind::kRetract: return "RETRACT";
      case CrashOp::Kind::kTick: return "TICK";
    }
    return "?";
  };
  auto apply_op = [](QueryService& service, const CrashOp& op) -> Status {
    switch (op.kind) {
      case CrashOp::Kind::kIngest:
        return service.IngestFacts(*op.facts).status();
      case CrashOp::Kind::kIngestTtl:
        return service.IngestTtlFacts(*op.facts, op.ms).status();
      case CrashOp::Kind::kRetract: {
        auto removed = service.RetractFacts(*op.facts);
        if (!removed.ok()) return removed.status();
        if (removed->removed == 0) {
          return Status::Internal(
              "RETRACT op removed nothing — no record to crash");
        }
        return Status::OK();
      }
      case CrashOp::Kind::kTick:
        return service.AdvanceClock(op.ms - service.now_ms()).status();
    }
    return Status::OK();
  };

  failpoint::DisarmAll();

  // Reference: the never-crashed run, WAL on (so it takes the exact
  // render/re-parse commit path recovery will replay). state_after[j] is
  // the rendered head state once j batches are committed.
  TempWalDir ref_dir;
  if (ref_dir.path.empty()) {
    return PropertyOutcome::Fail("mkdtemp failed for the reference WAL");
  }
  auto ref = MakeWalService(c, fo, base_db, ref_dir.path);
  if (!ref.ok()) {
    return PropertyOutcome::Fail("reference FromParts failed: " +
                                 ref.status().message());
  }
  std::vector<std::string> state_after;
  state_after.push_back((*ref)->RenderStateText());
  for (const CrashOp& op : ops) {
    Status committed = apply_op(**ref, op);
    if (!committed.ok()) {
      return PropertyOutcome::Fail(std::string("reference ") + op_name(op) +
                                   " failed: " + committed.message());
    }
    state_after.push_back((*ref)->RenderStateText());
  }
  std::string query_line = RenderQuery(c.query, *c.program.symbols);
  std::vector<std::string> ref_answers;
  bool capped = false;
  std::string error;
  if (!ServiceQuery(**ref, query_line, &ref_answers, &capped, &error)) {
    return PropertyOutcome::Fail("reference query: " + error);
  }
  if (capped) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }

  // The crash matrix: every WAL site x every op index — so every record
  // kind (insert, insert-ttl, retract, expire/tick) is crashed at every
  // site. Whether the crashed op survives recovery is the site's
  // documented semantics: a short write leaves a torn record (truncated on
  // recovery), the other three fire only after the record is durably in
  // the log.
  struct WalSite {
    const char* site;
    bool record_survives;
  };
  const WalSite kWalSites[] = {
      {failpoint::kWalShortWrite, false},
      {failpoint::kWalFsync, true},
      {failpoint::kWalCrashBeforeCommit, true},
      {failpoint::kWalCrashAfterCommit, true},
  };
  for (size_t s = 0; s < 4; ++s) {
    const WalSite& ws = kWalSites[s];
    for (size_t k = 0; k < ops.size(); ++k) {
      Rng srng(Rng::DeriveSeed(c.seed, 0xC0DE00 + s * 16 + k));
      TempWalDir dir;
      if (dir.path.empty()) {
        return PropertyOutcome::Fail("mkdtemp failed for a crash scenario");
      }
      auto victim = MakeWalService(c, fo, base_db, dir.path);
      if (!victim.ok()) {
        return PropertyOutcome::Fail("victim FromParts failed: " +
                                     victim.status().message());
      }
      // Seeded mid-run compaction: recovery must then stack the replayed
      // tail records on top of the snapshot. compact_before == k snapshots
      // immediately before the crashed append — the juiciest layout.
      const size_t compact_before =
          srng.Chance(50) ? static_cast<size_t>(
                                srng.Uniform(0, static_cast<int>(k)))
                          : k + 1;
      for (size_t j = 0; j < k; ++j) {
        if (j == compact_before) {
          Status compacted = (*victim)->Compact();
          if (!compacted.ok()) {
            return PropertyOutcome::Fail("pre-crash Compact failed: " +
                                         compacted.message());
          }
        }
        Status committed = apply_op(**victim, ops[j]);
        if (!committed.ok()) {
          return PropertyOutcome::Fail(std::string("pre-crash ") +
                                       op_name(ops[j]) +
                                       " failed: " + committed.message());
        }
      }
      if (compact_before == k) {
        Status compacted = (*victim)->Compact();
        if (!compacted.ok()) {
          return PropertyOutcome::Fail("pre-crash Compact failed: " +
                                       compacted.message());
        }
      }

      failpoint::Arm(ws.site);
      Status crashed = apply_op(**victim, ops[k]);
      failpoint::DisarmAll();
      if (crashed.ok()) {
        return PropertyOutcome::Fail(std::string(ws.site) +
                                     " was armed but op " +
                                     std::to_string(k) + " (" +
                                     op_name(ops[k]) + ") succeeded");
      }
      // "Crash": abandon the wreck — only the files survive.
      victim->reset();

      auto revived = MakeWalService(c, fo, base_db, dir.path);
      if (!revived.ok()) {
        return PropertyOutcome::Fail("revived FromParts failed: " +
                                     revived.status().message());
      }
      RecoverOutcome ro;
      Status recovered = (*revived)->Recover(&ro);
      if (!recovered.ok()) {
        return PropertyOutcome::Fail(
            std::string(ws.site) + " crash at op " + std::to_string(k) +
            " (" + op_name(ops[k]) +
            "): recovery failed: " + recovered.message());
      }
      const size_t committed_ops = k + (ws.record_survives ? 1 : 0);
      if (!ws.record_survives && ro.truncated_bytes <= 0) {
        return PropertyOutcome::Fail(
            std::string(ws.site) +
            ": expected a torn tail record, but recovery truncated nothing");
      }
      if (ws.record_survives && ro.truncated_bytes != 0) {
        return PropertyOutcome::Fail(
            std::string(ws.site) + ": recovery truncated " +
            std::to_string(ro.truncated_bytes) +
            " byte(s) of a record that should be intact");
      }
      std::string got = (*revived)->RenderStateText();
      if (got != state_after[committed_ops]) {
        return PropertyOutcome::Fail(
            std::string(ws.site) + " crash at op " + std::to_string(k) +
            " (" + op_name(ops[k]) +
            "): recovered state differs from the never-crashed state "
            "after " +
            std::to_string(committed_ops) + " ops (recovered " +
            got.substr(0, got.find('\n')) + ", expected " +
            state_after[committed_ops].substr(
                0, state_after[committed_ops].find('\n')) +
            ")");
      }

      // Finish the run: the recovered service must accept the remaining
      // ops and converge to the reference's final state.
      for (size_t j = committed_ops; j < ops.size(); ++j) {
        Status more = apply_op(**revived, ops[j]);
        if (!more.ok()) {
          return PropertyOutcome::Fail(
              std::string(ws.site) + ": post-recovery " + op_name(ops[j]) +
              " failed: " + more.message());
        }
      }
      if ((*revived)->RenderStateText() != state_after.back()) {
        return PropertyOutcome::Fail(
            std::string(ws.site) + " crash at op " + std::to_string(k) +
            " (" + op_name(ops[k]) +
            "): final state after post-recovery ops diverged from the "
            "never-crashed run");
      }
      // Once per site (on the last op), serve the query from the
      // recovered service — recovery must leave it fully operational.
      if (k + 1 == ops.size()) {
        std::vector<std::string> revived_answers;
        if (!ServiceQuery(**revived, query_line, &revived_answers, &capped,
                          &error)) {
          return PropertyOutcome::Fail(std::string(ws.site) +
                                       ": post-recovery query: " + error);
        }
        if (!capped && revived_answers != ref_answers) {
          return PropertyOutcome::Fail(
              std::string(ws.site) +
              ": post-recovery answers differ from the never-crashed run: " +
              std::to_string(revived_answers.size()) + " vs " +
              std::to_string(ref_answers.size()));
        }
      }
    }
  }

  // eval/rule-alloc: an injected allocation failure inside rule application
  // must surface as kResourceExhausted and leave the service healthy (the
  // next evaluation of the same query succeeds and matches a direct
  // evaluation of the probe's own database — the reference run has since
  // retracted and expired facts, so its answers are not the yardstick).
  bool probe_capped = false;
  auto probe_expected = DirectAnswers(c, fo, BuildDatabase(c), &probe_capped);
  if (!probe_expected.ok()) {
    return PropertyOutcome::Fail("probe direct evaluation failed: " +
                                 probe_expected.status().message());
  }
  ServiceOptions plain;
  plain.eval = EngineOptions(fo, EvalStrategy::kStratified);
  auto probe = QueryService::FromParts(c.program, BuildDatabase(c), plain);
  if (!probe.ok()) {
    return PropertyOutcome::Fail("probe FromParts failed: " +
                                 probe.status().message());
  }
  failpoint::Arm(failpoint::kEvalRuleAlloc, /*skip=*/0, /*times=*/0);
  auto denied = (*probe)->Execute(query_line, "");
  long alloc_hits = failpoint::Hits(failpoint::kEvalRuleAlloc);
  failpoint::DisarmAll();
  if (alloc_hits > 0) {
    if (denied.ok()) {
      return PropertyOutcome::Fail(
          "eval/rule-alloc was armed and hit, but Execute succeeded");
    }
    if (denied.status().code() != StatusCode::kResourceExhausted) {
      return PropertyOutcome::Fail(
          "eval/rule-alloc surfaced as " + denied.status().ToString() +
          ", expected RESOURCE_EXHAUSTED");
    }
    std::vector<std::string> healed;
    if (!ServiceQuery(**probe, query_line, &healed, &capped, &error)) {
      return PropertyOutcome::Fail("query after injected alloc failure: " +
                                   error);
    }
    if (!capped && !probe_capped && healed != *probe_expected) {
      return PropertyOutcome::Fail(
          "answers after an injected alloc failure differ from a direct "
          "evaluation: " +
          std::to_string(healed.size()) + " vs " +
          std::to_string(probe_expected->size()));
    }
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// replica_vs_primary: WAL-shipped replication under injected link faults.

/// One level of indirection between the Replicator and "the primary", so the
/// property can crash and re-open the primary service without rebuilding the
/// follower's Replicator — the stable-coordinates contract a real follower
/// relies on across a primary restart (recovery rebuilds the feed
/// byte-identically, so (base, index) stays valid).
class SlotReplicationSource : public ReplicationSource {
 public:
  explicit SlotReplicationSource(std::unique_ptr<QueryService>* slot)
      : slot_(slot) {}
  Status Fetch(int64_t base_epoch, uint64_t index, size_t max_records,
               ReplicationBatch* out) override {
    if (slot_->get() == nullptr) {
      return Status::Unavailable("primary is down");
    }
    LocalReplicationSource local(slot_->get());
    return local.Fetch(base_epoch, index, max_records, out);
  }

 private:
  std::unique_ptr<QueryService>* slot_;
};

/// The replication metamorphic property (DESIGN.md §15): run the crash-
/// recovery op script (insert, insert-ttl, retract, expire — every WAL
/// record kind) on a WAL-backed primary while a follower pulls the feed
/// through a seeded fault schedule — dropped fetches, torn records, crashes
/// before / mid / after apply, full follower restarts (recover own WAL,
/// re-bootstrap), primary crash-and-recovery, and mid-run compaction
/// (snapshot renegotiation). After every op the caught-up follower must be
/// BYTE-IDENTICAL to the primary (RenderStateText — epoch, clock, facts,
/// TTL deadlines) and at the end must serve the same answers, with ASOF
/// tokens at the head honoured and past it refused UNAVAILABLE. Then the
/// primary is killed with the follower one acknowledged write behind:
/// PROMOTE must drain the dead WAL's unconsumed suffix and land on the dead
/// primary's exact final state. Finally a deliberately tampered follower
/// must be quarantined by the next divergence check — reads refused with
/// typed DATA_LOSS, promotion refused — never serving wrong answers.
PropertyOutcome ReplicaVsPrimary(const FuzzCase& c, const FuzzOptions& fo) {
  // EDB partition + op script: same shape as crash_recovery, fresh salt so
  // the two properties stress different partitions of the same case.
  Rng rng(Rng::DeriveSeed(c.seed, 0x5EED5));
  std::vector<Fact> initial;
  std::vector<std::vector<Fact>> raw(3);
  for (const Fact& fact : c.edb) {
    if (rng.Chance(30)) {
      initial.push_back(fact);
    } else {
      raw[static_cast<size_t>(rng.Uniform(0, 2))].push_back(fact);
    }
  }
  Database seen;
  Database base_db;
  for (const Fact& fact : initial) {
    if (seen.AddFact(fact) == InsertOutcome::kInserted) base_db.AddFact(fact);
  }
  std::vector<std::vector<Fact>> batches;
  for (std::vector<Fact>& candidates : raw) {
    std::vector<Fact> fresh;
    for (const Fact& fact : candidates) {
      if (seen.AddFact(fact) == InsertOutcome::kInserted) {
        fresh.push_back(fact);
      }
    }
    if (!fresh.empty()) batches.push_back(std::move(fresh));
  }
  if (batches.empty()) {
    return PropertyOutcome::Skip("EDB too small to form an ingest batch");
  }
  struct RepOp {
    enum class Kind { kIngest, kIngestTtl, kRetract, kTick };
    Kind kind;
    const std::vector<Fact>* facts = nullptr;
    int64_t ms = 0;
  };
  std::vector<Fact> ttl_head;
  std::vector<RepOp> ops;
  ops.push_back({RepOp::Kind::kIngest, &batches[0], 0});
  if (batches.size() > 1) {
    ops.push_back({RepOp::Kind::kIngestTtl, &batches[1], 100});
  }
  ops.push_back({RepOp::Kind::kRetract, &batches[0], 0});
  if (batches.size() > 1 && batches[1].size() > 1) {
    ttl_head.push_back(batches[1].front());
    ops.push_back({RepOp::Kind::kRetract, &ttl_head, 0});
  }
  ops.push_back({RepOp::Kind::kTick, nullptr, 150});
  if (batches.size() > 2) {
    ops.push_back({RepOp::Kind::kIngest, &batches[2], 0});
  }
  auto apply_op = [](QueryService& service, const RepOp& op) -> Status {
    switch (op.kind) {
      case RepOp::Kind::kIngest:
        return service.IngestFacts(*op.facts).status();
      case RepOp::Kind::kIngestTtl:
        return service.IngestTtlFacts(*op.facts, op.ms).status();
      case RepOp::Kind::kRetract:
        return service.RetractFacts(*op.facts).status();
      case RepOp::Kind::kTick:
        return service.AdvanceClock(op.ms - service.now_ms()).status();
    }
    return Status::OK();
  };

  failpoint::DisarmAll();

  TempWalDir p_dir;
  TempWalDir f_dir;
  if (p_dir.path.empty() || f_dir.path.empty()) {
    return PropertyOutcome::Fail("mkdtemp failed for a replication WAL");
  }
  // Destruction order matters: the Replicator's destructor unhooks itself
  // from the follower, so it must be declared after (die before) it.
  std::unique_ptr<QueryService> primary;
  std::unique_ptr<QueryService> follower;
  std::unique_ptr<Replicator> replicator;
  {
    auto made = MakeWalService(c, fo, base_db, p_dir.path);
    if (!made.ok()) {
      return PropertyOutcome::Fail("primary FromParts failed: " +
                                   made.status().message());
    }
    primary = std::move(*made);
  }
  // The follower starts empty — everything it knows arrives by replication
  // (bootstrap installs the primary's snapshot, base EDB included).
  auto make_follower = [&]() -> Status {
    auto made = MakeWalService(c, fo, Database(), f_dir.path);
    if (!made.ok()) return made.status();
    follower = std::move(*made);
    CQLOPT_RETURN_IF_ERROR(follower->Recover());
    ReplicatorOptions ropts;
    ropts.max_records = static_cast<size_t>(rng.Uniform(1, 4));
    replicator = std::make_unique<Replicator>(
        follower.get(), std::make_unique<SlotReplicationSource>(&primary),
        ropts);
    replicator->AttachHooks();
    return Status::OK();
  };
  {
    Status made = make_follower();
    if (!made.ok()) {
      return PropertyOutcome::Fail("follower FromParts failed: " +
                                   made.message());
    }
  }
  // Drives Step() until a fetch returns level (0 records); injected faults
  // surface as retryable errors and are simply retried, which is exactly
  // what the backoff loop does minus the sleeping. Divergence (DATA_LOSS)
  // is never expected here and fails the property.
  auto catch_up = [&]() -> Status {
    for (int i = 0; i < 64; ++i) {
      Result<int> stepped = replicator->Step();
      if (!stepped.ok()) {
        if (stepped.status().code() == StatusCode::kDataLoss) {
          return stepped.status();
        }
        continue;
      }
      if (*stepped == 0) return Status::OK();
    }
    return Status::DeadlineExceeded("follower did not catch up in 64 steps");
  };

  for (size_t k = 0; k < ops.size(); ++k) {
    Rng srng(Rng::DeriveSeed(c.seed, 0x5EED00 + k));
    std::string where = "op " + std::to_string(k);
    // Seeded pre-op compaction: the follower's coordinates go stale and the
    // next fetch must renegotiate a snapshot.
    if (srng.Chance(25)) {
      Status compacted = primary->Compact();
      if (!compacted.ok()) {
        return PropertyOutcome::Fail(where + ": Compact failed: " +
                                     compacted.message());
      }
    }
    Status committed = apply_op(*primary, ops[k]);
    if (!committed.ok()) {
      return PropertyOutcome::Fail(where + ": primary op failed: " +
                                   committed.message());
    }
    // The fault schedule for this op's catch-up.
    const int fault = srng.Uniform(0, 8);
    switch (fault) {
      case 2:
        failpoint::Arm(failpoint::kReplicaFetch, /*skip=*/0,
                       /*times=*/srng.Uniform(1, 2));
        break;
      case 3:
        failpoint::Arm(failpoint::kReplicaTornRecord, /*skip=*/0, /*times=*/1);
        break;
      case 4:
        failpoint::Arm(failpoint::kReplicaCrashBeforeApply, /*skip=*/0,
                       /*times=*/1);
        break;
      case 5:
        failpoint::Arm(failpoint::kReplicaCrashMidApply, /*skip=*/0,
                       /*times=*/1);
        break;
      case 6:
        failpoint::Arm(failpoint::kReplicaCrashAfterApply, /*skip=*/0,
                       /*times=*/1);
        break;
      case 7: {
        // Primary crash: pulls while it is down must fail cleanly (typed,
        // not quarantine), and recovery must rebuild the feed so the
        // follower's coordinates keep working.
        std::string pre_crash = primary->RenderStateText();
        primary.reset();
        Result<int> down = replicator->Step();
        if (down.ok() ||
            down.status().code() == StatusCode::kDataLoss) {
          return PropertyOutcome::Fail(
              where + ": pull against a dead primary " +
              (down.ok() ? std::string("succeeded")
                         : "quarantined: " + down.status().message()));
        }
        auto revived = MakeWalService(c, fo, base_db, p_dir.path);
        if (!revived.ok()) {
          return PropertyOutcome::Fail(where + ": primary revive failed: " +
                                       revived.status().message());
        }
        primary = std::move(*revived);
        Status recovered = primary->Recover();
        if (!recovered.ok()) {
          return PropertyOutcome::Fail(where + ": primary recovery failed: " +
                                       recovered.message());
        }
        if (primary->RenderStateText() != pre_crash) {
          return PropertyOutcome::Fail(
              where + ": recovered primary differs from its pre-crash state");
        }
        break;
      }
      case 8: {
        // Follower crash: only its own WAL survives; the rebuilt follower
        // recovers from it and re-bootstraps (fresh coordinates).
        replicator.reset();
        follower.reset();
        Status made = make_follower();
        if (!made.ok()) {
          return PropertyOutcome::Fail(where + ": follower rebuild failed: " +
                                       made.message());
        }
        break;
      }
      default:
        break;  // 0, 1: fault-free catch-up
    }
    Status caught = catch_up();
    failpoint::DisarmAll();
    if (!caught.ok()) {
      return PropertyOutcome::Fail(where + " (fault " + std::to_string(fault) +
                                   "): catch-up failed: " + caught.message());
    }
    // A crash-site fault sometimes also restarts the follower afterwards —
    // the records applied before the "crash" must be durable in its WAL.
    if (fault >= 4 && fault <= 6 && srng.Chance(50)) {
      replicator.reset();
      follower.reset();
      Status made = make_follower();
      if (!made.ok()) {
        return PropertyOutcome::Fail(where + ": post-crash rebuild failed: " +
                                     made.message());
      }
      caught = catch_up();
      if (!caught.ok()) {
        return PropertyOutcome::Fail(where + ": post-crash catch-up failed: " +
                                     caught.message());
      }
    }
    std::string want = primary->RenderStateText();
    std::string got = follower->RenderStateText();
    if (got != want) {
      return PropertyOutcome::Fail(
          where + " (fault " + std::to_string(fault) +
          "): caught-up follower differs from primary (follower " +
          got.substr(0, got.find('\n')) + ", primary " +
          want.substr(0, want.find('\n')) + ")");
    }
    ReplicatorProgress progress = replicator->Progress();
    if (progress.lag_records != 0 || progress.quarantined) {
      return PropertyOutcome::Fail(
          where + ": progress after catch-up reports lag " +
          std::to_string(progress.lag_records) +
          (progress.quarantined ? " and quarantine" : ""));
    }
  }

  // Caught-up answers: byte-identical at the same epoch, and the ASOF
  // read-your-writes token honoured at the head / refused past it.
  std::string query_line = RenderQuery(c.query, *c.program.symbols);
  std::vector<std::string> primary_answers;
  std::vector<std::string> follower_answers;
  bool capped = false;
  std::string error;
  if (!ServiceQuery(*primary, query_line, &primary_answers, &capped, &error)) {
    return PropertyOutcome::Fail("primary query: " + error);
  }
  if (capped) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }
  if (!ServiceQuery(*follower, query_line, &follower_answers, &capped,
                    &error)) {
    return PropertyOutcome::Fail("follower query: " + error);
  }
  if (!capped && follower_answers != primary_answers) {
    return PropertyOutcome::Fail(
        "follower answers differ from the primary's at the same epoch: " +
        std::to_string(follower_answers.size()) + " vs " +
        std::to_string(primary_answers.size()));
  }
  auto asof_ok = follower->Execute(query_line, "", primary->epoch());
  if (!asof_ok.ok()) {
    return PropertyOutcome::Fail("ASOF at the caught-up epoch refused: " +
                                 asof_ok.status().message());
  }
  auto asof_ahead = follower->Execute(query_line, "", primary->epoch() + 1);
  if (asof_ahead.ok() ||
      asof_ahead.status().code() != StatusCode::kUnavailable) {
    return PropertyOutcome::Fail(
        "ASOF past the head should be typed UNAVAILABLE, got " +
        (asof_ahead.ok() ? std::string("OK")
                         : asof_ahead.status().ToString()));
  }

  // Failover: one more acknowledged write the follower never pulls, then
  // the primary dies. PROMOTE drains the dead WAL's unconsumed suffix —
  // the promoted node must land on the dead primary's exact final state
  // (epoch, clock, facts, and TTL deadlines; batch 0 was retracted above,
  // so re-ingesting it burns a real epoch and a real record).
  Status lag_write = apply_op(*primary, {RepOp::Kind::kIngest, &batches[0], 0});
  if (!lag_write.ok()) {
    return PropertyOutcome::Fail("lag write failed: " + lag_write.message());
  }
  std::string dead_state = primary->RenderStateText();
  std::vector<std::string> dead_answers;
  if (!ServiceQuery(*primary, query_line, &dead_answers, &capped, &error)) {
    return PropertyOutcome::Fail("pre-failover query: " + error);
  }
  primary.reset();
  Status promoted = follower->Promote(p_dir.path);
  if (!promoted.ok()) {
    return PropertyOutcome::Fail("PROMOTE failed: " + promoted.message());
  }
  if (follower->role() != NodeRole::kPrimary) {
    return PropertyOutcome::Fail("promoted node still reports role " +
                                 std::string(NodeRoleName(follower->role())));
  }
  if (follower->RenderStateText() != dead_state) {
    std::string got = follower->RenderStateText();
    return PropertyOutcome::Fail(
        "promoted state differs from the dead primary's final state "
        "(promoted " +
        got.substr(0, got.find('\n')) + ", dead " +
        dead_state.substr(0, dead_state.find('\n')) +
        ") — an acknowledged write was lost or resurrected");
  }
  std::vector<std::string> promoted_answers;
  if (!ServiceQuery(*follower, query_line, &promoted_answers, &capped,
                    &error)) {
    return PropertyOutcome::Fail("post-promote query: " + error);
  }
  if (!capped && promoted_answers != dead_answers) {
    return PropertyOutcome::Fail(
        "post-promote answers differ from the dead primary's: " +
        std::to_string(promoted_answers.size()) + " vs " +
        std::to_string(dead_answers.size()));
  }
  Status again = follower->Promote("");
  if (!again.ok()) {
    return PropertyOutcome::Fail("PROMOTE on a primary should be a no-op: " +
                                 again.message());
  }

  // Divergence detection: a second follower replicates from the promoted
  // node, is deliberately tampered with (a local clock tick the primary
  // never saw), and the very next level fetch must quarantine it — reads
  // fail typed DATA_LOSS, promotion is refused, pulls stay dead.
  std::unique_ptr<QueryService> tampered;
  {
    ServiceOptions plain;
    plain.eval = EngineOptions(fo, EvalStrategy::kStratified);
    auto made = QueryService::FromParts(c.program, Database(), plain);
    if (!made.ok()) {
      return PropertyOutcome::Fail("tamper follower FromParts failed: " +
                                   made.status().message());
    }
    tampered = std::move(*made);
  }
  Replicator tamper_rep(tampered.get(),
                        std::make_unique<SlotReplicationSource>(&follower));
  tamper_rep.AttachHooks();
  for (int i = 0; i < 64; ++i) {
    Result<int> stepped = tamper_rep.Step();
    if (!stepped.ok()) {
      return PropertyOutcome::Fail("tamper follower catch-up failed: " +
                                   stepped.status().message());
    }
    if (*stepped == 0) break;
  }
  auto tampered_tick = tampered->AdvanceClock(1);
  if (!tampered_tick.ok()) {
    return PropertyOutcome::Fail("tamper tick failed: " +
                                 tampered_tick.status().message());
  }
  Result<int> caught_diverging = tamper_rep.Step();
  if (caught_diverging.ok() ||
      caught_diverging.status().code() != StatusCode::kDataLoss) {
    return PropertyOutcome::Fail(
        "divergence went undetected: Step after tampering returned " +
        (caught_diverging.ok() ? std::string("OK")
                               : caught_diverging.status().ToString()));
  }
  if (!tampered->quarantined() || !tamper_rep.Progress().quarantined) {
    return PropertyOutcome::Fail(
        "diverged follower is not quarantined everywhere");
  }
  auto refused_read = tampered->Execute(query_line, "");
  if (refused_read.ok() ||
      refused_read.status().code() != StatusCode::kDataLoss) {
    return PropertyOutcome::Fail(
        "quarantined follower should refuse reads with DATA_LOSS, got " +
        (refused_read.ok() ? std::string("OK")
                           : refused_read.status().ToString()));
  }
  Status refused_promote = tampered->Promote("");
  if (refused_promote.ok() ||
      refused_promote.code() != StatusCode::kFailedPrecondition) {
    return PropertyOutcome::Fail(
        "quarantined follower should refuse PROMOTE with "
        "FAILED_PRECONDITION, got " +
        (refused_promote.ok() ? std::string("OK")
                              : refused_promote.ToString()));
  }
  Result<int> dead_pull = tamper_rep.Step();
  if (dead_pull.ok() ||
      dead_pull.status().code() != StatusCode::kDataLoss) {
    return PropertyOutcome::Fail(
        "quarantined follower should never pull again");
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// prepass_equiv: the interval prepass never changes an answer.

/// Evaluates the case twice — interval prepass on, then off — and demands
/// byte identity: same storage fingerprint (fact keys, order, births), same
/// rendered trace, same core counters. Conclusive prepass verdicts are
/// proven equal to the exact FM decision (DESIGN.md §11), so *any*
/// divergence here is a soundness bug in interval.cc. The DecisionCache is
/// cleared before each arm so the off-arm cannot coast on entries the
/// on-arm filled (and vice versa) — both arms decide from cold.
PropertyOutcome PrepassEquiv(const FuzzCase& c, const FuzzOptions& fo) {
  Database db = BuildDatabase(c);
  EvalOptions opts = EngineOptions(fo, EvalStrategy::kStratified);
  opts.record_trace = true;

  DecisionCache::Instance().Clear();
  opts.prepass = true;
  auto on = Evaluate(c.program, db, opts);
  if (!on.ok()) {
    return PropertyOutcome::Fail("prepass-on evaluation failed: " +
                                 on.status().message());
  }

  DecisionCache::Instance().Clear();
  opts.prepass = false;
  auto off = Evaluate(c.program, db, opts);
  if (!off.ok()) {
    return PropertyOutcome::Fail("prepass-off evaluation failed: " +
                                 off.status().message());
  }

  if (StorageFingerprint(*on) != StorageFingerprint(*off)) {
    return PropertyOutcome::Fail(
        "prepass-on storage differs from prepass-off: " +
        CountsByPred(EvalToMap(*on)) + " vs " +
        CountsByPred(EvalToMap(*off)));
  }
  if (RenderTrace(on->trace) != RenderTrace(off->trace)) {
    return PropertyOutcome::Fail(
        "prepass-on derivation trace differs from prepass-off");
  }
  const EvalStats& a = on->stats;
  const EvalStats& b = off->stats;
  if (a.derivations != b.derivations || a.inserted != b.inserted ||
      a.subsumed != b.subsumed || a.duplicates != b.duplicates ||
      a.iterations != b.iterations ||
      a.reached_fixpoint != b.reached_fixpoint ||
      a.all_ground != b.all_ground) {
    return PropertyOutcome::Fail(
        "prepass-on stats differ from prepass-off: " +
        std::to_string(a.derivations) + "/" + std::to_string(a.inserted) +
        "/" + std::to_string(a.subsumed) + " vs " +
        std::to_string(b.derivations) + "/" + std::to_string(b.inserted) +
        "/" + std::to_string(b.subsumed));
  }
  // The toggle must actually gate the tier: no prepass activity may be
  // attributed to the off arm.
  if (b.prepass_conclusive != 0 || b.prepass_fallback != 0) {
    return PropertyOutcome::Fail(
        "prepass-off arm recorded prepass activity");
  }
  if (!on->stats.reached_fixpoint) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }
  return PropertyOutcome::Ok();
}

// ---------------------------------------------------------------------------
// interval_equiv: interval-indexed probe pruning never changes an answer.

/// Evaluates the case twice — interval-index pruning on, then off — and
/// demands byte identity: same storage fingerprint (fact keys, order,
/// births), same rendered trace, same core counters. A pruned row is one
/// whose column value (or propagated bound summary) is disjoint from a
/// sound over-approximation of the accumulated join state (DESIGN.md §12),
/// so the per-tuple satisfiability check would have rejected it anyway —
/// *any* divergence here is a soundness bug in the index maintenance or the
/// AdmittedRange binary search in relation.cc. Both arms run from a cold
/// DecisionCache so neither coasts on the other's memo entries.
PropertyOutcome IntervalEquiv(const FuzzCase& c, const FuzzOptions& fo) {
  Database db = BuildDatabase(c);
  EvalOptions opts = EngineOptions(fo, EvalStrategy::kStratified);
  opts.record_trace = true;

  DecisionCache::Instance().Clear();
  opts.interval_index = true;
  auto on = Evaluate(c.program, db, opts);
  if (!on.ok()) {
    return PropertyOutcome::Fail("interval-on evaluation failed: " +
                                 on.status().message());
  }

  DecisionCache::Instance().Clear();
  opts.interval_index = false;
  auto off = Evaluate(c.program, db, opts);
  if (!off.ok()) {
    return PropertyOutcome::Fail("interval-off evaluation failed: " +
                                 off.status().message());
  }

  if (StorageFingerprint(*on) != StorageFingerprint(*off)) {
    return PropertyOutcome::Fail(
        "interval-on storage differs from interval-off: " +
        CountsByPred(EvalToMap(*on)) + " vs " +
        CountsByPred(EvalToMap(*off)));
  }
  if (RenderTrace(on->trace) != RenderTrace(off->trace)) {
    return PropertyOutcome::Fail(
        "interval-on derivation trace differs from interval-off");
  }
  const EvalStats& a = on->stats;
  const EvalStats& b = off->stats;
  if (a.derivations != b.derivations || a.inserted != b.inserted ||
      a.subsumed != b.subsumed || a.duplicates != b.duplicates ||
      a.iterations != b.iterations ||
      a.reached_fixpoint != b.reached_fixpoint ||
      a.all_ground != b.all_ground) {
    return PropertyOutcome::Fail(
        "interval-on stats differ from interval-off: " +
        std::to_string(a.derivations) + "/" + std::to_string(a.inserted) +
        "/" + std::to_string(a.subsumed) + " vs " +
        std::to_string(b.derivations) + "/" + std::to_string(b.inserted) +
        "/" + std::to_string(b.subsumed));
  }
  // The toggle must actually gate the access path: the off arm may not
  // record any interval-probe activity.
  if (b.interval_probes != 0 || b.interval_candidates != 0) {
    return PropertyOutcome::Fail(
        "interval-off arm recorded interval-probe activity");
  }
  if (!on->stats.reached_fixpoint) {
    return PropertyOutcome::Skip("iteration cap hit before fixpoint");
  }
  return PropertyOutcome::Ok();
}

}  // namespace

const char* PlantedBugName(PlantedBug bug) {
  switch (bug) {
    case PlantedBug::kNone:
      return "none";
    case PlantedBug::kDropConstraintAtom:
      return "drop-constraint-atom";
    case PlantedBug::kDropRule:
      return "drop-rule";
  }
  return "none";
}

bool ParsePlantedBug(const std::string& name, PlantedBug* out) {
  for (PlantedBug bug : {PlantedBug::kNone, PlantedBug::kDropConstraintAtom,
                         PlantedBug::kDropRule}) {
    if (name == PlantedBugName(bug)) {
      *out = bug;
      return true;
    }
  }
  return false;
}

const std::vector<PropertyInfo>& AllProperties() {
  static const std::vector<PropertyInfo>* properties =
      new std::vector<PropertyInfo>{
          {"oracle_equiv",
           "semi-naive engine matches the naive reference oracle",
           &OracleEquiv},
          {"strategy_confluence",
           "naive / semi-naive / stratified / parallel agree; parallel "
           "storage is byte-identical to serial",
           &StrategyConfluence},
          {"rewrite_equiv",
           "pred / qrp / magic / balbin pipelines preserve query answers",
           &RewriteEquiv},
          {"fm_projection",
           "Fourier-Motzkin projection matches pointwise existential checks",
           &FmProjection},
          {"resume_scratch",
           "ResumeEvaluate over a split EDB matches a from-scratch run",
           &ResumeScratch},
          {"retract_vs_scratch",
           "RetractEvaluate matches a from-scratch run on the surviving "
           "EDB, byte-identically, and RETRACT over the protocol agrees",
           &RetractVsScratch},
          {"service_roundtrip",
           "cqld protocol answers match direct evaluation across an ingest",
           &ServiceRoundtrip},
          {"crash_recovery",
           "WAL recovery after an injected crash at every fail-point site "
           "reproduces the never-crashed run",
           &CrashRecovery},
          {"replica_vs_primary",
           "a caught-up follower is byte-identical to the primary under any "
           "fault schedule, failover loses no acknowledged write, and "
           "divergence is always quarantined",
           &ReplicaVsPrimary},
          {"prepass_equiv",
           "interval prepass on vs off: byte-identical facts, births, "
           "traces, and core stats",
           &PrepassEquiv},
          {"interval_equiv",
           "interval-indexed probe pruning on vs off: byte-identical facts, "
           "births, traces, and core stats",
           &IntervalEquiv},
          {"scheduler_equiv",
           "random concurrent client schedules through the worker pool "
           "match a serial replay (answers and epoch count)",
           &SchedulerEquiv},
      };
  return *properties;
}

const PropertyInfo* FindProperty(const std::string& name) {
  for (const PropertyInfo& info : AllProperties()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

Database BuildDatabase(const FuzzCase& c) {
  Database db;
  for (const Fact& fact : c.edb) db.AddFact(fact);
  return db;
}

std::map<PredId, std::vector<Fact>> EvalToMap(const EvalResult& result) {
  std::map<PredId, std::vector<Fact>> out;
  for (const auto& [pred, rel] : result.db.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) {
      out[pred].push_back(rel.fact(i));
    }
  }
  return out;
}

}  // namespace testing
}  // namespace cqlopt
