#include "testing/generator.h"

#include "ast/printer.h"

namespace cqlopt {
namespace testing {
namespace {

/// Atom `var op constant` via the five surface operators.
LinearConstraint VarConstAtom(VarId v, const char* op, int c) {
  return LinearConstraint::Make(LinearExpr::Var(v), op,
                                LinearExpr::Constant(Rational(c)));
}

const char* PickOp(Rng* rng, const ConstraintGenOptions& options) {
  // Bias towards <= / >= (the paper's selections); strict and equality
  // atoms appear when allowed.
  int roll = rng->Uniform(0, 9);
  if (options.allow_eq && roll == 0) return "=";
  if (options.allow_strict && roll <= 3) return rng->Chance(50) ? "<" : ">";
  return rng->Chance(50) ? "<=" : ">=";
}

}  // namespace

Conjunction RandomConjunction(Rng* rng,
                              const ConstraintGenOptions& options) {
  Conjunction c;
  for (int i = 0; i < options.atoms; ++i) {
    const char* op = PickOp(rng, options);
    if (options.dense) {
      // Up to three variables with small coefficients vs a constant.
      LinearExpr lhs;
      int terms = rng->Uniform(1, 3);
      for (int t = 0; t < terms; ++t) {
        VarId v = options.first_var + rng->Uniform(0, options.num_vars - 1);
        int coeff = rng->Uniform(-2, 2);
        if (coeff != 0) lhs.Add(v, Rational(coeff));
      }
      if (lhs.is_constant()) {
        VarId v = options.first_var + rng->Uniform(0, options.num_vars - 1);
        lhs.Add(v, Rational(1));
      }
      int rhs = rng->Uniform(-options.constant_range, options.constant_range);
      (void)c.AddLinear(LinearConstraint::Make(
          lhs, op, LinearExpr::Constant(Rational(rhs))));
      continue;
    }
    // Order atom: X op c or X op Y (Section 5's termination class).
    VarId x = options.first_var + rng->Uniform(0, options.num_vars - 1);
    if (rng->Chance(60)) {
      int rhs = rng->Uniform(-options.constant_range, options.constant_range);
      (void)c.AddLinear(VarConstAtom(x, op, rhs));
    } else {
      VarId y = options.first_var + rng->Uniform(0, options.num_vars - 1);
      if (y == x) {
        int rhs =
            rng->Uniform(-options.constant_range, options.constant_range);
        (void)c.AddLinear(VarConstAtom(x, op, rhs));
      } else {
        (void)c.AddLinear(LinearConstraint::Make(LinearExpr::Var(x), op,
                                                 LinearExpr::Var(y)));
      }
    }
  }
  return c;
}

namespace {

struct PredInfo {
  PredId id;
  int arity;
};

/// Draws `count` order atoms over the given variables into `conj`.
void AddRuleConstraints(Rng* rng, const GenOptions& options,
                        const std::vector<VarId>& vars, int count,
                        Conjunction* conj) {
  ConstraintGenOptions cg = options.constraints;
  for (int i = 0; i < count; ++i) {
    VarId x = vars[static_cast<size_t>(
        rng->Uniform(0, static_cast<int>(vars.size()) - 1))];
    const char* op = PickOp(rng, cg);
    if (rng->Chance(60)) {
      int c = rng->Uniform(-cg.constant_range, cg.constant_range);
      (void)conj->AddLinear(VarConstAtom(x, op, c));
    } else {
      VarId y = vars[static_cast<size_t>(
          rng->Uniform(0, static_cast<int>(vars.size()) - 1))];
      if (y == x) continue;
      (void)conj->AddLinear(LinearConstraint::Make(LinearExpr::Var(x), op,
                                                   LinearExpr::Var(y)));
    }
  }
}

}  // namespace

FuzzCase GenerateCase(uint64_t seed, const GenOptions& options) {
  Rng rng(seed);
  FuzzCase out;
  out.seed = seed;
  Program& program = out.program;

  // Predicates and arities.
  std::vector<PredInfo> edb_preds;
  std::vector<PredInfo> derived;
  for (int i = 0; i < options.edb_preds; ++i) {
    PredId id =
        program.symbols->InternPredicate("e" + std::to_string(i));
    int arity = rng.Uniform(1, options.max_arity);
    edb_preds.push_back({id, arity});
    (void)program.DeclareArity(id, arity);
  }
  for (int i = 0; i < options.derived_preds; ++i) {
    PredId id =
        program.symbols->InternPredicate("p" + std::to_string(i));
    int arity = rng.Uniform(1, options.max_arity);
    derived.push_back({id, arity});
    (void)program.DeclareArity(id, arity);
  }

  // Rules. Derived predicate p_i may use any EDB predicate, any p_j with
  // j < i, and (for rules after the first) p_i itself — so every SCC is a
  // single predicate whose first rule is an exit rule, and ValidateProgram
  // always accepts the generated program.
  VarAllocator alloc;
  int rule_counter = 0;
  for (int i = 0; i < options.derived_preds; ++i) {
    int rules = rng.Uniform(1, options.max_rules_per_pred);
    for (int r = 0; r < rules; ++r) {
      Rule rule;
      rule.label = "g" + std::to_string(++rule_counter);
      VarId base = alloc.FreshBlock(options.num_vars);
      std::vector<VarId> pool;
      for (int v = 0; v < options.num_vars; ++v) {
        pool.push_back(base + v);
        rule.var_names[base + v] = "X" + std::to_string(v + 1);
      }

      if (r > 0 && rng.Chance(options.constraint_fact_pct)) {
        // Body-free constraint fact: every head variable is constrained
        // (ValidateProgram's unbound-head check), some pinned to a point.
        std::vector<VarId> head_args;
        for (int a = 0; a < derived[i].arity; ++a) {
          VarId v = pool[static_cast<size_t>(a)];
          head_args.push_back(v);
          if (rng.Chance(50)) {
            (void)rule.constraints.AddLinear(
                VarConstAtom(v, "=", rng.Uniform(0, options.domain - 1)));
          } else {
            (void)rule.constraints.AddLinear(VarConstAtom(
                v, rng.Chance(50) ? "<=" : ">=",
                rng.Uniform(0, options.domain - 1)));
          }
        }
        rule.head = Literal(derived[i].id, head_args);
        program.rules.push_back(std::move(rule));
        continue;
      }

      bool recursive = r > 0 && rng.Chance(options.recursion_pct);
      int body_count = rng.Uniform(1, options.max_body_literals);
      std::vector<VarId> body_vars;
      for (int b = 0; b < body_count; ++b) {
        PredInfo pick;
        bool place_recursive = recursive && b == body_count - 1;
        if (place_recursive) {
          pick = derived[i];
        } else {
          int lower = i;  // p_0..p_{i-1} are eligible
          int choices = options.edb_preds + lower;
          int c = rng.Uniform(0, choices - 1);
          pick = c < options.edb_preds ? edb_preds[static_cast<size_t>(c)]
                                       : derived[static_cast<size_t>(
                                             c - options.edb_preds)];
        }
        std::vector<VarId> args;
        for (int a = 0; a < pick.arity; ++a) {
          VarId v = pool[static_cast<size_t>(
              rng.Uniform(0, options.num_vars - 1))];
          args.push_back(v);
          body_vars.push_back(v);
        }
        rule.body.emplace_back(pick.id, args);
      }

      int atom_count = rng.Uniform(0, options.max_constraint_atoms);
      AddRuleConstraints(&rng, options, pool, atom_count, &rule.constraints);

      // Head arguments: body variables, occasionally a fresh variable
      // pinned to a constant through an equality atom (still bound).
      std::vector<VarId> head_args;
      for (int a = 0; a < derived[i].arity; ++a) {
        if (rng.Chance(20) || body_vars.empty()) {
          VarId v = pool[static_cast<size_t>(
              rng.Uniform(0, options.num_vars - 1))];
          (void)rule.constraints.AddLinear(
              VarConstAtom(v, "=", rng.Uniform(0, options.domain - 1)));
          head_args.push_back(v);
        } else {
          head_args.push_back(body_vars[static_cast<size_t>(rng.Uniform(
              0, static_cast<int>(body_vars.size()) - 1))]);
        }
      }
      rule.head = Literal(derived[i].id, head_args);
      program.rules.push_back(std::move(rule));
    }
  }

  // Query: the last derived predicate over distinct fresh variables, with
  // an optional selection — a bound argument or an order atom.
  const PredInfo& qp = derived.back();
  VarId qbase = alloc.FreshBlock(qp.arity);
  std::vector<VarId> qargs;
  for (int a = 0; a < qp.arity; ++a) qargs.push_back(qbase + a);
  out.query.literal = Literal(qp.id, qargs);
  if (rng.Chance(70)) {
    VarId v = qargs[static_cast<size_t>(
        rng.Uniform(0, static_cast<int>(qargs.size()) - 1))];
    if (rng.Chance(40)) {
      (void)out.query.constraints.AddLinear(
          VarConstAtom(v, "=", rng.Uniform(0, options.domain - 1)));
    } else {
      (void)out.query.constraints.AddLinear(VarConstAtom(
          v, rng.Chance(50) ? "<=" : ">=",
          rng.Uniform(0, options.domain - 1)));
    }
  }

  // Ground EDB over [0, domain).
  for (const PredInfo& e : edb_preds) {
    for (int f = 0; f < options.edb_facts_per_pred; ++f) {
      Conjunction c;
      for (int a = 1; a <= e.arity; ++a) {
        LinearExpr expr =
            LinearExpr::Var(a) -
            LinearExpr::Constant(Rational(rng.Uniform(0, options.domain - 1)));
        (void)c.AddLinear(LinearConstraint(std::move(expr), CmpOp::kEq));
      }
      out.edb.emplace_back(e.id, e.arity, std::move(c));
    }
  }
  return out;
}

std::string RenderCaseProgram(const FuzzCase& c) {
  std::string out = RenderProgram(c.program);
  out += RenderQuery(c.query, *c.program.symbols);
  out += "\n";
  return out;
}

std::vector<Fact> GenerateRetractBatch(const FuzzCase& c, uint64_t salt) {
  Rng rng(Rng::DeriveSeed(c.seed, salt));
  std::vector<Fact> batch;
  std::vector<std::pair<PredId, int>> preds;
  for (const Fact& fact : c.edb) {
    if (rng.Chance(45)) batch.push_back(fact);
    bool known = false;
    for (const auto& [pred, arity] : preds) known |= pred == fact.pred;
    if (!known) preds.emplace_back(fact.pred, fact.arity);
  }
  // Never-inserted facts: in-domain draws may collide with a stored fact
  // (then they retract it), the +100 offset never can.
  int fresh = rng.Uniform(1, 3);
  for (int i = 0; i < fresh && !preds.empty(); ++i) {
    const auto& [pred, arity] =
        preds[static_cast<size_t>(
            rng.Uniform(0, static_cast<int>(preds.size()) - 1))];
    Conjunction conj;
    for (int a = 1; a <= arity; ++a) {
      int value = rng.Chance(50) ? rng.Uniform(0, 7) : rng.Uniform(100, 107);
      (void)conj.AddLinear(LinearConstraint(
          LinearExpr::Var(a) - LinearExpr::Constant(Rational(value)),
          CmpOp::kEq));
    }
    batch.emplace_back(pred, arity, std::move(conj));
  }
  if (!batch.empty()) {
    int repeats = rng.Uniform(0, 2);
    for (int i = 0; i < repeats; ++i) {
      batch.push_back(batch[static_cast<size_t>(
          rng.Uniform(0, static_cast<int>(batch.size()) - 1))]);
    }
  }
  return batch;
}

std::string RenderCaseEdb(const FuzzCase& c) {
  std::string out;
  for (const Fact& fact : c.edb) {
    out += fact.ToString(*c.program.symbols);
    out += ".\n";
  }
  return out;
}

}  // namespace testing
}  // namespace cqlopt
