#include "testing/shrinker.h"

#include <algorithm>
#include <utility>

#include "eval/validate.h"

namespace cqlopt {
namespace testing {
namespace {

/// `conj` minus its last linear atom (equalities and symbol bindings kept).
Conjunction WithoutLastLinearAtom(const Conjunction& conj) {
  Conjunction out;
  const auto& linear = conj.linear();
  for (size_t i = 0; i + 1 < linear.size(); ++i) {
    (void)out.AddLinear(linear[i]);
  }
  for (const auto& [a, b] : conj.EqualityPairs()) (void)out.AddEquality(a, b);
  for (const auto& [v, s] : conj.SymbolBindings()) (void)out.BindSymbol(v, s);
  return out;
}

class Shrinker {
 public:
  Shrinker(const PropertyInfo& property, const FuzzOptions& fuzz_options,
           const ShrinkOptions& options, ShrinkStats* stats)
      : property_(property),
        fuzz_options_(fuzz_options),
        options_(options),
        stats_(stats) {}

  FuzzCase Run(FuzzCase current) {
    bool changed = true;
    while (changed && !Exhausted()) {
      changed = false;
      changed |= ShrinkRules(&current);
      changed |= ShrinkBodyLiterals(&current);
      changed |= ShrinkConstraintAtoms(&current);
      changed |= ShrinkEdb(&current);
      changed |= ShrinkQuery(&current);
    }
    return current;
  }

 private:
  bool Exhausted() const { return stats_->attempts >= options_.max_attempts; }

  /// True iff the candidate still exhibits the *original* failure class: a
  /// valid program on which the property fails (not skips, not a
  /// validation rejection).
  bool StillFails(const FuzzCase& candidate) {
    if (Exhausted()) return false;
    ++stats_->attempts;
    if (!ValidateProgram(candidate.program).ok()) return false;
    PropertyOutcome outcome = property_.fn(candidate, fuzz_options_);
    return !outcome.ok && !outcome.skipped;
  }

  bool Accept(FuzzCase* current, FuzzCase candidate) {
    if (!StillFails(candidate)) return false;
    *current = std::move(candidate);
    ++stats_->accepted;
    return true;
  }

  bool ShrinkRules(FuzzCase* current) {
    bool changed = false;
    for (size_t i = current->program.rules.size(); i-- > 0;) {
      if (current->program.rules.size() <= 1) break;
      FuzzCase candidate = *current;
      candidate.program.rules.erase(candidate.program.rules.begin() +
                                    static_cast<long>(i));
      changed |= Accept(current, std::move(candidate));
    }
    return changed;
  }

  bool ShrinkBodyLiterals(FuzzCase* current) {
    bool changed = false;
    for (size_t r = 0; r < current->program.rules.size(); ++r) {
      for (size_t b = current->program.rules[r].body.size(); b-- > 0;) {
        FuzzCase candidate = *current;
        auto& body = candidate.program.rules[r].body;
        body.erase(body.begin() + static_cast<long>(b));
        changed |= Accept(current, std::move(candidate));
      }
    }
    return changed;
  }

  bool ShrinkConstraintAtoms(FuzzCase* current) {
    bool changed = false;
    for (size_t r = 0; r < current->program.rules.size(); ++r) {
      // Peel atoms off the back one at a time until removal stops failing.
      while (!current->program.rules[r].constraints.linear().empty()) {
        FuzzCase candidate = *current;
        candidate.program.rules[r].constraints =
            WithoutLastLinearAtom(candidate.program.rules[r].constraints);
        if (!Accept(current, std::move(candidate))) break;
        changed = true;
      }
    }
    return changed;
  }

  bool ShrinkEdb(FuzzCase* current) {
    // ddmin-style chunk removal: halves first, then ever smaller chunks.
    bool changed = false;
    for (size_t chunk = (current->edb.size() + 1) / 2; chunk >= 1;
         chunk /= 2) {
      for (size_t start = 0; start < current->edb.size();) {
        size_t end = std::min(start + chunk, current->edb.size());
        FuzzCase candidate = *current;
        candidate.edb.erase(candidate.edb.begin() + static_cast<long>(start),
                            candidate.edb.begin() + static_cast<long>(end));
        if (Accept(current, std::move(candidate))) {
          changed = true;  // keep `start`: the next chunk slid into place
        } else {
          start = end;
        }
      }
      if (chunk == 1) break;
    }
    return changed;
  }

  bool ShrinkQuery(FuzzCase* current) {
    if (current->query.constraints.linear().empty() &&
        current->query.constraints.EqualityPairs().empty() &&
        current->query.constraints.SymbolBindings().empty()) {
      return false;
    }
    FuzzCase candidate = *current;
    candidate.query.constraints = Conjunction::True();
    return Accept(current, std::move(candidate));
  }

  const PropertyInfo& property_;
  const FuzzOptions& fuzz_options_;
  const ShrinkOptions& options_;
  ShrinkStats* stats_;
};

}  // namespace

FuzzCase ShrinkCase(const FuzzCase& failing, const PropertyInfo& property,
                    const FuzzOptions& fuzz_options,
                    const ShrinkOptions& options, ShrinkStats* stats) {
  ShrinkStats local;
  Shrinker shrinker(property, fuzz_options, options,
                    stats != nullptr ? stats : &local);
  return shrinker.Run(failing);
}

}  // namespace testing
}  // namespace cqlopt
