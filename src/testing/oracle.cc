#include "testing/oracle.h"

#include <set>
#include <string>

#include "ast/arg_map.h"
#include "constraint/decision_cache.h"
#include "constraint/implication.h"

namespace cqlopt {
namespace testing {
namespace {

/// Enumerates every assignment of known facts to the rule's body literals
/// (the full cross product — the naive scan join), deriving head facts into
/// `out`. Returns the number of new facts.
Result<int> ApplyRuleNaive(const Rule& rule,
                           const std::map<PredId, std::vector<Fact>>& facts,
                           std::set<std::string>* seen,
                           std::map<PredId, std::vector<Fact>>* out) {
  int added = 0;
  std::vector<size_t> choice(rule.body.size(), 0);
  while (true) {
    // Build the instantiated conjunction for the current choice vector.
    bool viable = true;
    Conjunction conj = rule.constraints;
    for (size_t b = 0; b < rule.body.size() && viable; ++b) {
      const Literal& lit = rule.body[b];
      auto it = facts.find(lit.pred);
      if (it == facts.end() || choice[b] >= it->second.size()) {
        viable = false;
        break;
      }
      const Fact& fact = it->second[choice[b]];
      if (fact.arity != lit.arity()) {
        viable = false;
        break;
      }
      // Positions 1..arity -> the literal's variables (PTOL).
      if (!conj.AddConjunction(PtolConjunction(lit, fact.constraint)).ok()) {
        viable = false;  // type clash (symbol into arithmetic): no match
        break;
      }
      if (conj.known_unsat()) viable = false;
    }
    if (viable && conj.IsSatisfiable()) {
      // Project onto the head positions (LTOP).
      CQLOPT_ASSIGN_OR_RETURN(Conjunction head_c,
                              LtopConjunction(rule.head, conj));
      head_c.Simplify();
      Fact derived(rule.head.pred, rule.head.arity(), std::move(head_c));
      if (seen->insert(derived.Key()).second) {
        (*out)[derived.pred].push_back(std::move(derived));
        ++added;
      }
    }
    // Advance the odometer.
    size_t b = 0;
    for (; b < rule.body.size(); ++b) {
      auto it = facts.find(rule.body[b].pred);
      size_t limit = it == facts.end() ? 0 : it->second.size();
      if (++choice[b] < limit) break;
      choice[b] = 0;
    }
    if (b == rule.body.size()) break;  // odometer wrapped: done
  }
  return added;
}

}  // namespace

Result<OracleResult> OracleEvaluate(const Program& program,
                                    const std::vector<Fact>& edb,
                                    const OracleOptions& options) {
  // The oracle recomputes every decision from scratch: no memoized answer
  // of the engine under test can leak into the reference run.
  DecisionCacheDisabler no_cache;

  OracleResult result;
  std::set<std::string> seen;
  for (const Fact& fact : edb) {
    if (seen.insert(fact.Key()).second) {
      result.facts[fact.pred].push_back(fact);
    }
  }
  for (int round = 0; round < options.max_rounds; ++round) {
    int added = 0;
    for (const Rule& rule : program.rules) {
      // Constraint facts re-fire every round; structural dedup drops the
      // re-derivations (naive evaluation at its most naive).
      CQLOPT_ASSIGN_OR_RETURN(
          int n, ApplyRuleNaive(rule, result.facts, &seen, &result.facts));
      added += n;
    }
    result.rounds = round + 1;
    if (added == 0) {
      result.reached_fixpoint = true;
      break;
    }
  }
  return result;
}

Result<std::vector<Fact>> OracleQueryAnswers(const OracleResult& result,
                                             const Query& query) {
  DecisionCacheDisabler no_cache;
  std::vector<Fact> answers;
  auto it = result.facts.find(query.literal.pred);
  if (it == result.facts.end()) return answers;
  CQLOPT_ASSIGN_OR_RETURN(Conjunction filter,
                          LtopConjunction(query.literal, query.constraints));
  for (const Fact& fact : it->second) {
    Fact answer = fact;
    CQLOPT_RETURN_IF_ERROR(answer.constraint.AddConjunction(filter));
    if (!answer.constraint.IsSatisfiable()) continue;
    answer.constraint.Simplify();
    answers.push_back(std::move(answer));
  }
  return answers;
}

bool SameDenotation(const std::map<PredId, std::vector<Fact>>& a,
                    const std::map<PredId, std::vector<Fact>>& b) {
  std::set<PredId> preds;
  for (const auto& [pred, fs] : a) {
    if (!fs.empty()) preds.insert(pred);
  }
  for (const auto& [pred, fs] : b) {
    if (!fs.empty()) preds.insert(pred);
  }
  for (PredId pred : preds) {
    auto ia = a.find(pred);
    auto ib = b.find(pred);
    const std::vector<Fact> empty;
    const std::vector<Fact>& fa = ia == a.end() ? empty : ia->second;
    const std::vector<Fact>& fb = ib == b.end() ? empty : ib->second;
    if (fa.empty() != fb.empty()) return false;
    auto covered = [](const std::vector<Fact>& xs,
                      const std::vector<Fact>& ys) {
      std::vector<Conjunction> ys_c;
      ys_c.reserve(ys.size());
      for (const Fact& y : ys) ys_c.push_back(y.constraint);
      for (const Fact& x : xs) {
        if (!ImpliesDisjunction(x.constraint, ys_c)) return false;
      }
      return true;
    };
    if (!covered(fa, fb) || !covered(fb, fa)) return false;
  }
  return true;
}

}  // namespace testing
}  // namespace cqlopt
