#ifndef CQLOPT_TESTING_RNG_H_
#define CQLOPT_TESTING_RNG_H_

#include <cstdint>

namespace cqlopt {
namespace testing {

/// Deterministic splitmix64 stream. The fuzzing subsystem never uses
/// <random>: std::uniform_int_distribution is implementation-defined, so a
/// seed would not reproduce the same programs across standard libraries.
/// This generator is a pure function of its seed everywhere, which is what
/// makes `cqlfuzz --seed N` a complete repro token.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi], inclusive. Precondition: lo <= hi. The modulo
  /// bias is irrelevant at fuzzing ranges (hi - lo << 2^64).
  int Uniform(int lo, int hi) {
    return lo + static_cast<int>(Next() %
                                 static_cast<uint64_t>(hi - lo + 1));
  }

  /// True with probability pct/100.
  bool Chance(int pct) { return Uniform(0, 99) < pct; }

  /// Independent substream for item `index` of the stream seeded `seed` —
  /// iteration i of a fuzz run is reproducible without replaying 0..i-1.
  static uint64_t DeriveSeed(uint64_t seed, uint64_t index) {
    Rng r(seed ^ (index * 0xbf58476d1ce4e5b9ull + 0x94d049bb133111ebull));
    return r.Next();
  }

 private:
  uint64_t state_;
};

}  // namespace testing
}  // namespace cqlopt

#endif  // CQLOPT_TESTING_RNG_H_
