#ifndef CQLOPT_TESTING_PROPERTIES_H_
#define CQLOPT_TESTING_PROPERTIES_H_

#include <map>
#include <string>
#include <vector>

#include "eval/database.h"
#include "eval/seminaive.h"
#include "testing/generator.h"

namespace cqlopt {
namespace testing {

/// The differential / metamorphic properties of the fuzzing subsystem. Each
/// property takes one generated FuzzCase and checks an equivalence the
/// system promises:
///
///   oracle_equiv        engine (semi-naive) ≡ the naive reference oracle
///   strategy_confluence naive ≡ semi-naive ≡ stratified ≡ parallel{2,8},
///                       with the parallel runs byte-identical to serial
///   rewrite_equiv       rewritten(P) ≡ P for pred / qrp / magic / balbin
///                       pipelines (Theorems 4.3, 6.2, 7.x empirically)
///   fm_projection       Fourier–Motzkin projection ≡ pointwise ∃-check on
///                       sampled rational points (halves catch strictness)
///   resume_scratch      ResumeEvaluate(base, delta) ≡ scratch(base ∪ delta)
///   retract_vs_scratch  RetractEvaluate(base, batch) ≡ scratch(EDB \ batch)
///                       — byte-identical facts, births, and traces, with
///                       miss counts exact for never-inserted and repeated
///                       batch entries, retraction idempotent, and RETRACT
///                       through the cqld protocol matching direct
///                       evaluation of the surviving EDB
///   service_roundtrip   cqld HandleLine answers ≡ direct evaluation, across
///                       an INGEST epoch bump
///   crash_recovery      recover(crash at any fail-point site) ≡ the
///                       never-crashed run — WAL batches whose record is
///                       durable survive, a torn tail is truncated, and the
///                       recovered service keeps serving (cqlfuzz --faults)
///   replica_vs_primary  a follower pulling the primary's WAL feed through
///                       any seeded fault schedule (dropped fetches, torn
///                       records, crashes around apply, node restarts,
///                       compaction renegotiation) is byte-identical to the
///                       primary once caught up — same RenderStateText,
///                       same answers at the same epoch, ASOF honoured at
///                       the head and typed UNAVAILABLE past it; PROMOTE
///                       after a primary kill drains the dead WAL's
///                       unconsumed suffix (no acknowledged write lost or
///                       resurrected); a tampered follower is quarantined
///                       at the next divergence check and refuses reads
///                       with typed DATA_LOSS (DESIGN.md §15)
///   prepass_equiv       evaluation with the interval prepass on ≡ off —
///                       byte-identical facts, births, traces, and core
///                       stats (the two-tier decision procedure of
///                       DESIGN.md §11 never changes an answer)
///   interval_equiv      evaluation with interval-indexed probe pruning on
///                       ≡ off — byte-identical facts, births, traces, and
///                       core stats (the columnar interval index of
///                       DESIGN.md §12 only skips rows the per-tuple
///                       satisfiability check would reject)
///   scheduler_equiv     a random concurrent client schedule (disjoint
///                       INGEST batches racing QUERYs through the worker
///                       pool, 1/2/8 workers by seed) ≡ a serial replay of
///                       the same batches — same final answers, same epoch
///                       count, every in-flight response correctly framed
///                       (the scheduler of DESIGN.md §13 only reorders,
///                       never corrupts)
///
/// Outcomes are three-valued: ok, skipped (the comparison is not defined —
/// a fixpoint hit its iteration cap, or a pipeline cleanly rejected the
/// program), or failed with a human-readable message. Skips are expected
/// and counted separately; a failure always indicates a bug (in the engine
/// or, under --self-check, the planted one).

/// A bug deliberately injected into the pipeline under test so the harness
/// can prove it detects and shrinks real defects (cqlfuzz --self-check).
/// The production code is never touched: the mutation is applied to the
/// ApplyPipeline *output* inside rewrite_equiv.
enum class PlantedBug {
  kNone,
  /// Drops the last constraint atom of the first constrained rule of the
  /// "pred,qrp" rewrite — widening a rule, the classic unsound rewrite.
  kDropConstraintAtom,
  /// Drops the last rule of the "pred,qrp" rewrite — losing derivations,
  /// the classic incomplete rewrite.
  kDropRule,
};

/// "none" / "drop-constraint-atom" / "drop-rule" — the names `cqlfuzz
/// --self-check` prints and corpus `% bug:` headers store.
const char* PlantedBugName(PlantedBug bug);
/// Inverse of PlantedBugName; false on unknown names.
bool ParsePlantedBug(const std::string& name, PlantedBug* out);

struct FuzzOptions {
  /// Iteration cap for every engine evaluation a property runs. Generated
  /// programs stay in Section 5's termination class, so caps fire rarely;
  /// when one does, the property reports skipped, not failed.
  int eval_max_iterations = 48;
  SubsumptionMode subsumption = SubsumptionMode::kSingleFact;
  /// Worker threads for evaluations that don't pin their own count —
  /// the replay matrix in tests/test_service.cc sweeps this.
  int eval_threads = 1;
  /// Interval-prepass toggle applied to every evaluation (prepass_equiv
  /// overrides it per arm).
  bool prepass = true;
  PlantedBug bug = PlantedBug::kNone;
};

struct PropertyOutcome {
  bool ok = true;
  bool skipped = false;
  std::string message;  // failure detail, or the reason for a skip

  static PropertyOutcome Ok() { return {}; }
  static PropertyOutcome Skip(std::string why) {
    return {true, true, std::move(why)};
  }
  static PropertyOutcome Fail(std::string why) {
    return {false, false, std::move(why)};
  }
};

using PropertyFn = PropertyOutcome (*)(const FuzzCase&, const FuzzOptions&);

struct PropertyInfo {
  const char* name;
  const char* summary;
  PropertyFn fn;
};

/// The property registry, in documentation order.
const std::vector<PropertyInfo>& AllProperties();

/// Looks a property up by name; nullptr if unknown.
const PropertyInfo* FindProperty(const std::string& name);

/// Loads the case's EDB facts into a Database (birth -1, verbatim).
Database BuildDatabase(const FuzzCase& c);

/// Flattens an evaluation result into per-predicate fact lists, the shape
/// oracle.h's SameDenotation compares.
std::map<PredId, std::vector<Fact>> EvalToMap(const EvalResult& result);

}  // namespace testing
}  // namespace cqlopt

#endif  // CQLOPT_TESTING_PROPERTIES_H_
