#ifndef CQLOPT_UTIL_FAILPOINT_H_
#define CQLOPT_UTIL_FAILPOINT_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cqlopt {

/// Deterministic fail-point registry for fault-injection testing.
///
/// Production code sprinkles `failpoint::ShouldFail(site)` at the places a
/// real fault could strike (a short write(2), a failing fsync, a crash
/// between the WAL append and the epoch swap, an allocation failure in rule
/// application). Tests arm a site with `Arm(site, skip, times)` and the
/// Nth hit fires; everything is counted, so a crash-recovery property can
/// enumerate exactly the injection points a scenario passes through and
/// then replay the scenario crashing at each one in turn.
///
/// Disarmed cost: one relaxed atomic load (`armed_count_ == 0` fast path),
/// so the hooks are compiled into release builds and the fuzzer exercises
/// the same binaries the benchmarks measure.
///
/// The registry is process-wide and NOT synchronized against concurrent
/// Arm/Disarm during a governed operation — arm before the operation under
/// test and disarm after, from one thread. `ShouldFail` itself is
/// thread-safe (sites fire-and-count under a mutex once armed).
namespace failpoint {

// Catalogue of injection sites (DESIGN.md section 10.4). Keep in sync with
// AllSites() in failpoint.cc.
inline constexpr const char* kWalShortWrite = "wal/short-write";
inline constexpr const char* kWalFsync = "wal/fsync";
inline constexpr const char* kWalCrashBeforeCommit = "wal/crash-before-commit";
inline constexpr const char* kWalCrashAfterCommit = "wal/crash-after-commit";
inline constexpr const char* kServerShortWrite = "server/short-write";
inline constexpr const char* kEvalRuleAlloc = "eval/rule-alloc";
/// Scheduler workers spin (without dequeuing) while this is armed, so tests
/// can fill the admission queue and observe deterministic shed counts.
inline constexpr const char* kSchedulerWorkerHold = "scheduler/worker-hold";
// Replication link sites (DESIGN.md section 15.5). Ship side: the primary's
// FetchReplication drops the batch (simulating a lost response or a
// partition); the follower sees an Unavailable fetch and retries.
inline constexpr const char* kReplicaFetch = "replica/fetch";
/// A record arrives torn on the wire: the follower's decoder flips a byte
/// before the per-record CRC check, which must reject it and refetch.
inline constexpr const char* kReplicaTornRecord = "replica/torn-record";
/// Follower crashes after fetching a batch but before applying any of it.
inline constexpr const char* kReplicaCrashBeforeApply =
    "replica/crash-before-apply";
/// Follower crashes between applying records of one batch (some committed —
/// and WAL-logged — locally, the rest lost; catch-up must resume cleanly).
inline constexpr const char* kReplicaCrashMidApply = "replica/crash-mid-apply";
/// Follower crashes after applying the whole batch but before acknowledging
/// progress to its caller.
inline constexpr const char* kReplicaCrashAfterApply =
    "replica/crash-after-apply";

/// Every registered site name, in the order above.
const std::vector<std::string>& AllSites();

/// Arms `site`: the first `skip` hits pass through, then the next `times`
/// hits fire (ShouldFail returns true), then the site auto-disarms.
/// times <= 0 means fire on every hit after `skip` until Disarm.
void Arm(const std::string& site, long skip = 0, long times = 1);

/// Disarms `site` (hit counters are kept until ResetCounters).
void Disarm(const std::string& site);

/// Disarms every site and clears all hit counters.
void DisarmAll();

/// True when the calling code should simulate a fault at `site`. Counts the
/// hit either way. Near-free when nothing is armed.
bool ShouldFail(const std::string& site);

/// Total times `site` was reached (armed or not) since ResetCounters.
long Hits(const std::string& site);

/// Clears hit counters without touching armed state.
void ResetCounters();

}  // namespace failpoint
}  // namespace cqlopt

#endif  // CQLOPT_UTIL_FAILPOINT_H_
