#include "util/rational.h"

#include <utility>

namespace cqlopt {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  Normalize();
}

void Rational::Normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

bool Rational::FromString(const std::string& text, Rational* out) {
  size_t slash = text.find('/');
  if (slash != std::string::npos) {
    BigInt num, den;
    if (!BigInt::FromString(text.substr(0, slash), &num)) return false;
    if (!BigInt::FromString(text.substr(slash + 1), &den)) return false;
    if (den.is_zero()) return false;
    *out = Rational(num, den);
    return true;
  }
  size_t dot = text.find('.');
  if (dot != std::string::npos) {
    std::string integral = text.substr(0, dot);
    std::string fraction = text.substr(dot + 1);
    if (fraction.empty()) return false;
    bool negative = !integral.empty() && integral[0] == '-';
    BigInt whole;
    if (integral.empty() || integral == "-" || integral == "+") {
      whole = BigInt(0);
    } else if (!BigInt::FromString(integral, &whole)) {
      return false;
    }
    BigInt frac_num;
    if (!BigInt::FromString(fraction, &frac_num)) return false;
    if (frac_num.is_negative()) return false;
    BigInt scale(1);
    const BigInt ten(10);
    for (size_t i = 0; i < fraction.size(); ++i) scale = scale * ten;
    BigInt num = whole.Abs() * scale + frac_num;
    if (negative || whole.is_negative()) num = -num;
    *out = Rational(num, scale);
    return true;
  }
  BigInt num;
  if (!BigInt::FromString(text, &num)) return false;
  *out = Rational(num, BigInt(1));
  return true;
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  return Rational(num_ * other.den_, den_ * other.num_);
}

int Rational::Compare(const Rational& other) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (num_ * other.den_).Compare(other.num_ * den_);
}

Rational Rational::Reciprocal() const { return Rational(den_, num_); }

std::string Rational::ToString() const {
  if (is_integer()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

size_t Rational::Hash() const {
  size_t h = num_.Hash();
  h ^= den_.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace cqlopt
