#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace cqlopt {

ThreadPool::ThreadPool(int threads) {
  int count = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
    if (--in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace cqlopt
