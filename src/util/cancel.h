#ifndef CQLOPT_UTIL_CANCEL_H_
#define CQLOPT_UTIL_CANCEL_H_

#include <atomic>
#include <memory>

namespace cqlopt {

/// A copyable cancellation handle shared between the thread running a
/// cooperative operation (the bottom-up fixpoints of eval/seminaive.h) and
/// any thread that may want to abort it. The default-constructed token is
/// *inert*: it can never be cancelled and costs nothing to check, so
/// embedding one in EvalOptions leaves ungoverned evaluations untouched.
///
/// Usage:
///   CancelToken token = CancelToken::Cancellable();
///   options.cancel = token;                // copies share the flag
///   ... from another thread: token.RequestCancel();
///
/// Cancellation is cooperative and sticky: once requested it cannot be
/// withdrawn, and the governed operation observes it at its next check
/// point (iteration and rule-batch boundaries, and inside parallel
/// workers), returning StatusCode::kCancelled.
class CancelToken {
 public:
  /// Inert token: cancel_requested() is permanently false.
  CancelToken() = default;

  /// A live token whose copies all observe the same flag.
  static CancelToken Cancellable() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cancellation. No-op on an inert token.
  void RequestCancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token can ever fire (i.e. was made Cancellable).
  bool can_cancel() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace cqlopt

#endif  // CQLOPT_UTIL_CANCEL_H_
