#include "util/bigint.h"

#include <algorithm>
#include <cstdlib>

namespace cqlopt {

namespace {
constexpr uint64_t kBase = uint64_t{1} << 32;
}  // namespace

BigInt::BigInt(int64_t value) : negative_(value < 0) {
  // Avoid UB on INT64_MIN by working in uint64.
  uint64_t magnitude =
      value < 0 ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
  Normalize();
}

bool BigInt::FromString(const std::string& text, BigInt* out) {
  size_t i = 0;
  bool negative = false;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    negative = text[i] == '-';
    ++i;
  }
  if (i >= text.size()) return false;
  BigInt result;
  const BigInt ten(10);
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    result = result * ten + BigInt(text[i] - '0');
  }
  if (negative) result = -result;
  *out = result;
  return true;
}

void BigInt::Trim(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

void BigInt::Normalize() {
  Trim(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

void BigInt::DivModMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             std::vector<uint32_t>* quotient,
                             std::vector<uint32_t>* remainder) {
  quotient->assign(a.size(), 0);
  remainder->clear();
  // Bitwise long division: process a's bits from most to least significant.
  // Simple and exact; performance is adequate for constraint coefficients.
  for (size_t limb = a.size(); limb-- > 0;) {
    for (int bit = 31; bit >= 0; --bit) {
      // remainder = remainder * 2 + current bit of a.
      uint32_t carry = (a[limb] >> bit) & 1u;
      for (size_t i = 0; i < remainder->size(); ++i) {
        uint32_t next_carry = (*remainder)[i] >> 31;
        (*remainder)[i] = ((*remainder)[i] << 1) | carry;
        carry = next_carry;
      }
      if (carry != 0) remainder->push_back(carry);
      if (CompareMagnitude(*remainder, b) >= 0) {
        *remainder = SubMagnitude(*remainder, b);
        (*quotient)[limb] |= uint32_t{1} << bit;
      }
    }
  }
  Trim(quotient);
  Trim(remainder);
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  if (negative_ == other.negative_) {
    out.limbs_ = AddMagnitude(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else if (CompareMagnitude(limbs_, other.limbs_) >= 0) {
    out.limbs_ = SubMagnitude(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else {
    out.limbs_ = SubMagnitude(other.limbs_, limbs_);
    out.negative_ = other.negative_;
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out;
  out.limbs_ = MulMagnitude(limbs_, other.limbs_);
  out.negative_ = negative_ != other.negative_;
  out.Normalize();
  return out;
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient;
  std::vector<uint32_t> remainder;
  DivModMagnitude(limbs_, other.limbs_, &quotient.limbs_, &remainder);
  quotient.negative_ = negative_ != other.negative_;
  quotient.Normalize();
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  std::vector<uint32_t> quotient;
  BigInt remainder;
  DivModMagnitude(limbs_, other.limbs_, &quotient, &remainder.limbs_);
  remainder.negative_ = negative_;
  remainder.Normalize();
  return remainder;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

bool BigInt::ToInt64(int64_t* out) const {
  if (limbs_.size() > 2) return false;
  uint64_t magnitude = 0;
  if (limbs_.size() >= 1) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (magnitude > (uint64_t{1} << 63)) return false;
    *out = static_cast<int64_t>(~magnitude + 1);
  } else {
    if (magnitude > static_cast<uint64_t>(INT64_MAX)) return false;
    *out = static_cast<int64_t>(magnitude);
  }
  return true;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  std::vector<uint32_t> work = limbs_;
  std::string digits;
  const std::vector<uint32_t> ten = {10};
  while (!work.empty()) {
    std::vector<uint32_t> quotient;
    std::vector<uint32_t> remainder;
    DivModMagnitude(work, ten, &quotient, &remainder);
    uint32_t digit = remainder.empty() ? 0 : remainder[0];
    digits.push_back(static_cast<char>('0' + digit));
    work = quotient;
  }
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::Hash() const {
  size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace cqlopt
