#include "util/status.h"

namespace cqlopt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cqlopt
