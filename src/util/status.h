#ifndef CQLOPT_UTIL_STATUS_H_
#define CQLOPT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace cqlopt {

/// Error categories used across the library. Mirrors the minimal set of
/// failure modes the optimizer can hit: malformed input programs, semantic
/// errors (e.g. arithmetic over symbolic constants), resource limits
/// (iteration caps on the non-terminating fixpoints of Section 4), and
/// internal invariant violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kTypeError,
  kResourceExhausted,
  kNotFound,
  kUnimplemented,
  kInternal,
  /// A cooperative wall-clock deadline (EvalOptions::deadline_ms) expired
  /// before the evaluation finished.
  kDeadlineExceeded,
  /// The evaluation's CancelToken was cancelled by another thread.
  kCancelled,
  /// The service cannot answer right now but a retry may succeed — e.g. a
  /// follower asked for `ASOF <epoch>` it has not replicated yet.
  kUnavailable,
  /// The operation is valid in general but not in the node's current state —
  /// e.g. a write sent to a read-only follower, or PROMOTE on a quarantined
  /// replica. Retrying without an operator action will not help.
  kFailedPrecondition,
  /// Unrecoverable integrity loss: a follower's per-epoch state checksum
  /// disagreed with the primary's at the same epoch. The node quarantines
  /// itself rather than serve possibly-wrong answers.
  kDataLoss,
};

/// Returns a stable human-readable name for `code` ("OK", "PARSE_ERROR", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object for error propagation without exceptions.
///
/// The library follows the Arrow/RocksDB convention: fallible operations
/// return `Status` (or `Result<T>`), and callers either handle or propagate.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise (programming error).
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from an expression to the caller.
#define CQLOPT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::cqlopt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result-returning expression, propagating errors; on success
/// assigns the value to `lhs`.
#define CQLOPT_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value();

#define CQLOPT_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define CQLOPT_ASSIGN_OR_RETURN_NAME(x, y) CQLOPT_ASSIGN_OR_RETURN_CONCAT(x, y)
#define CQLOPT_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  CQLOPT_ASSIGN_OR_RETURN_IMPL(                                              \
      CQLOPT_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

}  // namespace cqlopt

#endif  // CQLOPT_UTIL_STATUS_H_
