#ifndef CQLOPT_UTIL_BIGINT_H_
#define CQLOPT_UTIL_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cqlopt {

/// Arbitrary-precision signed integer.
///
/// Fourier–Motzkin elimination (src/constraint/fourier_motzkin.h) multiplies
/// constraint coefficients pairwise at every elimination step, so coefficient
/// magnitudes can grow doubly exponentially in the number of eliminated
/// variables. Fixed-width arithmetic would silently overflow and corrupt
/// satisfiability/implication answers; the whole optimizer is only sound if
/// the constraint algebra is exact, hence this class.
///
/// Representation: sign + little-endian base-2^32 magnitude with no leading
/// zero limbs; zero is the empty magnitude with non-negative sign.
class BigInt {
 public:
  BigInt() : negative_(false) {}
  BigInt(int64_t value);  // NOLINT(runtime/explicit): ints are BigInts.

  /// Parses an optionally signed decimal string. Returns false on malformed
  /// input (empty, or any non-digit past the sign).
  static bool FromString(const std::string& text, BigInt* out);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  /// -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Precondition: other != 0.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of *this (C++ semantics).
  /// Precondition: other != 0.
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  bool operator==(const BigInt& other) const {
    return negative_ == other.negative_ && limbs_ == other.limbs_;
  }
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Signed three-way comparison: negative, zero, or positive.
  int Compare(const BigInt& other) const;

  BigInt Abs() const;

  /// Greatest common divisor, always non-negative; Gcd(0,0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Value as int64 if it fits. Returns false on overflow.
  bool ToInt64(int64_t* out) const;

  /// Decimal representation.
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  /// Compares magnitudes only.
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Precondition: |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Schoolbook long division on magnitudes. Precondition: b non-empty.
  static void DivModMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              std::vector<uint32_t>* quotient,
                              std::vector<uint32_t>* remainder);
  static void Trim(std::vector<uint32_t>* limbs);

  void Normalize();

  bool negative_;
  std::vector<uint32_t> limbs_;
};

}  // namespace cqlopt

#endif  // CQLOPT_UTIL_BIGINT_H_
