#include "util/failpoint.h"

namespace cqlopt {
namespace failpoint {
namespace {

struct SiteState {
  bool armed = false;
  long skip = 0;   // hits to pass through before firing
  long times = 0;  // firings remaining; <= 0 while armed means unlimited
  bool unlimited = false;
  long hits = 0;  // total hits, armed or not
};

struct Registry {
  std::atomic<int> armed_count{0};
  std::mutex mu;
  std::map<std::string, SiteState> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

const std::vector<std::string>& AllSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      kWalShortWrite,
      kWalFsync,
      kWalCrashBeforeCommit,
      kWalCrashAfterCommit,
      kServerShortWrite,
      kEvalRuleAlloc,
      kSchedulerWorkerHold,
      kReplicaFetch,
      kReplicaTornRecord,
      kReplicaCrashBeforeApply,
      kReplicaCrashMidApply,
      kReplicaCrashAfterApply,
  };
  return *sites;
}

void Arm(const std::string& site, long skip, long times) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteState& state = registry.sites[site];
  if (!state.armed) registry.armed_count.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.skip = skip;
  state.times = times;
  state.unlimited = times <= 0;
}

void Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  registry.armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& entry : registry.sites) {
    if (entry.second.armed) {
      registry.armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    entry.second = SiteState();
  }
}

bool ShouldFail(const std::string& site) {
  Registry& registry = GetRegistry();
  // Fast path: nothing armed anywhere -> skip the map lookup AND the hit
  // count. Counters are only meaningful to harnesses that armed something
  // (or called ResetCounters and will arm next), so the production cost of
  // a disarmed failpoint stays at one relaxed load.
  if (registry.armed_count.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteState& state = registry.sites[site];
  ++state.hits;
  if (!state.armed) return false;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  if (state.unlimited) return true;
  if (state.times <= 0) return false;
  if (--state.times == 0) {
    state.armed = false;
    registry.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

long Hits(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

void ResetCounters() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& entry : registry.sites) entry.second.hits = 0;
}

}  // namespace failpoint
}  // namespace cqlopt
