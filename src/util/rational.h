#ifndef CQLOPT_UTIL_RATIONAL_H_
#define CQLOPT_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

#include "util/bigint.h"

namespace cqlopt {

/// Exact rational number, the coefficient domain of the constraint algebra.
///
/// The paper's constraints range over the reals; for *linear* constraints,
/// satisfiability, implication and quantifier elimination over the reals
/// coincide with the same questions over the rationals, so exact rational
/// arithmetic gives exact answers (see DESIGN.md, substitutions table).
///
/// Invariants: denominator > 0; numerator/denominator coprime; zero is 0/1.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT(runtime/explicit)
  /// Precondition: den != 0.
  Rational(BigInt num, BigInt den);

  /// Parses "n", "-n", "n/m", or a decimal like "3.25" / "-0.5".
  static bool FromString(const std::string& text, Rational* out);

  const BigInt& numerator() const { return num_; }
  const BigInt& denominator() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_negative() const { return num_.is_negative(); }
  /// -1, 0, or +1.
  int sign() const { return num_.sign(); }
  bool is_integer() const { return den_ == BigInt(1); }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Precondition: other != 0.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }
  Rational& operator/=(const Rational& other) { return *this = *this / other; }

  bool operator==(const Rational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const { return Compare(other) < 0; }
  bool operator<=(const Rational& other) const { return Compare(other) <= 0; }
  bool operator>(const Rational& other) const { return Compare(other) > 0; }
  bool operator>=(const Rational& other) const { return Compare(other) >= 0; }

  /// Signed three-way comparison.
  int Compare(const Rational& other) const;

  Rational Abs() const { return is_negative() ? -*this : *this; }
  Rational Reciprocal() const;

  /// "n" for integers, "n/m" otherwise.
  std::string ToString() const;

  size_t Hash() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;
};

}  // namespace cqlopt

#endif  // CQLOPT_UTIL_RATIONAL_H_
