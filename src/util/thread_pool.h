#ifndef CQLOPT_UTIL_THREAD_POOL_H_
#define CQLOPT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cqlopt {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
///
/// Built for the fork-join shape of the parallel stratified fixpoint
/// (eval/seminaive.cc): every iteration submits one task per rule, then
/// Wait()s for the batch to drain before the serial reconcile/commit phase.
/// Keeping the workers alive across iterations avoids re-spawning threads
/// hundreds of times per evaluation.
///
/// Tasks must not throw (the library is exception-free; report failures
/// through state captured by the task). Submit after Wait() is allowed —
/// the pool is reusable batch to batch. The destructor drains outstanding
/// tasks before joining the workers.
///
/// Cooperative-abort contract: the pool never cancels a task — when a batch
/// must stop early (a worker hit a deadline / cancellation / injected
/// fault), the aborting task records the trip in state shared by the batch,
/// and every task checks that state at entry and at its periodic check
/// points, returning immediately once tripped (see Governor in
/// eval/seminaive.cc). Wait() then returns with the queue drained cheaply
/// rather than leaving tasks running at unknown points.
class ThreadPool {
 public:
  /// Spawns max(1, threads) workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for some worker to run.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished running.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task queued / stop
  std::condition_variable idle_cv_;  // signals Wait(): batch drained
  std::deque<std::function<void()>> queue_;
  long in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cqlopt

#endif  // CQLOPT_UTIL_THREAD_POOL_H_
