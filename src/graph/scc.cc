#include "graph/scc.h"

#include <algorithm>

namespace cqlopt {
namespace {

/// Iterative Tarjan SCC state.
struct TarjanState {
  std::map<PredId, int> index;
  std::map<PredId, int> lowlink;
  std::map<PredId, bool> on_stack;
  std::vector<PredId> stack;
  int next_index = 0;
};

}  // namespace

SccDecomposition::SccDecomposition(const DependencyGraph& graph) {
  TarjanState st;
  // Iterative DFS with an explicit frame stack to avoid recursion depth
  // limits on pathological programs.
  struct Frame {
    PredId node;
    std::vector<PredId> successors;
    size_t next = 0;
  };
  for (PredId root : graph.nodes()) {
    if (st.index.count(root) > 0) continue;
    std::vector<Frame> frames;
    auto push_node = [&](PredId v) {
      st.index[v] = st.next_index;
      st.lowlink[v] = st.next_index;
      ++st.next_index;
      st.stack.push_back(v);
      st.on_stack[v] = true;
      const auto& succ = graph.SuccessorsOf(v);
      frames.push_back(Frame{v, {succ.begin(), succ.end()}, 0});
    };
    push_node(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next < frame.successors.size()) {
        PredId w = frame.successors[frame.next++];
        if (st.index.count(w) == 0) {
          push_node(w);
        } else if (st.on_stack[w]) {
          st.lowlink[frame.node] =
              std::min(st.lowlink[frame.node], st.index[w]);
        }
      } else {
        PredId v = frame.node;
        if (st.lowlink[v] == st.index[v]) {
          std::vector<PredId> component;
          while (true) {
            PredId w = st.stack.back();
            st.stack.pop_back();
            st.on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          for (PredId w : component) {
            component_of_[w] = static_cast<int>(components_.size());
          }
          components_.push_back(std::move(component));
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          st.lowlink[parent.node] =
              std::min(st.lowlink[parent.node], st.lowlink[v]);
        }
      }
    }
  }
}

int SccDecomposition::ComponentOf(PredId pred) const {
  auto it = component_of_.find(pred);
  return it == component_of_.end() ? -1 : it->second;
}

std::vector<std::vector<PredId>> SccDecomposition::TopDownFrom(
    PredId query_pred, const DependencyGraph& graph) const {
  std::set<PredId> reachable = graph.ReachableFrom(query_pred);
  std::vector<std::vector<PredId>> out;
  // components_ is in reverse topological order; walk backwards and keep
  // reachable components.
  for (auto it = components_.rbegin(); it != components_.rend(); ++it) {
    bool keep = false;
    for (PredId p : *it) {
      if (reachable.count(p) > 0) keep = true;
    }
    if (keep) out.push_back(*it);
  }
  return out;
}

}  // namespace cqlopt
