#ifndef CQLOPT_GRAPH_SCC_H_
#define CQLOPT_GRAPH_SCC_H_

#include <vector>

#include "graph/dependency_graph.h"

namespace cqlopt {

/// Strongly connected components of a dependency graph, in *reverse*
/// topological order (components() front depends on nothing later; the
/// component of the query predicate comes last). The GMT grounding
/// procedure iterates them top-down, i.e. from back() to front()
/// (Section 6.2's "topological sorting of the SCCs with S1 as the SCC of
/// the query predicate").
class SccDecomposition {
 public:
  explicit SccDecomposition(const DependencyGraph& graph);

  /// Components in reverse topological order.
  const std::vector<std::vector<PredId>>& components() const {
    return components_;
  }

  /// Index of the component containing `pred` (-1 if unknown).
  int ComponentOf(PredId pred) const;

  /// Components in topological order starting from the one containing
  /// `query_pred` and walking down its dependencies (predicates not
  /// reachable from the query are omitted).
  std::vector<std::vector<PredId>> TopDownFrom(PredId query_pred,
                                               const DependencyGraph& graph)
      const;

 private:
  std::vector<std::vector<PredId>> components_;
  std::map<PredId, int> component_of_;
};

}  // namespace cqlopt

#endif  // CQLOPT_GRAPH_SCC_H_
