#ifndef CQLOPT_GRAPH_DEPENDENCY_GRAPH_H_
#define CQLOPT_GRAPH_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <vector>

#include "ast/program.h"

namespace cqlopt {

/// The predicate dependency graph of a program: an edge p -> q whenever some
/// rule defining p has q in its body. Used for reachability pruning, for
/// SCC-driven processing in the GMT grounding procedure (Section 6.2), and
/// for the top-down SCC ordering in Theorem 7.8's proofs.
class DependencyGraph {
 public:
  explicit DependencyGraph(const Program& program);

  /// All predicates occurring anywhere in the program, sorted.
  const std::vector<PredId>& nodes() const { return nodes_; }

  /// Successors of `pred` (predicates its rules depend on).
  const std::set<PredId>& SuccessorsOf(PredId pred) const;

  /// Predicates reachable from `start` (including itself).
  std::set<PredId> ReachableFrom(PredId start) const;

  /// True if p and q are mutually recursive (same SCC) — the "recursive
  /// with" test of Definition 6.1.
  bool MutuallyRecursive(PredId p, PredId q) const;

 private:
  std::vector<PredId> nodes_;
  std::map<PredId, std::set<PredId>> edges_;
  static const std::set<PredId> kEmpty;
};

}  // namespace cqlopt

#endif  // CQLOPT_GRAPH_DEPENDENCY_GRAPH_H_
