#include "graph/dependency_graph.h"

#include <algorithm>

#include "graph/scc.h"

namespace cqlopt {

const std::set<PredId> DependencyGraph::kEmpty;

DependencyGraph::DependencyGraph(const Program& program) {
  std::set<PredId> nodes;
  for (const Rule& rule : program.rules) {
    nodes.insert(rule.head.pred);
    for (const Literal& lit : rule.body) {
      nodes.insert(lit.pred);
      edges_[rule.head.pred].insert(lit.pred);
    }
  }
  nodes_.assign(nodes.begin(), nodes.end());
}

const std::set<PredId>& DependencyGraph::SuccessorsOf(PredId pred) const {
  auto it = edges_.find(pred);
  return it == edges_.end() ? kEmpty : it->second;
}

std::set<PredId> DependencyGraph::ReachableFrom(PredId start) const {
  std::set<PredId> seen = {start};
  std::vector<PredId> stack = {start};
  while (!stack.empty()) {
    PredId p = stack.back();
    stack.pop_back();
    for (PredId q : SuccessorsOf(p)) {
      if (seen.insert(q).second) stack.push_back(q);
    }
  }
  return seen;
}

bool DependencyGraph::MutuallyRecursive(PredId p, PredId q) const {
  if (p == q) return true;
  std::set<PredId> from_p = ReachableFrom(p);
  if (from_p.count(q) == 0) return false;
  std::set<PredId> from_q = ReachableFrom(q);
  return from_q.count(p) > 0;
}

}  // namespace cqlopt
