// cqlc: line-protocol client for cqld. Sends each positional argument as
// one request (or reads requests from stdin when none are given), prints
// the response lines, and exits nonzero if any response was an ERR.
//
//   cqlc --socket /tmp/cqld.sock
//        "PREPARE pred,qrp,mg ?- cheaporshort(msn, sea, T, C)."
//        "QUERY pred,qrp,mg ?- cheaporshort(msn, sea, T, C)."
//        "STATS" "SHUTDOWN"
//   cqlc --tcp localhost:7777 "STATS"
//   cqlc --tcp primary:7777,replica:7778 --retries 4 "QUERY - ?- p(X)."
//
// Transport robustness (DESIGN.md §15.6): every connect, write, and read is
// bounded by a deadline; a deadline or lost connection is a *client-side*
// error, reported distinctly from a server `ERR` response and retried with
// jittered exponential backoff across the (comma-separated) endpoint list.
// Exit codes: 0 all responses OK, 1 some response was a server ERR, 2
// usage, 3 transport gave out (timeout / no endpoint reachable) — scripts
// can tell "the server answered no" from "no server answered".
//
// Retrying a request after a torn exchange may deliver it twice; every
// protocol verb is idempotent on re-delivery (duplicate inserts dedup,
// retracts of absent facts count as misses, TICK re-advances a monotone
// clock by the same delta at most once per ack loss).

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"

namespace {

using cqlopt::LineClient;
using cqlopt::Status;
using cqlopt::StatusCode;

constexpr int kExitServerErr = 1;
constexpr int kExitUsage = 2;
constexpr int kExitTransport = 3;

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " (--socket <path[,path...]> | --tcp <host:port[,host:port...]>)"
      << " [request ...]\n"
      << "       [--connect-timeout-ms N] [--read-timeout-ms N]\n"
      << "       [--retries N] [--retry-backoff-ms N]\n"
      << "       (requests from stdin when none are given)\n";
  return kExitUsage;
}

/// One place to dial: a unix path or a host:port, from the comma-separated
/// endpoint list. Failover walks the list round-robin.
struct Endpoint {
  bool tcp = false;
  std::string path_or_host;
  std::string port;
  std::string label;  // for error messages
};

bool ParseEndpoints(const std::string& list, bool tcp,
                    std::vector<Endpoint>* out) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item.empty()) return false;
    Endpoint endpoint;
    endpoint.tcp = tcp;
    endpoint.label = item;
    if (tcp) {
      size_t colon = item.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == item.size()) {
        return false;
      }
      endpoint.path_or_host = item.substr(0, colon);
      endpoint.port = item.substr(colon + 1);
    } else {
      endpoint.path_or_host = item;
    }
    out->push_back(std::move(endpoint));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  // A server that dies mid-exchange must surface as "connection lost", not
  // kill the client: writes to the closed socket get EPIPE instead.
  std::signal(SIGPIPE, SIG_IGN);
  std::string socket_list;
  std::string tcp_list;
  int connect_timeout_ms = 3000;
  int read_timeout_ms = 10000;
  int retries = 2;
  int retry_backoff_ms = 100;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      if (const char* v = next()) socket_list = v; else return Usage(argv[0]);
    } else if (arg == "--tcp") {
      if (const char* v = next()) tcp_list = v; else return Usage(argv[0]);
    } else if (arg == "--connect-timeout-ms") {
      if (const char* v = next()) connect_timeout_ms = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--read-timeout-ms") {
      if (const char* v = next()) read_timeout_ms = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--retries") {
      if (const char* v = next()) retries = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--retry-backoff-ms") {
      if (const char* v = next()) retry_backoff_ms = std::atoi(v);
      else return Usage(argv[0]);
    } else {
      requests.push_back(arg);
    }
  }
  if (socket_list.empty() == tcp_list.empty()) return Usage(argv[0]);
  if (retries < 0) retries = 0;

  std::vector<Endpoint> endpoints;
  if (!ParseEndpoints(tcp_list.empty() ? socket_list : tcp_list,
                      !tcp_list.empty(), &endpoints)) {
    std::cerr << "cqlc: bad endpoint list '"
              << (tcp_list.empty() ? socket_list : tcp_list) << "'\n";
    return Usage(argv[0]);
  }

  std::unique_ptr<LineClient> client;
  size_t endpoint_index = 0;  // next endpoint to dial (round-robin failover)
  uint64_t jitter = 0x9e3779b97f4a7c15ull;  // deterministic xorshift stream

  // Dials endpoints round-robin until one accepts; cycles the whole list
  // once per call. Returns the last failure when none did.
  auto connect_somewhere = [&]() -> Status {
    Status last = Status::Unavailable("no endpoints");
    for (size_t attempt = 0; attempt < endpoints.size(); ++attempt) {
      const Endpoint& endpoint = endpoints[endpoint_index];
      endpoint_index = (endpoint_index + 1) % endpoints.size();
      cqlopt::Result<std::unique_ptr<LineClient>> conn =
          endpoint.tcp
              ? LineClient::ConnectTcp(endpoint.path_or_host, endpoint.port,
                                       connect_timeout_ms)
              : LineClient::ConnectUnix(endpoint.path_or_host,
                                        connect_timeout_ms);
      if (conn.ok()) {
        client = std::move(*conn);
        return Status::OK();
      }
      last = conn.status();
      std::cerr << "cqlc: " << endpoint.label << ": "
                << conn.status().ToString() << "\n";
    }
    return last;
  };

  int exit_code = 0;
  // Runs one request with retry/backoff/failover; returns false when the
  // transport is exhausted (exit_code already set to kExitTransport).
  auto run = [&](const std::string& request) {
    Status last = Status::OK();
    for (int attempt = 0; attempt <= retries; ++attempt) {
      if (attempt > 0) {
        // Jittered exponential backoff: full backoff doubling with a
        // deterministic jitter in the upper half, so stampedes decorrelate
        // but runs reproduce.
        int64_t base = static_cast<int64_t>(retry_backoff_ms)
                       << (attempt - 1 > 20 ? 20 : attempt - 1);
        jitter ^= jitter >> 12;
        jitter ^= jitter << 25;
        jitter ^= jitter >> 27;
        int64_t delay = base / 2 + 1 +
                        static_cast<int64_t>(jitter % (base / 2 + 1));
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      if (client == nullptr) {
        last = connect_somewhere();
        if (!last.ok()) continue;
      }
      LineClient::Response response;
      last = client->Exchange(request, read_timeout_ms, &response);
      if (last.ok()) {
        for (const std::string& line : response.lines) {
          std::cout << line << "\n";
        }
        if (response.is_error) exit_code = kExitServerErr;
        return true;
      }
      // Transport failure: the connection is in an unknown state, drop it
      // and fail over to the next endpoint on the retry.
      client.reset();
      std::cerr << "cqlc: " << last.ToString() << "\n";
    }
    std::cerr << "cqlc: giving up after " << (retries + 1)
              << " attempt(s): " << last.ToString() << "\n";
    exit_code = kExitTransport;
    return false;
  };

  if (!requests.empty()) {
    for (const std::string& request : requests) {
      if (!run(request)) break;
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!run(line)) break;
    }
  }
  return exit_code;
}
