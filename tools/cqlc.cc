// cqlc: line-protocol client for cqld. Sends each positional argument as
// one request (or reads requests from stdin when none are given), prints
// the response lines, and exits nonzero if any response was an ERR.
//
//   cqlc --socket /tmp/cqld.sock
//        "PREPARE pred,qrp,mg ?- cheaporshort(msn, sea, T, C)."
//        "QUERY pred,qrp,mg ?- cheaporshort(msn, sea, T, C)."
//        "STATS" "SHUTDOWN"
//   cqlc --tcp localhost:7777 "STATS"
//   cqlc --socket /tmp/cqld.sock "INGEST TTL 5000 reading(s1, 42)." \
//        "TICK 5000" "RETRACT flight(msn, ord, 80, 95)."

#include <csignal>
#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--socket <path> | --tcp <host:port>) [request ...]\n"
            << "       (requests from stdin when none are given)\n";
  return 2;
}

/// Connects to host:port over TCP; -1 (with a message on stderr) on
/// failure.
int ConnectTcp(const std::string& endpoint) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    std::cerr << "cqlc: --tcp needs host:port, got '" << endpoint << "'\n";
    return -1;
  }
  std::string host = endpoint.substr(0, colon);
  std::string port = endpoint.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0) {
    std::cerr << "cqlc: resolve " << endpoint << ": " << ::gai_strerror(rc)
              << "\n";
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    std::cerr << "cqlc: connect " << endpoint << ": " << std::strerror(errno)
              << "\n";
  }
  return fd;
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Sends one request and echoes the response through the END line.
/// Returns 0 on OK, 1 on an ERR response, -1 on transport failure.
int Exchange(int fd, const std::string& request, std::string* buffer) {
  if (!WriteAll(fd, request + "\n")) return -1;
  bool saw_err = false;
  while (true) {
    size_t newline = buffer->find('\n');
    if (newline == std::string::npos) {
      char chunk[4096];
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return -1;
      buffer->append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer->substr(0, newline);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    buffer->erase(0, newline + 1);
    if (line == "END") return saw_err ? 1 : 0;
    if (line.rfind("ERR ", 0) == 0) saw_err = true;
    std::cout << line << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // A server that dies mid-exchange must surface as "connection lost", not
  // kill the client: writes to the closed socket get EPIPE instead.
  std::signal(SIGPIPE, SIG_IGN);
  std::string socket_path;
  std::string tcp_endpoint;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) return Usage(argv[0]);
      socket_path = argv[++i];
    } else if (arg == "--tcp") {
      if (i + 1 >= argc) return Usage(argv[0]);
      tcp_endpoint = argv[++i];
    } else {
      requests.push_back(arg);
    }
  }
  if (socket_path.empty() == tcp_endpoint.empty()) return Usage(argv[0]);

  int fd;
  if (!tcp_endpoint.empty()) {
    fd = ConnectTcp(tcp_endpoint);
    if (fd < 0) return 1;
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      std::cerr << "cqlc: socket: " << std::strerror(errno) << "\n";
      return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      std::cerr << "cqlc: connect " << socket_path << ": "
                << std::strerror(errno) << "\n";
      ::close(fd);
      return 1;
    }
  }

  int exit_code = 0;
  std::string buffer;
  auto run = [&](const std::string& request) {
    int rc = Exchange(fd, request, &buffer);
    if (rc < 0) {
      std::cerr << "cqlc: connection lost\n";
      exit_code = 1;
      return false;
    }
    if (rc > 0) exit_code = 1;
    return true;
  };

  if (!requests.empty()) {
    for (const std::string& request : requests) {
      if (!run(request)) break;
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!run(line)) break;
    }
  }
  ::close(fd);
  return exit_code;
}
