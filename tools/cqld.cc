// cqld: the CQL query server. Loads a program (and optionally an EDB),
// then serves the line protocol (src/service/protocol.h) over a
// unix-domain socket or stdio until a client sends SHUTDOWN.
//
//   cqld --program programs/flights.cql --edb programs/flights_edb.cql
//        --socket /tmp/cqld.sock
//   cqld --program programs/flights.cql --stdio
//
// Durability and operational limits (README "Operational limits"):
//   --wal-dir DIR            write-ahead-log every ingest; replay on start
//   --wal-compact-bytes N    auto-compact the log past N bytes
//   --query-deadline-ms N    per-query wall-clock deadline
//   --max-derived-facts N    per-query derived-fact budget

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/server.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --program <file.cql> [--edb <file.cql>]"
      << " (--socket <path> | --stdio)\n"
      << "       [--threads N] [--max-iterations N]"
      << " [--subsumption none|single-fact|set-implication]\n"
      << "       [--prepared-capacity N] [--wal-dir DIR]"
      << " [--wal-compact-bytes N]\n"
      << "       [--query-deadline-ms N] [--max-derived-facts N]\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  std::string edb_path;
  std::string socket_path;
  bool stdio = false;
  cqlopt::ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      if (const char* v = next()) program_path = v; else return Usage(argv[0]);
    } else if (arg == "--edb") {
      if (const char* v = next()) edb_path = v; else return Usage(argv[0]);
    } else if (arg == "--socket") {
      if (const char* v = next()) socket_path = v; else return Usage(argv[0]);
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--threads") {
      if (const char* v = next()) options.eval.threads = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--max-iterations") {
      if (const char* v = next()) options.eval.max_iterations = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--prepared-capacity") {
      if (const char* v = next()) {
        options.prepared_capacity = static_cast<size_t>(std::atol(v));
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--wal-dir") {
      if (const char* v = next()) options.wal_dir = v;
      else return Usage(argv[0]);
    } else if (arg == "--wal-compact-bytes") {
      if (const char* v = next()) options.wal_compact_bytes = std::atol(v);
      else return Usage(argv[0]);
    } else if (arg == "--query-deadline-ms") {
      if (const char* v = next()) options.eval.deadline_ms = std::atol(v);
      else return Usage(argv[0]);
    } else if (arg == "--max-derived-facts") {
      if (const char* v = next()) options.eval.max_derived_facts = std::atol(v);
      else return Usage(argv[0]);
    } else if (arg == "--subsumption") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string mode = v;
      if (mode == "none") {
        options.eval.subsumption = cqlopt::SubsumptionMode::kNone;
      } else if (mode == "single-fact") {
        options.eval.subsumption = cqlopt::SubsumptionMode::kSingleFact;
      } else if (mode == "set-implication") {
        options.eval.subsumption = cqlopt::SubsumptionMode::kSetImplication;
      } else {
        std::cerr << "cqld: unknown subsumption mode '" << mode << "'\n";
        return 2;
      }
    } else {
      std::cerr << "cqld: unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  if (program_path.empty() || (socket_path.empty() == !stdio)) {
    return Usage(argv[0]);
  }

  std::string program_text;
  if (!ReadFile(program_path, &program_text)) {
    std::cerr << "cqld: cannot read program file " << program_path << "\n";
    return 1;
  }
  std::string edb_text;
  if (!edb_path.empty() && !ReadFile(edb_path, &edb_text)) {
    std::cerr << "cqld: cannot read EDB file " << edb_path << "\n";
    return 1;
  }

  auto service =
      cqlopt::QueryService::FromText(program_text, edb_text, options);
  if (!service.ok()) {
    std::cerr << "cqld: " << service.status().ToString() << "\n";
    return 1;
  }

  if (!options.wal_dir.empty()) {
    cqlopt::RecoverOutcome recovered;
    cqlopt::Status status = (*service)->Recover(&recovered);
    if (!status.ok()) {
      std::cerr << "cqld: WAL recovery failed: " << status.ToString() << "\n";
      return 1;
    }
    if (!recovered.warning.empty()) {
      std::cerr << "cqld: " << recovered.warning << "\n";
    }
    std::cerr << "cqld: recovered epoch " << recovered.epoch << " from "
              << options.wal_dir << " ("
              << (recovered.snapshot_loaded
                      ? "snapshot at epoch " +
                            std::to_string(recovered.snapshot_epoch) + " + "
                      : "")
              << recovered.batches_replayed << " replayed batch(es))\n";
  }

  cqlopt::Status served;
  if (stdio) {
    served = cqlopt::ServeStreams(**service, std::cin, std::cout);
  } else {
    std::cerr << "cqld: serving on " << socket_path << "\n";
    served = cqlopt::ServeUnixSocket(**service, socket_path);
  }
  if (!served.ok()) {
    std::cerr << "cqld: " << served.ToString() << "\n";
    return 1;
  }
  return 0;
}
