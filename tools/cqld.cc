// cqld: the CQL query server. Loads a program (and optionally an EDB),
// then serves the line protocol (src/service/protocol.h) over a
// unix-domain socket, TCP, or stdio until a client sends SHUTDOWN.
//
//   cqld --program programs/flights.cql --edb programs/flights_edb.cql
//        --socket /tmp/cqld.sock
//   cqld --program programs/flights.cql --tcp-port 7777 --workers 8
//   cqld --program programs/flights.cql --stdio
//
// Streaming (DESIGN.md §14): the protocol's RETRACT, TICK, and
// INGEST TTL <ms> verbs delete base facts, advance the logical clock
// (expiring due TTL facts), and commit window-bounded facts; all three
// are WAL-logged and replayed like inserts.
//
// Durability and operational limits (README "Operational limits"):
//   --wal-dir DIR            write-ahead-log every batch; replay on start
//   --wal-compact-bytes N    auto-compact the log past N bytes
//   --query-deadline-ms N    per-query wall-clock deadline
//   --max-derived-facts N    per-query derived-fact budget
//
// Scheduling and admission control (DESIGN.md §13):
//   --workers N              scheduler worker threads (default 4)
//   --queue-depth N          admission-queue bound; excess load is shed
//                            with ERR RESOURCE_EXHAUSTED (default 64)
//   --listen-backlog N       listen(2) backlog for both listeners
//   --priority-weights A,B,C stride weights for interactive,normal,batch
//
// Replication and lifecycle (DESIGN.md §15, README runbook):
//   --follow ENDPOINT        run as a read-only follower pulling the WAL
//                            feed from the primary at ENDPOINT (host:port,
//                            or a unix socket path containing '/')
//   --replica-timeout-ms N   per-fetch I/O deadline on the replication
//                            link (default 3000)
//   --drain-timeout-ms N     bound on the SIGTERM/SIGINT graceful drain
//                            (default 5000); in-flight requests finish and
//                            flush, new ones are refused, then exit 0

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/replica.h"
#include "service/server.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --program <file.cql> [--edb <file.cql>]"
      << " (--socket <path> | --tcp-port N | --stdio)\n"
      << "       [--threads N] [--max-iterations N]"
      << " [--subsumption none|single-fact|set-implication]\n"
      << "       [--prepared-capacity N] [--wal-dir DIR]"
      << " [--wal-compact-bytes N]\n"
      << "       [--query-deadline-ms N] [--max-derived-facts N]\n"
      << "       [--workers N] [--queue-depth N] [--listen-backlog N]\n"
      << "       [--priority-weights A,B,C]\n"
      << "       [--follow ENDPOINT] [--replica-timeout-ms N]\n"
      << "       [--drain-timeout-ms N]\n";
  return 2;
}

/// Write end of the SIGTERM/SIGINT self-pipe; the handler only writes one
/// byte (the only async-signal-safe thing worth doing) and the serve loop
/// reads it as the graceful-drain trigger.
int g_drain_pipe_write = -1;

void OnShutdownSignal(int) {
  char byte = 1;
  ssize_t ignored = ::write(g_drain_pipe_write, &byte, 1);
  (void)ignored;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_path;
  std::string edb_path;
  std::string socket_path;
  std::string follow_endpoint;
  int replica_timeout_ms = 3000;
  bool stdio = false;
  cqlopt::ServiceOptions options;
  cqlopt::ServerOptions server;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      if (const char* v = next()) program_path = v; else return Usage(argv[0]);
    } else if (arg == "--edb") {
      if (const char* v = next()) edb_path = v; else return Usage(argv[0]);
    } else if (arg == "--socket") {
      if (const char* v = next()) socket_path = v; else return Usage(argv[0]);
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--tcp-port") {
      if (const char* v = next()) server.tcp_port = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--workers") {
      if (const char* v = next()) server.scheduler.workers = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--queue-depth") {
      if (const char* v = next()) server.scheduler.queue_depth = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--listen-backlog") {
      if (const char* v = next()) server.listen_backlog = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--priority-weights") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      long weights[cqlopt::kPriorityClasses];
      if (std::sscanf(v, "%ld,%ld,%ld", &weights[0], &weights[1],
                      &weights[2]) != 3 ||
          weights[0] < 1 || weights[1] < 1 || weights[2] < 1) {
        std::cerr << "cqld: --priority-weights needs three positive "
                     "integers, e.g. 8,4,1\n";
        return 2;
      }
      for (int c = 0; c < cqlopt::kPriorityClasses; ++c) {
        server.scheduler.weights[c] = weights[c];
      }
    } else if (arg == "--threads") {
      if (const char* v = next()) options.eval.threads = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--max-iterations") {
      if (const char* v = next()) options.eval.max_iterations = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--prepared-capacity") {
      if (const char* v = next()) {
        options.prepared_capacity = static_cast<size_t>(std::atol(v));
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--wal-dir") {
      if (const char* v = next()) options.wal_dir = v;
      else return Usage(argv[0]);
    } else if (arg == "--wal-compact-bytes") {
      if (const char* v = next()) options.wal_compact_bytes = std::atol(v);
      else return Usage(argv[0]);
    } else if (arg == "--query-deadline-ms") {
      if (const char* v = next()) options.eval.deadline_ms = std::atol(v);
      else return Usage(argv[0]);
    } else if (arg == "--max-derived-facts") {
      if (const char* v = next()) options.eval.max_derived_facts = std::atol(v);
      else return Usage(argv[0]);
    } else if (arg == "--follow") {
      if (const char* v = next()) follow_endpoint = v;
      else return Usage(argv[0]);
    } else if (arg == "--replica-timeout-ms") {
      if (const char* v = next()) replica_timeout_ms = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--drain-timeout-ms") {
      if (const char* v = next()) server.drain_timeout_ms = std::atoi(v);
      else return Usage(argv[0]);
    } else if (arg == "--subsumption") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string mode = v;
      if (mode == "none") {
        options.eval.subsumption = cqlopt::SubsumptionMode::kNone;
      } else if (mode == "single-fact") {
        options.eval.subsumption = cqlopt::SubsumptionMode::kSingleFact;
      } else if (mode == "set-implication") {
        options.eval.subsumption = cqlopt::SubsumptionMode::kSetImplication;
      } else {
        std::cerr << "cqld: unknown subsumption mode '" << mode << "'\n";
        return 2;
      }
    } else {
      std::cerr << "cqld: unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  const bool has_listener = !socket_path.empty() || server.tcp_port >= 0;
  if (program_path.empty() || stdio == has_listener) {
    return Usage(argv[0]);
  }

  std::string program_text;
  if (!ReadFile(program_path, &program_text)) {
    std::cerr << "cqld: cannot read program file " << program_path << "\n";
    return 1;
  }
  std::string edb_text;
  if (!edb_path.empty() && !ReadFile(edb_path, &edb_text)) {
    std::cerr << "cqld: cannot read EDB file " << edb_path << "\n";
    return 1;
  }

  auto service =
      cqlopt::QueryService::FromText(program_text, edb_text, options);
  if (!service.ok()) {
    std::cerr << "cqld: " << service.status().ToString() << "\n";
    return 1;
  }

  if (!options.wal_dir.empty()) {
    cqlopt::RecoverOutcome recovered;
    cqlopt::Status status = (*service)->Recover(&recovered);
    if (!status.ok()) {
      std::cerr << "cqld: WAL recovery failed: " << status.ToString() << "\n";
      return 1;
    }
    if (!recovered.warning.empty()) {
      std::cerr << "cqld: " << recovered.warning << "\n";
    }
    std::cerr << "cqld: recovered epoch " << recovered.epoch << " from "
              << options.wal_dir << " ("
              << (recovered.snapshot_loaded
                      ? "snapshot at epoch " +
                            std::to_string(recovered.snapshot_epoch) + " + "
                      : "")
              << recovered.batches_replayed << " replayed batch(es))\n";
  }

  // Follower mode: pull the primary's WAL feed in the background, serve
  // reads (and HEALTH / PROMOTE) locally. The replicator is declared after
  // the service so it detaches its hooks and joins its thread first.
  std::unique_ptr<cqlopt::Replicator> replicator;
  if (!follow_endpoint.empty()) {
    auto reconnect = [follow_endpoint, replica_timeout_ms]()
        -> cqlopt::Result<std::unique_ptr<cqlopt::LineClient>> {
      if (follow_endpoint.find('/') != std::string::npos) {
        return cqlopt::LineClient::ConnectUnix(follow_endpoint,
                                               replica_timeout_ms);
      }
      size_t colon = follow_endpoint.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == follow_endpoint.size()) {
        return cqlopt::Status::InvalidArgument(
            "--follow needs host:port or a socket path, got '" +
            follow_endpoint + "'");
      }
      return cqlopt::LineClient::ConnectTcp(
          follow_endpoint.substr(0, colon), follow_endpoint.substr(colon + 1),
          replica_timeout_ms);
    };
    auto source = std::make_unique<cqlopt::RemoteReplicationSource>(
        nullptr, reconnect, replica_timeout_ms);
    replicator = std::make_unique<cqlopt::Replicator>(service->get(),
                                                      std::move(source));
    replicator->AttachHooks();
    replicator->Start();
    std::cerr << "cqld: following " << follow_endpoint
              << " (read-only until PROMOTE)\n";
  }

  cqlopt::Status served;
  if (stdio) {
    served = cqlopt::ServeStreams(**service, std::cin, std::cout);
  } else {
    // Graceful drain on SIGTERM/SIGINT via a self-pipe the serve loop
    // watches; a second signal during the drain falls back to the default
    // disposition (immediate death) so a wedged drain cannot trap the
    // operator.
    int drain_pipe[2] = {-1, -1};
    if (::pipe2(drain_pipe, O_NONBLOCK | O_CLOEXEC) == 0) {
      g_drain_pipe_write = drain_pipe[1];
      struct sigaction action {};
      action.sa_handler = OnShutdownSignal;
      action.sa_flags = SA_RESETHAND;
      ::sigaction(SIGTERM, &action, nullptr);
      ::sigaction(SIGINT, &action, nullptr);
      server.drain_fd = drain_pipe[0];
    } else {
      std::cerr << "cqld: pipe2 failed, serving without graceful drain\n";
    }
    server.socket_path = socket_path;
    server.on_ready = [](const cqlopt::ServerEndpoints& endpoints) {
      std::cerr << "cqld: serving on";
      if (!endpoints.socket_path.empty()) {
        std::cerr << " " << endpoints.socket_path;
      }
      if (endpoints.tcp_port >= 0) {
        std::cerr << " tcp:" << endpoints.tcp_port;
      }
      std::cerr << "\n";
    };
    served = cqlopt::ServeLoop(**service, server);
    if (drain_pipe[0] >= 0) ::close(drain_pipe[0]);
    if (drain_pipe[1] >= 0) ::close(drain_pipe[1]);
  }
  if (replicator != nullptr) replicator->Stop();
  if (!served.ok()) {
    std::cerr << "cqld: " << served.ToString() << "\n";
    return 1;
  }
  return 0;
}
