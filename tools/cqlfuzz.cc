// cqlfuzz: seeded differential fuzzing driver (DESIGN.md §9). Generates
// random CQL programs / queries / EDBs from a single seed and checks the
// metamorphic properties of src/testing/properties.h against them. On a
// failure the case is delta-debugged down to a minimal repro, written to
// the corpus directory (when --corpus-out is given), and the exact replay
// command line is printed.
//
//   cqlfuzz --seed 42 --iters 1000 --property all
//   cqlfuzz --seed 42 --iters 250 --faults        # crash-recovery only
//   cqlfuzz --seed 7331 --iters 1 --property rewrite_equiv   # replay
//   cqlfuzz --self-check --corpus-out tests/fuzz_corpus      # harness test
//   cqlfuzz --replay tests/fuzz_corpus/selfcheck-qrp-drop-atom.cql
//   cqlfuzz --list
//
// Every run is a pure function of --seed: iteration i fuzzes the case
// derived via Rng::DeriveSeed(seed, i), so `--seed S --iters 1` after
// seeing "iteration i (case seed S_i)" reproduces without replaying
// 0..i-1. Exit codes: 0 all checked properties held (or --self-check
// caught its planted bug), 1 a property failed (or --self-check did not
// catch the bug), 2 usage error.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "ast/printer.h"
#include "eval/validate.h"
#include "testing/corpus.h"
#include "testing/generator.h"
#include "testing/properties.h"
#include "testing/shrinker.h"

namespace {

using cqlopt::ValidateProgram;
using cqlopt::testing::AllProperties;
using cqlopt::testing::CorpusCase;
using cqlopt::testing::FindProperty;
using cqlopt::testing::FuzzCase;
using cqlopt::testing::FuzzOptions;
using cqlopt::testing::GenerateCase;
using cqlopt::testing::GenOptions;
using cqlopt::testing::LoadCorpusFile;
using cqlopt::testing::PlantedBug;
using cqlopt::testing::PlantedBugName;
using cqlopt::testing::PropertyInfo;
using cqlopt::testing::PropertyOutcome;
using cqlopt::testing::RenderCaseProgram;
using cqlopt::testing::Rng;
using cqlopt::testing::ShrinkCase;
using cqlopt::testing::ShrinkStats;
using cqlopt::testing::WriteCorpusFile;

struct Args {
  uint64_t seed = 1;
  int iters = 100;
  std::string property = "all";
  bool self_check = false;
  bool list = false;
  std::string corpus_out;  // directory; empty = don't write repro files
  std::string replay;      // corpus file to replay
};

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--seed N] [--iters N] [--property NAME|all] [--corpus-out DIR]\n"
      << "       [--faults] [--self-check] [--replay FILE.cql] [--list]\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    if (flag == "--seed" && value(&v)) {
      args->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--iters" && value(&v)) {
      args->iters = std::atoi(v.c_str());
    } else if (flag == "--property" && value(&v)) {
      args->property = v;
    } else if (flag == "--corpus-out" && value(&v)) {
      args->corpus_out = v;
    } else if (flag == "--replay" && value(&v)) {
      args->replay = v;
    } else if (flag == "--faults") {
      // Fault-injection mode: shorthand for the crash-recovery property
      // (WAL crash at every fail-point site, recover, compare to the
      // never-crashed run). The CI fault job runs exactly this.
      args->property = "crash_recovery";
    } else if (flag == "--self-check") {
      args->self_check = true;
    } else if (flag == "--list") {
      args->list = true;
    } else {
      return false;
    }
  }
  return args->iters > 0;
}

std::vector<const PropertyInfo*> SelectProperties(const std::string& name) {
  std::vector<const PropertyInfo*> selected;
  if (name == "all") {
    for (const PropertyInfo& info : AllProperties()) selected.push_back(&info);
  } else if (const PropertyInfo* info = FindProperty(name)) {
    selected.push_back(info);
  }
  return selected;
}

/// Shrinks a failing case, reports it, and writes the corpus repro.
/// Returns the shrunk case's rule count.
size_t HandleFailure(const Args& args, const PropertyInfo& property,
                     const FuzzCase& failing, const FuzzOptions& fuzz,
                     const std::string& message) {
  std::cerr << "FAIL " << property.name << " (case seed " << failing.seed
            << "): " << message << "\n";
  ShrinkStats stats;
  FuzzCase shrunk = ShrinkCase(failing, property, fuzz, {}, &stats);
  std::cerr << "shrunk to " << shrunk.program.rules.size() << " rule(s), "
            << shrunk.edb.size() << " EDB fact(s) in " << stats.attempts
            << " attempts\n";
  std::cerr << RenderCaseProgram(shrunk);
  if (!args.corpus_out.empty()) {
    std::string name =
        std::string(property.name) +
        (fuzz.bug != PlantedBug::kNone
             ? std::string("-") + PlantedBugName(fuzz.bug)
             : std::string("")) +
        "-" + std::to_string(failing.seed) + ".cql";
    std::string path = args.corpus_out + "/" + name;
    auto status = WriteCorpusFile(path, shrunk, property.name, fuzz.bug,
                                  message);
    if (status.ok()) {
      std::cerr << "repro written to " << path << "\n";
    } else {
      std::cerr << "could not write repro: " << status.ToString() << "\n";
    }
  }
  std::cerr << "replay: cqlfuzz --seed " << failing.seed
            << " --iters 1 --property " << property.name
            << (fuzz.bug != PlantedBug::kNone ? " --self-check" : "") << "\n";
  return shrunk.program.rules.size();
}

int RunFuzz(const Args& args) {
  std::vector<const PropertyInfo*> properties =
      SelectProperties(args.property);
  if (properties.empty()) {
    std::cerr << "unknown property: " << args.property
              << " (try --list)\n";
    return 2;
  }
  FuzzOptions fuzz;
  GenOptions gen;
  long checked = 0, skipped = 0;
  for (int i = 0; i < args.iters; ++i) {
    uint64_t case_seed = Rng::DeriveSeed(args.seed,
                                         static_cast<uint64_t>(i));
    FuzzCase c = GenerateCase(case_seed, gen);
    if (!ValidateProgram(c.program).ok()) {
      // The generator guarantees valid programs; a rejection here is a
      // generator bug worth failing loudly on.
      std::cerr << "FAIL generator emitted an invalid program (case seed "
                << case_seed << ")\n";
      return 1;
    }
    for (const PropertyInfo* property : properties) {
      PropertyOutcome outcome = property->fn(c, fuzz);
      if (!outcome.ok) {
        HandleFailure(args, *property, c, fuzz, outcome.message);
        return 1;
      }
      outcome.skipped ? ++skipped : ++checked;
    }
  }
  std::cout << "OK " << args.iters << " cases, " << checked
            << " property checks, " << skipped << " skipped (seed "
            << args.seed << ")\n";
  return 0;
}

/// --self-check: plant a pipeline bug and prove the harness catches it and
/// shrinks the repro to a handful of rules.
int RunSelfCheck(const Args& args) {
  const PropertyInfo* property = FindProperty("rewrite_equiv");
  if (property == nullptr) return 2;
  for (PlantedBug bug :
       {PlantedBug::kDropConstraintAtom, PlantedBug::kDropRule}) {
    FuzzOptions fuzz;
    fuzz.bug = bug;
    GenOptions gen;
    bool caught = false;
    for (int i = 0; i < args.iters && !caught; ++i) {
      uint64_t case_seed = Rng::DeriveSeed(args.seed,
                                           static_cast<uint64_t>(i));
      FuzzCase c = GenerateCase(case_seed, gen);
      PropertyOutcome outcome = property->fn(c, fuzz);
      if (outcome.ok) continue;
      caught = true;
      size_t rules =
          HandleFailure(args, *property, c, fuzz, outcome.message);
      if (rules > 10) {
        std::cerr << "self-check: shrunk repro has " << rules
                  << " rules, expected <= 10\n";
        return 1;
      }
    }
    if (!caught) {
      std::cerr << "self-check: planted bug " << PlantedBugName(bug)
                << " was NOT caught in " << args.iters << " iterations\n";
      return 1;
    }
    std::cout << "self-check: planted bug " << PlantedBugName(bug)
              << " caught and shrunk\n";
  }
  return 0;
}

/// --replay: run a corpus file's property, honoring its `% bug:` header.
/// A `% bug:` repro passes the replay when the property still *fails*
/// (the harness keeps catching the planted bug); a plain repro passes
/// when the property holds (the engine bug stays fixed).
int RunReplay(const Args& args) {
  auto loaded = LoadCorpusFile(args.replay);
  if (!loaded.ok()) {
    std::cerr << args.replay << ": " << loaded.status().ToString() << "\n";
    return 2;
  }
  const PropertyInfo* property = FindProperty(loaded->property);
  if (property == nullptr) {
    std::cerr << args.replay << ": unknown property " << loaded->property
              << "\n";
    return 2;
  }
  FuzzOptions fuzz;
  fuzz.bug = loaded->bug;
  PropertyOutcome outcome = property->fn(loaded->c, fuzz);
  bool expect_failure = loaded->bug != PlantedBug::kNone;
  bool failed = !outcome.ok;
  std::cout << args.replay << ": " << loaded->property
            << (failed ? " FAILED" : outcome.skipped ? " skipped" : " ok");
  if (!outcome.message.empty()) std::cout << " (" << outcome.message << ")";
  std::cout << (expect_failure ? " [planted bug: expected to fail]" : "")
            << "\n";
  return failed == expect_failure ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  if (args.list) {
    for (const PropertyInfo& info : AllProperties()) {
      std::cout << info.name << "\t" << info.summary << "\n";
    }
    return 0;
  }
  if (!args.replay.empty()) return RunReplay(args);
  if (args.self_check) return RunSelfCheck(args);
  return RunFuzz(args);
}
