#include "constraint/conjunction.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

TEST(ConjunctionTest, EmptyIsTrue) {
  Conjunction c;
  EXPECT_TRUE(c.IsSatisfiable());
  EXPECT_EQ(c.ToString(), "true");
  EXPECT_FALSE(c.known_unsat());
}

TEST(ConjunctionTest, FalseIsUnsatisfiable) {
  Conjunction f = Conjunction::False();
  EXPECT_TRUE(f.known_unsat());
  EXPECT_FALSE(f.IsSatisfiable());
  EXPECT_EQ(f.ToString(), "false");
}

TEST(ConjunctionTest, LinearAtomsAccumulate) {
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());   // x <= 4
  ASSERT_TRUE(c.AddLinear(Atom({{1, -1}}, 2, CmpOp::kLe)).ok());   // x >= 2
  EXPECT_TRUE(c.IsSatisfiable());
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -1, CmpOp::kLe)).ok());   // x <= 1
  EXPECT_FALSE(c.IsSatisfiable());
}

TEST(ConjunctionTest, TriviallyFalseAtomSetsUnsat) {
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({}, 1, CmpOp::kLe)).ok());  // 1 <= 0
  EXPECT_TRUE(c.known_unsat());
}

TEST(ConjunctionTest, EqualityMergesClasses) {
  Conjunction c;
  ASSERT_TRUE(c.AddEquality(1, 2).ok());
  ASSERT_TRUE(c.AddEquality(2, 3).ok());
  EXPECT_EQ(c.Find(1), c.Find(3));
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{3, -1}}, 5, CmpOp::kLe)).ok());  // v3 >= 5
  EXPECT_FALSE(c.IsSatisfiable());  // v1 = v3 but v1 <= 4 < 5 <= v3
}

TEST(ConjunctionTest, SymbolBindingConflictIsUnsat) {
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(1, 7).ok());
  ASSERT_TRUE(c.BindSymbol(1, 7).ok());
  EXPECT_TRUE(c.IsSatisfiable());
  ASSERT_TRUE(c.BindSymbol(1, 8).ok());
  EXPECT_FALSE(c.IsSatisfiable());
}

TEST(ConjunctionTest, SymbolConflictThroughEquality) {
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(1, 7).ok());
  ASSERT_TRUE(c.BindSymbol(2, 8).ok());
  ASSERT_TRUE(c.AddEquality(1, 2).ok());
  EXPECT_FALSE(c.IsSatisfiable());
}

TEST(ConjunctionTest, MixingSymbolAndArithmeticIsTypeError) {
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(1, 7).ok());
  Status st = c.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe));
  EXPECT_EQ(st.code(), StatusCode::kTypeError);

  Conjunction d;
  ASSERT_TRUE(d.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  Status st2 = d.BindSymbol(1, 7);
  EXPECT_EQ(st2.code(), StatusCode::kTypeError);
}

TEST(ConjunctionTest, EquatingSymbolicAndNumericVarIsTypeError) {
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(1, 7).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{2, 1}}, -4, CmpOp::kLe)).ok());
  Status st = c.AddEquality(1, 2);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(ConjunctionTest, AddConjunctionMergesEverything) {
  Conjunction a;
  ASSERT_TRUE(a.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  Conjunction b;
  ASSERT_TRUE(b.AddEquality(1, 2).ok());
  ASSERT_TRUE(b.BindSymbol(3, 9).ok());
  ASSERT_TRUE(a.AddConjunction(b).ok());
  EXPECT_EQ(a.Find(1), a.Find(2));
  EXPECT_EQ(a.GetSymbol(3), std::optional<SymbolId>(9));
  EXPECT_TRUE(a.IsSatisfiable());
}

TEST(ConjunctionTest, GetNumericValueFromEquality) {
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -5, CmpOp::kEq)).ok());  // x = 5
  EXPECT_EQ(c.GetNumericValue(1), std::optional<Rational>(Rational(5)));
}

TEST(ConjunctionTest, GetNumericValueFromTightBounds) {
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -5, CmpOp::kLe)).ok());   // x <= 5
  ASSERT_TRUE(c.AddLinear(Atom({{1, -1}}, 5, CmpOp::kLe)).ok());   // x >= 5
  EXPECT_EQ(c.GetNumericValue(1), std::optional<Rational>(Rational(5)));
}

TEST(ConjunctionTest, GetNumericValueThroughSubstitution) {
  Conjunction c;
  // x = y + 2, y = 3 -> x = 5.
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}, {2, -1}}, -2, CmpOp::kEq)).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{2, 1}}, -3, CmpOp::kEq)).ok());
  EXPECT_EQ(c.GetNumericValue(1), std::optional<Rational>(Rational(5)));
}

TEST(ConjunctionTest, GetNumericValueAbsentWhenRange) {
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -5, CmpOp::kLe)).ok());
  EXPECT_FALSE(c.GetNumericValue(1).has_value());
}

TEST(ConjunctionTest, IsGroundOverMixed) {
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(1, 4).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{2, 1}}, -7, CmpOp::kEq)).ok());
  EXPECT_TRUE(c.IsGroundOver({1, 2}));
  EXPECT_FALSE(c.IsGroundOver({1, 2, 3}));
}

TEST(ConjunctionTest, ProjectKeepsOnlyRequestedVars) {
  Conjunction c;
  // x + y <= 6, x >= 2: project onto {y} gives y <= 4 (Example 4.1).
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe)).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{1, -1}}, 2, CmpOp::kLe)).ok());
  auto projected = c.Project({2});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->ToString(), "$2 <= 4");
}

TEST(ConjunctionTest, ProjectPreservesSymbolsAndEqualities) {
  Conjunction c;
  ASSERT_TRUE(c.AddEquality(1, 2).ok());
  ASSERT_TRUE(c.AddEquality(2, 3).ok());
  ASSERT_TRUE(c.BindSymbol(1, 5).ok());
  auto projected = c.Project({2, 3});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->Find(2), projected->Find(3));
  EXPECT_EQ(projected->GetSymbol(3), std::optional<SymbolId>(5));
  for (VarId v : projected->Vars()) EXPECT_NE(v, 1);
}

TEST(ConjunctionTest, ProjectReRootsLinearAtoms) {
  Conjunction c;
  // v1 = v2 and v1 <= 4; project onto {v2}: v2 <= 4 must survive even
  // though the atom was stored over the class root v1.
  ASSERT_TRUE(c.AddEquality(2, 1).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  auto projected = c.Project({2});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->ToString(), "$2 <= 4");
}

TEST(ConjunctionTest, ProjectOfFalseIsFalse) {
  auto projected = Conjunction::False().Project({1});
  ASSERT_TRUE(projected.ok());
  EXPECT_FALSE(projected->IsSatisfiable());
}

TEST(ConjunctionTest, RenameAppliesMapping) {
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe)).ok());
  ASSERT_TRUE(c.BindSymbol(3, 9).ok());
  Conjunction renamed = c.Rename({{1, 10}, {2, 20}, {3, 30}});
  EXPECT_EQ(renamed.GetSymbol(30), std::optional<SymbolId>(9));
  EXPECT_FALSE(renamed.GetSymbol(3).has_value());
  EXPECT_TRUE(renamed.IsSatisfiable());
}

TEST(ConjunctionTest, NonInjectiveRenameConjoins) {
  Conjunction c;
  // $1 <= 4 and $2 >= 10 renamed {$1->X, $2->X} is unsatisfiable.
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{2, -1}}, 10, CmpOp::kLe)).ok());
  Conjunction renamed = c.Rename({{1, 5}, {2, 5}});
  EXPECT_FALSE(renamed.IsSatisfiable());
}

TEST(ConjunctionTest, SimplifyRemovesRedundantAtoms) {
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -2, CmpOp::kLe)).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -5, CmpOp::kLe)).ok());
  c.Simplify();
  EXPECT_EQ(c.linear().size(), 1u);
  EXPECT_EQ(c.ToString(), "$1 <= 2");
}

TEST(ConjunctionTest, ToStringIsCanonicalAcrossInsertionOrder) {
  Conjunction a;
  ASSERT_TRUE(a.AddEquality(1, 2).ok());
  ASSERT_TRUE(a.AddLinear(Atom({{3, 1}}, -4, CmpOp::kLe)).ok());
  Conjunction b;
  ASSERT_TRUE(b.AddLinear(Atom({{3, 1}}, -4, CmpOp::kLe)).ok());
  ASSERT_TRUE(b.AddEquality(2, 1).ok());
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_TRUE(a.StructurallyEquals(b));
}

TEST(ConjunctionTest, LinearWithEqualitiesMaterializes) {
  Conjunction c;
  ASSERT_TRUE(c.AddEquality(1, 2).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  auto atoms = c.LinearWithEqualities();
  EXPECT_EQ(atoms.size(), 2u);  // the bound plus the equality
}

}  // namespace
}  // namespace cqlopt
