// Edge cases across modules: malformed inputs, degenerate programs, and
// boundary behaviours that the per-module suites do not cover.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "constraint/fourier_motzkin.h"
#include "constraint/implication.h"
#include "core/optimizer.h"
#include "transform/magic.h"

namespace cqlopt {
namespace {

TEST(ParserEdgeTest, MalformedInputsRejectedNotCrashing) {
  for (const char* bad : {
           "q(X",                       // unclosed literal
           "q(X) :- .",                 // empty body item
           "q(X) :- e(X)",              // missing dot
           ":- e(X).",                  // missing head
           "q(X) :- e(X), <= 4.",       // dangling operator
           "q(X) :- e(X), X <= .",      // missing rhs
           "q(X) :- e(X), X ! 4.",      // unknown operator
           "?- .",                      // empty query
           "q() :- .",                  // empty args + empty body
           "123(X).",                   // numeric predicate
           "q(X) :- e(X) e(X).",        // missing comma
       }) {
    auto result = ParseProgram(bad);
    EXPECT_FALSE(result.ok()) << bad;
  }
}

TEST(ParserEdgeTest, DeepParenthesesNest) {
  auto result = ParseProgram("q(X) :- e(X), ((((X)))) <= ((4)).");
  EXPECT_TRUE(result.ok());
}

TEST(ParserEdgeTest, LargeCoefficientsExact) {
  auto result = ParseProgram(
      "q(X) :- e(X), 123456789123456789 * X <= 987654321987654321.");
  ASSERT_TRUE(result.ok());
  const Rule& rule = result->program.rules[0];
  ASSERT_EQ(rule.constraints.linear().size(), 1u);
}

TEST(ParserEdgeTest, NegativeConstantsInArgs) {
  auto result = ParseProgram("fact(-3, 0 - 5).");
  ASSERT_TRUE(result.ok());
  const Rule& rule = result->program.rules[0];
  EXPECT_EQ(rule.constraints.GetNumericValue(rule.head.args[0]),
            std::optional<Rational>(Rational(-3)));
  EXPECT_EQ(rule.constraints.GetNumericValue(rule.head.args[1]),
            std::optional<Rational>(Rational(-5)));
}

TEST(FmEdgeTest, ManyVariablesChain) {
  // x0 <= x1 <= ... <= x19 and x19 <= x0 - 1: unsat via a 20-step chain.
  std::vector<LinearConstraint> sys;
  for (VarId v = 1; v < 20; ++v) {
    LinearExpr e = LinearExpr::Var(v) - LinearExpr::Var(v + 1);
    sys.emplace_back(e, CmpOp::kLe);
  }
  LinearExpr close = LinearExpr::Var(20) - LinearExpr::Var(1);
  close.AddConstant(Rational(1));
  sys.emplace_back(close, CmpOp::kLe);
  EXPECT_FALSE(fm::IsSatisfiable(sys));
  sys.pop_back();
  EXPECT_TRUE(fm::IsSatisfiable(sys));
}

TEST(FmEdgeTest, CoefficientBlowupStaysExact) {
  // Doubling chain: x_{i+1} = 2 x_i; x1 = 1 forces x30 = 2^29.
  std::vector<LinearConstraint> sys;
  for (VarId v = 1; v < 30; ++v) {
    LinearExpr e = LinearExpr::Var(v + 1) - LinearExpr::Var(v).Scale(Rational(2));
    sys.emplace_back(e, CmpOp::kEq);
  }
  sys.emplace_back(LinearExpr::Var(1) - LinearExpr::Constant(Rational(1)),
                   CmpOp::kEq);
  Conjunction c;
  for (const auto& atom : sys) ASSERT_TRUE(c.AddLinear(atom).ok());
  auto value = c.GetNumericValue(30);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->ToString(), "536870912");  // 2^29, exactly
}

TEST(EvalEdgeTest, EmptyProgramFixpointImmediately) {
  Program p;
  auto run = Evaluate(p, Database(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.reached_fixpoint);
  EXPECT_EQ(run->stats.derivations, 0);
}

TEST(EvalEdgeTest, RuleOverMissingEdbRelation) {
  auto parsed = ParseProgram("q(X) :- nothing(X).");
  ASSERT_TRUE(parsed.ok());
  auto run = Evaluate(parsed->program, Database(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->db.TotalFacts(), 0u);
}

TEST(EvalEdgeTest, ZeroArityPredicates) {
  // Parser requires parentheses; a 0-ary head is spelled p().
  auto parsed = ParseProgram("p() :- e(X), X <= 4.  q() :- p().");
  ASSERT_TRUE(parsed.ok());
  Database db;
  ASSERT_TRUE(db.AddGroundFact(parsed->program.symbols.get(), "e",
                               {Database::Value::Number(Rational(1))})
                  .ok());
  auto run = Evaluate(parsed->program, db, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->db.FactsFor(parsed->program.symbols->LookupPredicate("q")),
            1u);
}

TEST(MagicEdgeTest, AllFreeQueryStillSound) {
  auto parsed = ParseProgram(
      "t(X, Y) :- e(X, Y).\n"
      "?- t(X, Y).\n");
  ASSERT_TRUE(parsed.ok());
  auto magic = MagicTemplates(parsed->program, parsed->queries[0], {});
  ASSERT_TRUE(magic.ok());
  Database db;
  ASSERT_TRUE(db.AddGroundFact(parsed->program.symbols.get(), "e",
                               {Database::Value::Number(Rational(1)),
                                Database::Value::Number(Rational(2))})
                  .ok());
  auto run = Evaluate(magic->program, db, {});
  ASSERT_TRUE(run.ok());
  auto answers = QueryAnswers(*run, magic->query);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(MagicEdgeTest, QueryOnEdbPredicateRejectedGracefully) {
  // Adorning a query against a predicate with no rules: the magic program
  // degenerates to the seed plus nothing; evaluation returns EDB matches
  // only if the predicate was treated as derived. We only require no crash
  // and a sound (possibly empty) rewrite.
  auto parsed = ParseProgram(
      "t(X) :- e(X).\n"
      "?- e(1).\n");
  ASSERT_TRUE(parsed.ok());
  auto magic = MagicTemplates(parsed->program, parsed->queries[0], {});
  EXPECT_TRUE(magic.ok());
}

TEST(ImplicationEdgeTest, EqualityChainsThroughManyVariables) {
  Conjunction a;
  for (VarId v = 1; v < 30; ++v) ASSERT_TRUE(a.AddEquality(v, v + 1).ok());
  Conjunction b;
  ASSERT_TRUE(b.AddEquality(1, 30).ok());
  EXPECT_TRUE(Implies(a, b));
  EXPECT_FALSE(Implies(b, a));
}

TEST(OptimizerEdgeTest, ConstraintFactOnlyProgram) {
  auto opt = Optimizer::FromText("window(T) :- T >= 0, T <= 10.\n");
  ASSERT_TRUE(opt.ok());
  auto run = opt->Run(opt->program(), Database(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->stats.all_ground);
  EXPECT_EQ(run->db.TotalFacts(), 1u);
}

}  // namespace
}  // namespace cqlopt
