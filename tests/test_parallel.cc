// Differential-testing suite for the parallel stratified fixpoint: at every
// thread count the evaluation must be *byte-identical* to the serial run —
// same facts in the same entry order, same birth stamps, same rule labels,
// same rendered trace, same stats — because workers only fill thread-local
// buffers that a deterministic merge (rule order, then enumeration order)
// reassembles into exactly the serial pending list. This is a much stronger
// check than fixpoint equality: any scheduling leak (a worker observing
// another's derivation, a merge reordering) changes entry order or birth
// stamps and fails here even when the final fact set is right.

#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "constraint/constraint_set.h"
#include "core/workload.h"
#include "eval/loader.h"
#include "eval/seminaive.h"
#include "transform/magic.h"
#include "transform/predicate_constraints.h"

namespace cqlopt {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(CQLOPT_PROGRAMS_DIR) + "/" + name;
}

/// Corpus-style EDB: 12 numeric tuples per database predicate (matches
/// test_stratified.cc so both suites stress the same workloads).
Database SyntheticEdb(const Program& program, uint64_t seed) {
  Database db;
  for (PredId pred : program.DatabasePredicates()) {
    const std::string& name = program.symbols->PredicateName(pred);
    int arity = program.Arity(pred);
    std::mt19937_64 rng(seed + static_cast<uint64_t>(pred));
    for (int i = 0; i < 12; ++i) {
      std::vector<Database::Value> values;
      for (int a = 0; a < arity; ++a) {
        values.push_back(Database::Value::Number(
            Rational(static_cast<int64_t>(rng() % 30))));
      }
      (void)db.AddGroundFact(program.symbols.get(), name, values);
    }
  }
  return db;
}

/// Byte-identity of two evaluation results: every relation has the same
/// entries in the same order with the same canonical key, birth stamp, and
/// deriving rule.
::testing::AssertionResult ResultsIdentical(const EvalResult& serial,
                                            const EvalResult& parallel,
                                            const SymbolTable& symbols) {
  std::set<PredId> preds;
  for (const auto& [pred, rel] : serial.db.relations()) preds.insert(pred);
  for (const auto& [pred, rel] : parallel.db.relations()) preds.insert(pred);
  for (PredId pred : preds) {
    const Relation* a = serial.db.Find(pred);
    const Relation* b = parallel.db.Find(pred);
    size_t na = a == nullptr ? 0 : a->size();
    size_t nb = b == nullptr ? 0 : b->size();
    if (na != nb) {
      return ::testing::AssertionFailure()
             << symbols.PredicateName(pred) << ": " << na << " vs " << nb
             << " entries";
    }
    for (size_t i = 0; i < na; ++i) {
      if (a->fact(i).Key() != b->fact(i).Key() ||
          a->birth(i) != b->birth(i) ||
          a->rule_label(i) != b->rule_label(i)) {
        return ::testing::AssertionFailure()
               << symbols.PredicateName(pred) << " entry " << i << ": "
               << a->fact(i).Key() << "@" << a->birth(i) << " ["
               << a->rule_label(i) << "] vs " << b->fact(i).Key() << "@"
               << b->birth(i) << " [" << b->rule_label(i) << "]";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

void ExpectParallelMatchesSerial(const Program& program, const Database& db,
                                 const std::string& label,
                                 int max_iterations = 48) {
  // The serial prepass-on run is the single baseline for the whole matrix:
  // subsumption modes × threads {2, 8} × prepass {on, off}. The prepass
  // arms must be byte-identical to each other (conclusive interval answers
  // equal the exact FM decision), and every parallel run byte-identical to
  // its serial arm — so the deterministic-parallelism contract is proven
  // with the fast decision path active and inactive.
  for (auto [mode_name, mode] :
       {std::pair<const char*, SubsumptionMode>{"none",
                                                SubsumptionMode::kNone},
        {"single-fact", SubsumptionMode::kSingleFact},
        {"set-implication", SubsumptionMode::kSetImplication}}) {
    SCOPED_TRACE(label + " / subsumption=" + mode_name);
    EvalOptions options;
    options.strategy = EvalStrategy::kStratified;
    options.subsumption = mode;
    options.max_iterations = max_iterations;
    options.record_trace = true;
    options.prepass = true;
    options.threads = 1;
    auto serial = Evaluate(program, db, options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (bool prepass : {true, false}) {
      // prepass-on t=1 is the baseline itself; the off arm re-proves the
      // serial run too (t=1) before the parallel ones.
      for (int threads : prepass ? std::vector<int>{2, 8}
                                 : std::vector<int>{1, 2, 8}) {
        SCOPED_TRACE(std::string(prepass ? "prepass=on" : "prepass=off") +
                     " / threads=" + std::to_string(threads));
        options.prepass = prepass;
        options.threads = threads;
        auto run = Evaluate(program, db, options);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        EXPECT_TRUE(ResultsIdentical(*serial, *run, *program.symbols));
        EXPECT_EQ(RenderTrace(serial->trace), RenderTrace(run->trace));
        const EvalStats& s = serial->stats;
        const EvalStats& p = run->stats;
        EXPECT_EQ(s.derivations, p.derivations);
        EXPECT_EQ(s.inserted, p.inserted);
        EXPECT_EQ(s.subsumed, p.subsumed);
        EXPECT_EQ(s.duplicates, p.duplicates);
        EXPECT_EQ(s.iterations, p.iterations);
        EXPECT_EQ(s.reached_fixpoint, p.reached_fixpoint);
        EXPECT_EQ(s.all_ground, p.all_ground);
        EXPECT_EQ(s.scc_iterations, p.scc_iterations);
        EXPECT_EQ(s.derivations_per_rule, p.derivations_per_rule);
        if (!prepass) {
          EXPECT_EQ(p.prepass_conclusive, 0);
          EXPECT_EQ(p.prepass_fallback, 0);
        }
      }
    }
  }
}

class CorpusParallelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusParallelTest, IdenticalToSerial) {
  std::string text = ReadFile(ProgramPath(GetParam()));
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& program = parsed->program;
  Database db;
  if (std::string(GetParam()) == "flights.cql") {
    auto loaded = LoadDatabaseText(ReadFile(ProgramPath("flights_edb.cql")),
                                   program.symbols, &db);
    ASSERT_TRUE(loaded.ok());
  } else {
    db = SyntheticEdb(program, 1234);
  }
  // Capped runs included on purpose: the parallel engine must match the
  // serial one on the truncated frontier too, not just at a fixpoint.
  int cap = std::string(GetParam()) == "fib.cql" ? 14 : 48;
  ExpectParallelMatchesSerial(program, db, GetParam(), cap);
}

INSTANTIATE_TEST_SUITE_P(Programs, CorpusParallelTest,
                         ::testing::Values("flights.cql", "fib.cql",
                                           "example41.cql", "example42.cql",
                                           "example61.cql", "example71.cql",
                                           "example72.cql"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

ParseResult ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

TEST(ParallelWorkloadTest, FlightNetworkSymbolJoins) {
  Program p = ParseOrDie(
                  "cheaporshort(S, D, T, C) :- flight(S, D, T, C), "
                  "T <= 240.\n"
                  "cheaporshort(S, D, T, C) :- flight(S, D, T, C), "
                  "C <= 150.\n"
                  "flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, "
                  "T > 0.\n"
                  "flight(S, D, T, C) :- flight(S, D1, T1, C1), "
                  "flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.\n")
                  .program;
  Database db;
  FlightNetworkSpec spec;
  spec.airports = 8;
  spec.legs = 16;
  spec.seed = 5;
  ASSERT_TRUE(AddFlightNetwork(p.symbols.get(), spec, &db).ok());
  ExpectParallelMatchesSerial(p, db, "flights/generated-network");
}

TEST(ParallelWorkloadTest, MultiStratumSelectionOverClosure) {
  Program p = ParseOrDie(
                  "t(X, Y) :- e(X, Y).\n"
                  "t(X, Y) :- e(X, Z), t(Z, Y).\n"
                  "s(X, Y) :- t(X, Y), X <= 5.\n"
                  "top(X) :- s(X, Y), t(Y, Z).\n")
                  .program;
  Database db;
  ASSERT_TRUE(AddLayeredGraph(p.symbols.get(), "e", 4, 3, 2, 11, &db).ok());
  ExpectParallelMatchesSerial(p, db, "multi-stratum/layered-graph");
}

TEST(ParallelWorkloadTest, ConstraintFactsAcrossStrata) {
  Program p = ParseOrDie(
                  "base(X) :- X >= 0, X <= 10.\n"
                  "base(X) :- X >= 3, X <= 5.\n"
                  "lifted(X) :- base(X), u(X).\n")
                  .program;
  Database db;
  ASSERT_TRUE(AddUnaryRelation(p.symbols.get(), "u", 20, 15, 9, &db).ok());
  ExpectParallelMatchesSerial(p, db, "constraint-facts");
}

/// The pinned Table 1 workload: the magic fib program whose trace
/// test_paper_examples.cc locks against the paper. The parallel engine must
/// reproduce the identical (golden) trace on the capped non-terminating run.
TEST(ParallelPaperTest, Table1MagicFibTrace) {
  ParseResult in = ParseOrDie(
      "r1: fib(0, 1).\n"
      "r2: fib(1, 1).\n"
      "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
      "?- fib(N, 5).\n");
  ASSERT_EQ(in.queries.size(), 1u);
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(in.program, in.queries[0], options);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  ExpectParallelMatchesSerial(magic->program, Database(), "table1/P_fib^mg",
                              /*max_iterations=*/9);
}

/// The pinned Table 2 workload: fib with the hand-picked predicate
/// constraint $2 >= 1 propagated, then magic-rewritten — terminates, so
/// this exercises a full fixpoint with constraint facts and subsumption.
TEST(ParallelPaperTest, Table2ConstrainedMagicFibTrace) {
  ParseResult in = ParseOrDie(
      "r1: fib(0, 1).\n"
      "r2: fib(1, 1).\n"
      "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
      "?- fib(N, 5).\n");
  ASSERT_EQ(in.queries.size(), 1u);
  Conjunction c;
  LinearExpr e = LinearExpr::Constant(Rational(1)) - LinearExpr::Var(2);
  ASSERT_TRUE(c.AddLinear(LinearConstraint(e, CmpOp::kLe)).ok());
  std::map<PredId, ConstraintSet> given;
  given[in.program.symbols->LookupPredicate("fib")] = ConstraintSet::Of(c);
  auto pfib1 = PropagateGivenConstraints(in.program, given);
  ASSERT_TRUE(pfib1.ok()) << pfib1.status().ToString();
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(*pfib1, in.queries[0], options);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  ExpectParallelMatchesSerial(magic->program, Database(), "table2/P_fib,1^mg",
                              /*max_iterations=*/40);
}

}  // namespace
}  // namespace cqlopt
