#include "util/bigint.h"

#include <cstdint>
#include <random>

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
}

TEST(BigIntTest, FromInt64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-937}, int64_t{1} << 40, -(int64_t{1} << 40),
                    INT64_MAX, INT64_MIN + 1}) {
    BigInt b(v);
    int64_t back = 0;
    ASSERT_TRUE(b.ToInt64(&back)) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(BigIntTest, Int64MinIsHandled) {
  BigInt b(INT64_MIN);
  int64_t back = 0;
  ASSERT_TRUE(b.ToInt64(&back));
  EXPECT_EQ(back, INT64_MIN);
  EXPECT_EQ(b.ToString(), "-9223372036854775808");
}

TEST(BigIntTest, ToInt64OverflowDetected) {
  BigInt big(INT64_MAX);
  big = big + BigInt(1);
  int64_t out = 0;
  EXPECT_FALSE(big.ToInt64(&out));
  BigInt small(INT64_MIN);
  small = small - BigInt(1);
  EXPECT_FALSE(small.ToInt64(&out));
}

TEST(BigIntTest, FromStringParsesSignedDecimals) {
  BigInt b;
  ASSERT_TRUE(BigInt::FromString("123456789012345678901234567890", &b));
  EXPECT_EQ(b.ToString(), "123456789012345678901234567890");
  ASSERT_TRUE(BigInt::FromString("-42", &b));
  EXPECT_EQ(b.ToString(), "-42");
  ASSERT_TRUE(BigInt::FromString("+7", &b));
  EXPECT_EQ(b.ToString(), "7");
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  BigInt b;
  EXPECT_FALSE(BigInt::FromString("", &b));
  EXPECT_FALSE(BigInt::FromString("-", &b));
  EXPECT_FALSE(BigInt::FromString("12a3", &b));
  EXPECT_FALSE(BigInt::FromString("1.5", &b));
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a;
  ASSERT_TRUE(BigInt::FromString("4294967295", &a));  // 2^32 - 1
  BigInt sum = a + BigInt(1);
  EXPECT_EQ(sum.ToString(), "4294967296");
}

TEST(BigIntTest, SubtractionBorrowsAndFlipsSign) {
  EXPECT_EQ((BigInt(5) - BigInt(9)).ToString(), "-4");
  EXPECT_EQ((BigInt(-5) - BigInt(-9)).ToString(), "4");
  EXPECT_EQ((BigInt(5) - BigInt(5)).ToString(), "0");
}

TEST(BigIntTest, MultiplicationLargeValues) {
  BigInt a;
  BigInt b;
  ASSERT_TRUE(BigInt::FromString("123456789012345678901234567890", &a));
  ASSERT_TRUE(BigInt::FromString("987654321098765432109876543210", &b));
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToString(), "-3");
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToString(), "3");
}

TEST(BigIntTest, RemainderHasDividendSign) {
  EXPECT_EQ((BigInt(7) % BigInt(3)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(3)).ToString(), "-1");
  EXPECT_EQ((BigInt(7) % BigInt(-3)).ToString(), "1");
}

TEST(BigIntTest, DivModIdentityRandomized) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    int64_t x = static_cast<int64_t>(rng()) / 3;
    int64_t y = static_cast<int64_t>(rng() % 100000) + 1;
    BigInt bx(x);
    BigInt by(y);
    BigInt q = bx / by;
    BigInt r = bx % by;
    EXPECT_EQ(q * by + r, bx) << x << " / " << y;
    EXPECT_TRUE(r.Abs() < by.Abs());
  }
}

TEST(BigIntTest, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-3), BigInt(2));
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_LT(BigInt(2), BigInt(3));
  EXPECT_LE(BigInt(2), BigInt(2));
  EXPECT_GT(BigInt(0), BigInt(-1));
  BigInt big;
  ASSERT_TRUE(BigInt::FromString("10000000000000000000000", &big));
  EXPECT_GT(big, BigInt(INT64_MAX));
  EXPECT_LT(-big, BigInt(INT64_MIN));
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToString(), "0");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToString(), "1");
}

TEST(BigIntTest, NegationOfZeroStaysZero) {
  BigInt z(0);
  EXPECT_EQ((-z).sign(), 0);
  EXPECT_FALSE((-z).is_negative());
}

TEST(BigIntTest, HashDistinguishesSign) {
  EXPECT_NE(BigInt(5).Hash(), BigInt(-5).Hash());
  EXPECT_EQ(BigInt(5).Hash(), BigInt(5).Hash());
}

TEST(BigIntTest, PowerOfTwoChainExact) {
  // 2^256 computed by repeated squaring, checked against the known value.
  BigInt two(2);
  BigInt p = two;
  for (int i = 0; i < 8; ++i) p = p * p;  // 2^(2^8) = 2^256
  EXPECT_EQ(p.ToString(),
            "115792089237316195423570985008687907853269984665640564039457584"
            "007913129639936");
}

}  // namespace
}  // namespace cqlopt
