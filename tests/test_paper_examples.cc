// End-to-end reproductions of the paper's worked examples: the evaluation
// traces of Tables 1 and 2 and the termination/answer claims around them.
// The benchmark harnesses print the same artifacts; these tests pin them.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/equivalence.h"
#include "eval/seminaive.h"
#include "transform/magic.h"
#include "transform/predicate_constraints.h"

namespace cqlopt {
namespace {

struct Parsed {
  Program program;
  Query query;
};

Parsed ParseWithQuery(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queries.size(), 1u);
  return Parsed{parsed->program, parsed->queries[0]};
}

const char* kFib =
    "r1: fib(0, 1).\n"
    "r2: fib(1, 1).\n"
    "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
    "?- fib(N, 5).\n";

ConstraintSet FibSecondArgAtLeastOne() {
  // $2 >= 1, the paper's hand-picked (non-minimum) predicate constraint.
  Conjunction c;
  LinearExpr e = LinearExpr::Constant(Rational(1)) - LinearExpr::Var(2);
  EXPECT_TRUE(c.AddLinear(LinearConstraint(e, CmpOp::kLe)).ok());
  return ConstraintSet::Of(c);
}

TEST(PaperTable1, MagicFibDivergesButAnswers) {
  // Example 1.2 / Table 1: P_fib^mg computes the answer fib(4, 5) in
  // iteration 7 but never reaches a fixpoint.
  Parsed in = ParseWithQuery(kFib);
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(in.program, in.query, options);
  ASSERT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 24;
  eval.record_trace = true;
  auto run = Evaluate(magic->program, Database(), eval);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->stats.reached_fixpoint);  // diverges
  EXPECT_FALSE(run->stats.all_ground);        // m_fib constraint facts
  // The answer arrives in iteration 7.
  bool answer_at_7 = false;
  for (const Derivation& d : run->trace.at(7)) {
    if (d.fact == "fib(4, 5)" && d.outcome == InsertOutcome::kInserted) {
      answer_at_7 = true;
    }
  }
  EXPECT_TRUE(answer_at_7) << RenderTrace(run->trace);
  // And it is the unique answer.
  auto answers = QueryAnswers(*run, magic->query);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0].ToString(*in.program.symbols), "fib(4, 5)");
}

TEST(PaperTable1, TraceMatchesFirstIterations) {
  Parsed in = ParseWithQuery(kFib);
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(in.program, in.query, options);
  ASSERT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 9;
  eval.record_trace = true;
  auto run = Evaluate(magic->program, Database(), eval);
  ASSERT_TRUE(run.ok());
  // Iteration 0: the seed m_fib(N1, 5).
  ASSERT_EQ(run->trace[0].size(), 1u);
  EXPECT_EQ(run->trace[0][0].fact, "m_fib($1, 5)");
  // Iteration 1: m_fib(N1, V1; N1 > 0).
  ASSERT_EQ(run->trace[1].size(), 1u);
  EXPECT_EQ(run->trace[1][0].fact, "m_fib($1, $2; $1 > 0)");
  // Iteration 2: fib(1,1) plus a subsumed re-derivation.
  bool fib11 = false;
  for (const Derivation& d : run->trace[2]) {
    if (d.fact == "fib(1, 1)") fib11 = true;
  }
  EXPECT_TRUE(fib11);
  // Iteration 3: m_fib(0, V2) survives; m_fib(0, 4) is subsumed (bold in
  // the paper's table).
  bool general = false;
  bool specific_subsumed = false;
  for (const Derivation& d : run->trace[3]) {
    if (d.fact == "m_fib(0, $2)") {
      general = d.outcome == InsertOutcome::kInserted;
    }
    if (d.fact == "m_fib(0, 4)") {
      specific_subsumed = d.outcome == InsertOutcome::kSubsumed;
    }
  }
  EXPECT_TRUE(general) << RenderTrace(run->trace);
  EXPECT_TRUE(specific_subsumed) << RenderTrace(run->trace);
}

TEST(PaperTable2, PredicateConstraintMakesMagicTerminate) {
  // Example 4.4 / Table 2: propagating fib: $2 >= 1 makes the magic
  // evaluation terminate after iteration 8 with the same answer.
  Parsed in = ParseWithQuery(kFib);
  PredId fib = in.program.symbols->LookupPredicate("fib");
  std::map<PredId, ConstraintSet> given;
  given[fib] = FibSecondArgAtLeastOne();
  auto pfib1 = PropagateGivenConstraints(in.program, given);
  ASSERT_TRUE(pfib1.ok());
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(*pfib1, in.query, options);
  ASSERT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 40;
  eval.record_trace = true;
  auto run = Evaluate(magic->program, Database(), eval);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.reached_fixpoint);
  // The paper: answer in iteration 7, no new derivations in iteration 8.
  EXPECT_EQ(run->stats.iterations, 9);  // iterations 0..8
  bool answer_at_7 = false;
  for (const Derivation& d : run->trace.at(7)) {
    if (d.fact == "fib(4, 5)") answer_at_7 = true;
  }
  EXPECT_TRUE(answer_at_7) << RenderTrace(run->trace);
  auto answers = QueryAnswers(*run, magic->query);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
}

TEST(PaperTable2, BoundedMagicFactsMatchPaper) {
  // Table 2 iteration 1 computes m_fib(N1, V1; N1 > 0, V1 >= 1, V1 <= 4).
  Parsed in = ParseWithQuery(kFib);
  PredId fib = in.program.symbols->LookupPredicate("fib");
  std::map<PredId, ConstraintSet> given;
  given[fib] = FibSecondArgAtLeastOne();
  auto pfib1 = PropagateGivenConstraints(in.program, given);
  ASSERT_TRUE(pfib1.ok());
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(*pfib1, in.query, options);
  ASSERT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 40;
  eval.record_trace = true;
  auto run = Evaluate(magic->program, Database(), eval);
  ASSERT_TRUE(run.ok());
  ASSERT_GE(run->trace.size(), 2u);
  ASSERT_EQ(run->trace[1].size(), 1u);
  EXPECT_EQ(run->trace[1][0].fact,
            "m_fib($1, $2; $1 > 0 & $2 <= 4 & $2 >= 1)");
}

// --- Trace-regression pins -------------------------------------------------
// The full per-iteration derivation traces of Tables 1 and 2, pinned as
// golden strings so evaluator rewrites (e.g. the SCC-stratified strategy or
// the hash-indexed join path) cannot silently reorder or lose derivations.
// Both magic fib programs are a single SCC ({m_fib, fib} are mutually
// recursive), so the stratified evaluation must reproduce the global
// semi-naive trace verbatim, not merely the same fact sets.

constexpr char kTable1GoldenTrace[] =
    "iteration 0: {seed:m_fib($1, 5)}\n"
    "iteration 1: {mr3_1:m_fib($1, $2; $1 > 0)}\n"
    "iteration 2: {r2:fib(1, 1), mr3_1:*m_fib($1, $2; $1 > 0)*}\n"
    "iteration 3: {mr3_2:*m_fib(0, 4)*, mr3_2:m_fib(0, $2)}\n"
    "iteration 4: {r1:fib(0, 1)}\n"
    "iteration 5: {r3:fib(2, 2)}\n"
    "iteration 6: {mr3_2:*m_fib(1, 3)*, mr3_2:*m_fib(1, $2)*, "
    "r3:fib(3, 3)}\n"
    "iteration 7: {mr3_2:*m_fib(2, 2)*, mr3_2:*m_fib(2, $2)*, "
    "r3:fib(4, 5), r3:*fib(4, 5)*}\n"
    "iteration 8: {mr3_2:*m_fib(3, 0)*, mr3_2:*m_fib(3, $2)*, "
    "r3:fib(5, 8)}\n";

constexpr char kTable2GoldenTrace[] =
    "iteration 0: {seed:m_fib($1, 5)}\n"
    "iteration 1: {mr3_1:m_fib($1, $2; $1 > 0 & $2 <= 4 & $2 >= 1)}\n"
    "iteration 2: {r2:fib(1, 1), "
    "mr3_1:*m_fib($1, $2; $1 > 0 & $2 <= 3 & $2 >= 1)*}\n"
    "iteration 3: {mr3_2:m_fib(0, 4), "
    "mr3_2:m_fib(0, $2; $2 <= 3 & $2 >= 1)}\n"
    "iteration 4: {r1:fib(0, 1)}\n"
    "iteration 5: {r3:fib(2, 2)}\n"
    "iteration 6: {mr3_2:*m_fib(1, 3)*, "
    "mr3_2:*m_fib(1, $2; $2 <= 2 & $2 >= 1)*, r3:fib(3, 3)}\n"
    "iteration 7: {mr3_2:*m_fib(2, 2)*, mr3_2:*m_fib(2, 1)*, "
    "r3:fib(4, 5)}\n"
    "iteration 8: {}\n";

Result<EvalResult> EvaluateTable1(const Parsed& in, EvalStrategy strategy) {
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(in.program, in.query, options);
  EXPECT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 9;  // Table 1 shows iterations 0..8
  eval.record_trace = true;
  eval.strategy = strategy;
  return Evaluate(magic->program, Database(), eval);
}

Result<EvalResult> EvaluateTable2(const Parsed& in, EvalStrategy strategy) {
  PredId fib = in.program.symbols->LookupPredicate("fib");
  std::map<PredId, ConstraintSet> given;
  given[fib] = FibSecondArgAtLeastOne();
  auto pfib1 = PropagateGivenConstraints(in.program, given);
  EXPECT_TRUE(pfib1.ok());
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(*pfib1, in.query, options);
  EXPECT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 40;
  eval.record_trace = true;
  eval.strategy = strategy;
  return Evaluate(magic->program, Database(), eval);
}

TEST(PaperTable1, FullTracePinned) {
  Parsed in = ParseWithQuery(kFib);
  auto run = EvaluateTable1(in, EvalStrategy::kSemiNaive);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(RenderTrace(run->trace), kTable1GoldenTrace);
}

TEST(PaperTable1, StratifiedTraceMatchesOracle) {
  Parsed in = ParseWithQuery(kFib);
  auto run = EvaluateTable1(in, EvalStrategy::kStratified);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(RenderTrace(run->trace), kTable1GoldenTrace);
  EXPECT_FALSE(run->stats.reached_fixpoint);
  // Everything lives in one stratum.
  ASSERT_EQ(run->stats.scc_iterations.size(), 1u);
  EXPECT_EQ(run->stats.scc_iterations[0], 9);
}

TEST(PaperTable2, FullTracePinned) {
  Parsed in = ParseWithQuery(kFib);
  auto run = EvaluateTable2(in, EvalStrategy::kSemiNaive);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(RenderTrace(run->trace), kTable2GoldenTrace);
  EXPECT_TRUE(run->stats.reached_fixpoint);
}

TEST(PaperTable2, StratifiedTraceMatchesOracle) {
  // Fresh parses per run: rewriting the same Parsed twice would intern a
  // second magic predicate (m_fib_2) into the shared symbol table.
  auto oracle = EvaluateTable2(ParseWithQuery(kFib), EvalStrategy::kSemiNaive);
  auto run = EvaluateTable2(ParseWithQuery(kFib), EvalStrategy::kStratified);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(RenderTrace(run->trace), kTable2GoldenTrace);
  EXPECT_TRUE(run->stats.reached_fixpoint);
  // Identical final fact sets, entry by entry (keys are canonical).
  for (const auto& [pred, rel] : oracle->db.relations()) {
    const Relation* other = run->db.Find(pred);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(rel.size(), other->size());
    for (size_t i = 0; i < rel.size(); ++i) {
      EXPECT_EQ(rel.fact(i).Key(), other->fact(i).Key());
    }
  }
  // The constant-bound m_fib literals in r1/r2/mr3_2 make the index path
  // do real work even on this tiny program.
  EXPECT_GT(run->stats.index_probes, 0);
}

TEST(PaperExample44, FibOfSixTerminatesWithNo) {
  // "a seminaive bottom-up evaluation terminates, and answers no because
  // there is no N whose Fibonacci number is 6."
  auto parsed = ParseProgram(kFib);
  ASSERT_TRUE(parsed.ok());
  Program& program = parsed->program;
  auto query6 = ParseQueryText("?- fib(N, 6).", &program);
  ASSERT_TRUE(query6.ok());
  PredId fib = program.symbols->LookupPredicate("fib");
  std::map<PredId, ConstraintSet> given;
  given[fib] = FibSecondArgAtLeastOne();
  auto pfib1 = PropagateGivenConstraints(program, given);
  ASSERT_TRUE(pfib1.ok());
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(*pfib1, *query6, options);
  ASSERT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 64;
  auto run = Evaluate(magic->program, Database(), eval);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.reached_fixpoint);
  auto answers = QueryAnswers(*run, magic->query);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  // The unoptimized magic program would NOT have terminated.
  auto plain_magic = MagicTemplates(program, *query6, options);
  ASSERT_TRUE(plain_magic.ok());
  EvalOptions capped;
  capped.max_iterations = 30;
  auto plain_run = Evaluate(plain_magic->program, Database(), capped);
  ASSERT_TRUE(plain_run.ok());
  EXPECT_FALSE(plain_run->stats.reached_fixpoint);
}

}  // namespace
}  // namespace cqlopt
