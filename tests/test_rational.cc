#include "util/rational.h"

#include <random>

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r.ToString(), "0");
}

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational r(BigInt(4), BigInt(-6));
  EXPECT_EQ(r.ToString(), "-2/3");
  EXPECT_TRUE(r.is_negative());
  EXPECT_EQ(r.denominator().ToString(), "3");
}

TEST(RationalTest, ZeroNormalizesDenominator) {
  Rational r(BigInt(0), BigInt(-17));
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.denominator(), BigInt(1));
}

TEST(RationalTest, ArithmeticExact) {
  Rational a(BigInt(1), BigInt(3));
  Rational b(BigInt(1), BigInt(6));
  EXPECT_EQ((a + b).ToString(), "1/2");
  EXPECT_EQ((a - b).ToString(), "1/6");
  EXPECT_EQ((a * b).ToString(), "1/18");
  EXPECT_EQ((a / b).ToString(), "2");
}

TEST(RationalTest, ComparisonCrossMultiplies) {
  Rational a(BigInt(1), BigInt(3));
  Rational b(BigInt(2), BigInt(5));
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational(BigInt(-1), BigInt(3)));
}

TEST(RationalTest, FromStringVariants) {
  Rational r;
  ASSERT_TRUE(Rational::FromString("7", &r));
  EXPECT_EQ(r.ToString(), "7");
  ASSERT_TRUE(Rational::FromString("-3/9", &r));
  EXPECT_EQ(r.ToString(), "-1/3");
  ASSERT_TRUE(Rational::FromString("3.25", &r));
  EXPECT_EQ(r.ToString(), "13/4");
  ASSERT_TRUE(Rational::FromString("-0.5", &r));
  EXPECT_EQ(r.ToString(), "-1/2");
  ASSERT_TRUE(Rational::FromString("0.10", &r));
  EXPECT_EQ(r.ToString(), "1/10");
}

TEST(RationalTest, FromStringRejectsBadInput) {
  Rational r;
  EXPECT_FALSE(Rational::FromString("", &r));
  EXPECT_FALSE(Rational::FromString("1/0", &r));
  EXPECT_FALSE(Rational::FromString("a", &r));
  EXPECT_FALSE(Rational::FromString("1.", &r));
}

TEST(RationalTest, ReciprocalAndAbs) {
  Rational r(BigInt(-2), BigInt(3));
  EXPECT_EQ(r.Reciprocal().ToString(), "-3/2");
  EXPECT_EQ(r.Abs().ToString(), "2/3");
}

TEST(RationalTest, FieldAxiomsRandomized) {
  std::mt19937_64 rng(11);
  auto random_rational = [&rng]() {
    int64_t n = static_cast<int64_t>(rng() % 2001) - 1000;
    int64_t d = static_cast<int64_t>(rng() % 50) + 1;
    return Rational(BigInt(n), BigInt(d));
  };
  for (int i = 0; i < 100; ++i) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

TEST(RationalTest, CompareConsistentWithSubtraction) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 100; ++i) {
    Rational a(BigInt(static_cast<int64_t>(rng() % 200) - 100),
               BigInt(static_cast<int64_t>(rng() % 20) + 1));
    Rational b(BigInt(static_cast<int64_t>(rng() % 200) - 100),
               BigInt(static_cast<int64_t>(rng() % 20) + 1));
    EXPECT_EQ(a.Compare(b) < 0, (a - b).is_negative());
    EXPECT_EQ(a.Compare(b) == 0, (a - b).is_zero());
  }
}

}  // namespace
}  // namespace cqlopt
