// Unit and randomized coverage of the interval prepass (DESIGN.md §11):
// interval arithmetic with rational endpoints, strict vs. non-strict
// bounds, empty detection, ±inf widening, bound propagation over
// LinearConstraint conjunctions — and the soundness contract itself: a 10k
// case randomized sweep asserting that every conclusive prepass verdict
// (SAT / UNSAT / implied / not-implied) is confirmed by the exact
// Fourier–Motzkin tier. The prepass is allowed to say "don't know"; it is
// never allowed to disagree with FM.

#include <gtest/gtest.h>

#include "constraint/conjunction.h"
#include "constraint/fourier_motzkin.h"
#include "constraint/implication.h"
#include "constraint/interval.h"
#include "testing/generator.h"
#include "testing/rng.h"

namespace cqlopt {
namespace {

using ::cqlopt::testing::ConstraintGenOptions;
using ::cqlopt::testing::RandomConjunction;
using ::cqlopt::testing::Rng;

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr expr = LinearExpr::Constant(Rational(constant));
  for (const auto& [var, coeff] : terms) {
    expr = expr + LinearExpr::Var(var).Scale(Rational(coeff));
  }
  return LinearConstraint(expr, op);
}

// ---------------------------------------------------------------- Interval

TEST(IntervalTest, DefaultIsFullLine) {
  Interval iv;
  EXPECT_TRUE(iv.lower_infinite());
  EXPECT_TRUE(iv.upper_infinite());
  EXPECT_FALSE(iv.IsEmpty());
  EXPECT_FALSE(iv.Point().has_value());
  EXPECT_EQ(iv.ToString(), "(-inf, +inf)");
}

TEST(IntervalTest, TightenLowerOnlyShrinks) {
  Interval iv;
  EXPECT_TRUE(iv.TightenLower(Rational(2), /*strict=*/false));
  EXPECT_FALSE(iv.lower_infinite());
  EXPECT_EQ(iv.lower(), Rational(2));
  EXPECT_FALSE(iv.lower_strict());
  // A looser bound is a no-op.
  EXPECT_FALSE(iv.TightenLower(Rational(1), false));
  EXPECT_FALSE(iv.TightenLower(Rational(2), false));
  EXPECT_EQ(iv.lower(), Rational(2));
  // Same value but strict is a genuine tightening ([2,.. -> (2,..).
  EXPECT_TRUE(iv.TightenLower(Rational(2), true));
  EXPECT_TRUE(iv.lower_strict());
  // And a non-strict bound at the same value no longer tightens.
  EXPECT_FALSE(iv.TightenLower(Rational(2), false));
  EXPECT_TRUE(iv.lower_strict());
  EXPECT_TRUE(iv.TightenLower(Rational(3), false));
  EXPECT_EQ(iv.lower(), Rational(3));
  EXPECT_FALSE(iv.lower_strict());
}

TEST(IntervalTest, TightenUpperMirrorsLower) {
  Interval iv;
  EXPECT_TRUE(iv.TightenUpper(Rational(5), false));
  EXPECT_FALSE(iv.TightenUpper(Rational(7), false));
  EXPECT_TRUE(iv.TightenUpper(Rational(5), true));
  EXPECT_FALSE(iv.TightenUpper(Rational(5), false));
  EXPECT_TRUE(iv.TightenUpper(Rational(5, 2), false));
  EXPECT_EQ(iv.upper(), Rational(5, 2));
  EXPECT_FALSE(iv.upper_strict());
  EXPECT_EQ(iv.ToString(), "(-inf, 5/2]");
}

TEST(IntervalTest, RationalEndpointsCompareExactly) {
  Interval iv;
  EXPECT_TRUE(iv.TightenLower(Rational(1, 3), false));
  // 1/3 < 10/30 is false: identical rationals, so no tightening.
  EXPECT_FALSE(iv.TightenLower(Rational(10, 30), false));
  EXPECT_TRUE(iv.TightenLower(Rational(11, 30), false));
  EXPECT_TRUE(iv.TightenUpper(Rational(2, 5), false));
  EXPECT_FALSE(iv.IsEmpty());  // [11/30, 12/30]
  EXPECT_TRUE(iv.TightenUpper(Rational(11, 30), false));
  EXPECT_FALSE(iv.IsEmpty());  // the closed point 11/30
  ASSERT_TRUE(iv.Point().has_value());
  EXPECT_EQ(*iv.Point(), Rational(11, 30));
}

TEST(IntervalTest, EmptyOnCrossedBounds) {
  Interval iv;
  iv.TightenLower(Rational(4), false);
  EXPECT_FALSE(iv.IsEmpty());
  iv.TightenUpper(Rational(3), false);
  EXPECT_TRUE(iv.IsEmpty());
}

TEST(IntervalTest, EmptyOnEqualBoundsWithStrictEnd) {
  // [3, 3] is the point 3; [3, 3) and (3, 3] are empty.
  Interval closed;
  closed.TightenLower(Rational(3), false);
  closed.TightenUpper(Rational(3), false);
  EXPECT_FALSE(closed.IsEmpty());
  EXPECT_TRUE(closed.Point().has_value());

  Interval open_hi;
  open_hi.TightenLower(Rational(3), false);
  open_hi.TightenUpper(Rational(3), true);
  EXPECT_TRUE(open_hi.IsEmpty());

  Interval open_lo;
  open_lo.TightenLower(Rational(3), true);
  open_lo.TightenUpper(Rational(3), false);
  EXPECT_TRUE(open_lo.IsEmpty());
}

TEST(IntervalTest, HalfInfiniteIntervalsAreNeverEmpty) {
  Interval lower_only;
  lower_only.TightenLower(Rational(1000000), true);
  EXPECT_FALSE(lower_only.IsEmpty());
  EXPECT_FALSE(lower_only.Point().has_value());
  EXPECT_EQ(lower_only.ToString(), "(1000000, +inf)");

  Interval upper_only;
  upper_only.TightenUpper(Rational(-1000000), false);
  EXPECT_FALSE(upper_only.IsEmpty());
  EXPECT_EQ(upper_only.ToString(), "(-inf, -1000000]");
}

// ---------------------------------------------------------- IntervalDomain

TEST(IntervalDomainTest, SingleVariableBoundsLand) {
  const VarId x = 1;
  // x - 5 <= 0 and -x + 3 < 0: x in (3, 5].
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{x, 1}}, -5, CmpOp::kLe),
      Atom({{x, -1}}, 3, CmpOp::kLt),
  });
  EXPECT_FALSE(dom.definitely_empty());
  const Interval& iv = dom.Of(x);
  ASSERT_FALSE(iv.lower_infinite());
  ASSERT_FALSE(iv.upper_infinite());
  EXPECT_EQ(iv.lower(), Rational(3));
  EXPECT_TRUE(iv.lower_strict());
  EXPECT_EQ(iv.upper(), Rational(5));
  EXPECT_FALSE(iv.upper_strict());
}

TEST(IntervalDomainTest, UnconstrainedVariableStaysFullLine) {
  const VarId x = 1, y = 2;
  IntervalDomain dom =
      IntervalDomain::Propagate({Atom({{x, 1}}, -5, CmpOp::kLe)});
  EXPECT_TRUE(dom.Of(y).lower_infinite());
  EXPECT_TRUE(dom.Of(y).upper_infinite());
}

TEST(IntervalDomainTest, EqualityPinsAPoint) {
  const VarId x = 1;
  IntervalDomain dom =
      IntervalDomain::Propagate({Atom({{x, 2}}, -7, CmpOp::kEq)});  // 2x = 7
  ASSERT_FALSE(dom.definitely_empty());
  ASSERT_TRUE(dom.Of(x).Point().has_value());
  EXPECT_EQ(*dom.Of(x).Point(), Rational(7, 2));
}

TEST(IntervalDomainTest, TransitiveChainPropagatesThroughEqualities) {
  // t1 = 5, t2 = 7, t - t1 - t2 - 30 = 0  =>  t = 42.
  const VarId t = 1, t1 = 2, t2 = 3;
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{t1, 1}}, -5, CmpOp::kEq),
      Atom({{t2, 1}}, -7, CmpOp::kEq),
      Atom({{t, 1}, {t1, -1}, {t2, -1}}, -30, CmpOp::kEq),
  });
  ASSERT_FALSE(dom.definitely_empty());
  ASSERT_TRUE(dom.Of(t).Point().has_value());
  EXPECT_EQ(*dom.Of(t).Point(), Rational(42));
}

TEST(IntervalDomainTest, DetectsEmptyBox) {
  const VarId x = 1;
  // x >= 1 and x <= 0.
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{x, -1}}, 1, CmpOp::kLe),
      Atom({{x, 1}}, 0, CmpOp::kLe),
  });
  EXPECT_TRUE(dom.definitely_empty());
}

TEST(IntervalDomainTest, StrictnessDecidesBoundaryEmptiness) {
  const VarId x = 1;
  // x >= 3 and x <= 3 is the point; making either side strict empties it.
  EXPECT_FALSE(IntervalDomain::Propagate({
                                             Atom({{x, -1}}, 3, CmpOp::kLe),
                                             Atom({{x, 1}}, -3, CmpOp::kLe),
                                         })
                   .definitely_empty());
  EXPECT_TRUE(IntervalDomain::Propagate({
                                            Atom({{x, -1}}, 3, CmpOp::kLt),
                                            Atom({{x, 1}}, -3, CmpOp::kLe),
                                        })
                  .definitely_empty());
}

TEST(IntervalDomainTest, GroundFalseConstraintEmptiesTheBox) {
  IntervalDomain dom =
      IntervalDomain::Propagate({Atom({}, 1, CmpOp::kLe)});  // 1 <= 0
  EXPECT_TRUE(dom.definitely_empty());
}

TEST(IntervalDomainTest, DivergentTighteningTerminatesInconclusively) {
  // x <= y - 1 and y <= x - 1 walks both upper bounds down forever; the
  // round cap must stop it without claiming emptiness (the box never
  // empties — both intervals stay lower-infinite).
  const VarId x = 1, y = 2;
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{x, 1}, {y, -1}}, 1, CmpOp::kLe),
      Atom({{y, 1}, {x, -1}}, 1, CmpOp::kLe),
  });
  EXPECT_FALSE(dom.definitely_empty());
  // FM knows better — the conjunction is genuinely unsatisfiable — so the
  // prepass must return "don't know" here, not a wrong "sat".
  EXPECT_EQ(prepass::TrySatisfiable({
                Atom({{x, 1}, {y, -1}}, 1, CmpOp::kLe),
                Atom({{y, 1}, {x, -1}}, 1, CmpOp::kLe),
            }),
            std::nullopt);
}

TEST(IntervalDomainTest, RangeOfTracksAttainment) {
  const VarId x = 1, y = 2;
  // x in [1, 2), y in [10, 20]: range of x + 2y is [21, 42), lo closed
  // (both minima attained), hi open (x's sup is not attained).
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{x, -1}}, 1, CmpOp::kLe),
      Atom({{x, 1}}, -2, CmpOp::kLt),
      Atom({{y, -1}}, 10, CmpOp::kLe),
      Atom({{y, 1}}, -20, CmpOp::kLe),
  });
  ASSERT_FALSE(dom.definitely_empty());
  ExprRange r = dom.RangeOf(LinearExpr::Var(x) +
                            LinearExpr::Var(y).Scale(Rational(2)));
  ASSERT_FALSE(r.lo.infinite);
  ASSERT_FALSE(r.hi.infinite);
  EXPECT_EQ(r.lo.value, Rational(21));
  EXPECT_FALSE(r.lo.open);
  EXPECT_EQ(r.hi.value, Rational(42));
  EXPECT_TRUE(r.hi.open);
}

TEST(IntervalDomainTest, NegativeCoefficientFlipsContribution) {
  const VarId x = 1;
  // x in [1, 4]: range of -3x + 2 is [-10, -1].
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{x, -1}}, 1, CmpOp::kLe),
      Atom({{x, 1}}, -4, CmpOp::kLe),
  });
  ExprRange r = dom.RangeOf(LinearExpr::Var(x).Scale(Rational(-3)) +
                            LinearExpr::Constant(Rational(2)));
  ASSERT_FALSE(r.lo.infinite);
  ASSERT_FALSE(r.hi.infinite);
  EXPECT_EQ(r.lo.value, Rational(-10));
  EXPECT_EQ(r.hi.value, Rational(-1));
}

TEST(IntervalDomainTest, ProvesAndRefutesAtoms) {
  const VarId x = 1;
  // x in [3, 5].
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{x, -1}}, 3, CmpOp::kLe),
      Atom({{x, 1}}, -5, CmpOp::kLe),
  });
  // x <= 6 holds everywhere; x <= 2 fails everywhere; x <= 4 is mixed.
  EXPECT_TRUE(dom.ProvesAtom(Atom({{x, 1}}, -6, CmpOp::kLe)));
  EXPECT_TRUE(dom.RefutesAtom(Atom({{x, 1}}, -2, CmpOp::kLe)));
  EXPECT_FALSE(dom.ProvesAtom(Atom({{x, 1}}, -4, CmpOp::kLe)));
  EXPECT_FALSE(dom.RefutesAtom(Atom({{x, 1}}, -4, CmpOp::kLe)));
  EXPECT_TRUE(dom.ViolatedSomewhere(Atom({{x, 1}}, -4, CmpOp::kLe)));
  // Boundary: x <= 5 holds everywhere (sup attained at 5 <= 5);
  // x < 5 does not (the point x = 5 violates it), but x < 6 does.
  EXPECT_TRUE(dom.ProvesAtom(Atom({{x, 1}}, -5, CmpOp::kLe)));
  EXPECT_FALSE(dom.ProvesAtom(Atom({{x, 1}}, -5, CmpOp::kLt)));
  EXPECT_TRUE(dom.ViolatedSomewhere(Atom({{x, 1}}, -5, CmpOp::kLt)));
  EXPECT_TRUE(dom.ProvesAtom(Atom({{x, 1}}, -6, CmpOp::kLt)));
  // x >= 3 everywhere, so x < 3 is refuted everywhere.
  EXPECT_TRUE(dom.RefutesAtom(Atom({{x, 1}}, -3, CmpOp::kLt)));
  EXPECT_FALSE(dom.RefutesAtom(Atom({{x, 1}}, -3, CmpOp::kLe)));
}

TEST(IntervalDomainTest, EqualityAtomVerdicts) {
  const VarId x = 1, y = 2;
  // x pinned to 4, y in [0, 1].
  IntervalDomain dom = IntervalDomain::Propagate({
      Atom({{x, 1}}, -4, CmpOp::kEq),
      Atom({{y, -1}}, 0, CmpOp::kLe),
      Atom({{y, 1}}, -1, CmpOp::kLe),
  });
  EXPECT_TRUE(dom.ProvesAtom(Atom({{x, 1}}, -4, CmpOp::kEq)));
  EXPECT_TRUE(dom.RefutesAtom(Atom({{x, 1}}, -5, CmpOp::kEq)));
  // y = 1/2 is achievable but not everywhere: neither proved nor refuted.
  EXPECT_FALSE(dom.ProvesAtom(Atom({{y, 2}}, -1, CmpOp::kEq)));
  EXPECT_FALSE(dom.RefutesAtom(Atom({{y, 2}}, -1, CmpOp::kEq)));
  EXPECT_TRUE(dom.ViolatedSomewhere(Atom({{y, 2}}, -1, CmpOp::kEq)));
}

// ----------------------------------------------------------- prepass tier

TEST(PrepassTest, ConclusiveVerdictsOnEasyInputs) {
  const VarId x = 1;
  EXPECT_EQ(prepass::TrySatisfiable({
                Atom({{x, -1}}, 1, CmpOp::kLe),  // x >= 1
                Atom({{x, 1}}, 0, CmpOp::kLe),   // x <= 0
            }),
            std::optional<bool>(false));
  EXPECT_EQ(prepass::TrySatisfiable({
                Atom({{x, -1}}, 1, CmpOp::kLe),  // x >= 1
                Atom({{x, 1}}, -3, CmpOp::kLe),  // x <= 3
            }),
            std::optional<bool>(true));
  EXPECT_EQ(prepass::TryImpliesAtom({Atom({{x, -1}}, 2, CmpOp::kLe)},
                                    Atom({{x, -1}}, 0, CmpOp::kLe)),
            std::optional<bool>(true));  // x >= 2 implies x >= 0
  EXPECT_EQ(prepass::TryImpliesAtom({Atom({{x, -1}}, 0, CmpOp::kLe)},
                                    Atom({{x, -1}}, 2, CmpOp::kLe)),
            std::optional<bool>(false));  // x >= 0 does not imply x >= 2
}

TEST(PrepassTest, DisablerSuppressesProbes) {
  const VarId x = 1;
  std::vector<LinearConstraint> unsat = {
      Atom({{x, -1}}, 1, CmpOp::kLe),
      Atom({{x, 1}}, 0, CmpOp::kLe),
  };
  prepass::PrepassDisabler off;
  prepass::Counters before = prepass::Snapshot();
  EXPECT_FALSE(prepass::IsSatisfiable(unsat));  // exact tier decides
  prepass::Counters after = prepass::Snapshot();
  EXPECT_EQ(after.conclusive(), before.conclusive());
  EXPECT_EQ(after.fallback, before.fallback);
}

TEST(PrepassTest, WrapperCountsVerdicts) {
  const VarId x = 1;
  prepass::Counters before = prepass::Snapshot();
  EXPECT_FALSE(prepass::IsSatisfiable({
      Atom({{x, -1}}, 1, CmpOp::kLe),
      Atom({{x, 1}}, 0, CmpOp::kLe),
  }));
  prepass::Counters after = prepass::Snapshot();
  EXPECT_EQ(after.unsat, before.unsat + 1);
  EXPECT_EQ(after.fallback, before.fallback);
}

// The soundness sweep: 10k random conjunction/atom pairs, drawn from both
// the order-constraint class and the dense multi-variable class. Whenever
// the prepass is conclusive its answer must equal exact FM's. (With the
// DecisionCache untouched: fm:: wrappers cache, but both sides compute the
// same key families, so agreement is what matters.)
TEST(PrepassSoundnessTest, RandomizedVerdictsMatchExactFm) {
  constexpr int kCases = 10000;
  Rng rng(20260807);
  long sat_hits = 0, implies_hits = 0;
  for (int i = 0; i < kCases; ++i) {
    ConstraintGenOptions gen;
    gen.num_vars = 1 + static_cast<int>(rng.Next() % 4);
    gen.atoms = 1 + static_cast<int>(rng.Next() % 4);
    gen.dense = (i % 2) == 1;
    Conjunction lhs = RandomConjunction(&rng, gen);
    Conjunction probe = RandomConjunction(&rng, gen);
    std::vector<LinearConstraint> cs = lhs.LinearWithEqualities();

    if (auto fast = prepass::TrySatisfiable(cs)) {
      ++sat_hits;
      EXPECT_EQ(*fast, fm::IsSatisfiable(cs))
          << "case " << i << ": prepass SAT verdict diverged from FM";
    }
    for (const LinearConstraint& atom : probe.linear()) {
      if (auto fast = prepass::TryImpliesAtom(cs, atom)) {
        ++implies_hits;
        EXPECT_EQ(*fast, fm::ImpliesAtom(cs, atom))
            << "case " << i
            << ": prepass implication verdict diverged from FM";
      }
    }
  }
  // The sweep only proves soundness if the prepass actually concludes on a
  // healthy share of inputs; an always-inconclusive prepass would pass
  // vacuously.
  EXPECT_GT(sat_hits, kCases / 4);
  EXPECT_GT(implies_hits, kCases / 10);
}

// Conjunction-level prepass: conclusive TryImplies answers must match the
// exact cached Implies (which we query with the prepass disabled so the
// exact path is what actually runs).
TEST(PrepassSoundnessTest, RandomizedTryImpliesMatchesExactImplies) {
  constexpr int kCases = 2000;
  Rng rng(987654321);
  long hits = 0;
  for (int i = 0; i < kCases; ++i) {
    ConstraintGenOptions gen;
    gen.num_vars = 1 + static_cast<int>(rng.Next() % 3);
    gen.atoms = 1 + static_cast<int>(rng.Next() % 3);
    gen.dense = (i % 2) == 1;
    Conjunction a = RandomConjunction(&rng, gen);
    Conjunction b = RandomConjunction(&rng, gen);
    std::optional<bool> fast = prepass::TryImplies(a, b);
    if (!fast.has_value()) continue;
    ++hits;
    prepass::PrepassDisabler off;
    EXPECT_EQ(*fast, Implies(a, b))
        << "case " << i << ": TryImplies diverged from exact Implies";
  }
  EXPECT_GT(hits, kCases / 8);
}

}  // namespace
}  // namespace cqlopt
