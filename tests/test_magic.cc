#include "transform/magic.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "core/equivalence.h"
#include "eval/seminaive.h"

namespace cqlopt {
namespace {

struct Parsed {
  Program program;
  Query query;
};

Parsed ParseWithQuery(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queries.size(), 1u);
  return Parsed{parsed->program, parsed->queries[0]};
}

Database EdgeDb(SymbolTable* symbols, std::vector<std::pair<int, int>> edges) {
  Database db;
  for (auto& [u, v] : edges) {
    EXPECT_TRUE(db.AddGroundFact(symbols, "e",
                                 {Database::Value::Number(Rational(u)),
                                  Database::Value::Number(Rational(v))})
                    .ok());
  }
  return db;
}

TEST(MagicTest, StructureOfRewrittenProgram) {
  Parsed in = ParseWithQuery(
      "r1: t(X, Y) :- e(X, Y).\n"
      "r2: t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "?- t(1, Y).\n");
  auto magic = MagicTemplates(in.program, in.query, {});
  ASSERT_TRUE(magic.ok());
  // 2 modified rules + 1 magic rule (for the derived body literal) + seed.
  EXPECT_EQ(magic->program.rules.size(), 4u);
  EXPECT_TRUE(in.program.symbols->HasPredicate("m_t_bf"));
  // Modified rules start with the magic guard.
  int guards = 0;
  for (const Rule& rule : magic->program.rules) {
    if (!rule.body.empty() && rule.body[0].pred == magic->magic_query_pred) {
      ++guards;
    }
  }
  EXPECT_GE(guards, 3);  // two modified rules + the magic rule
}

TEST(MagicTest, SeedCarriesQueryConstant) {
  Parsed in = ParseWithQuery(
      "t(X, Y) :- e(X, Y).\n"
      "?- t(1, Y).\n");
  auto magic = MagicTemplates(in.program, in.query, {});
  ASSERT_TRUE(magic.ok());
  const Rule* seed = nullptr;
  for (const Rule& rule : magic->program.rules) {
    if (rule.IsConstraintFact()) seed = &rule;
  }
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->head.pred, magic->magic_query_pred);
  EXPECT_EQ(seed->head.arity(), 1);  // only the bound argument
  EXPECT_TRUE(
      seed->constraints.GetNumericValue(seed->head.args[0]).has_value());
}

TEST(MagicTest, RestrictsComputationToRelevantFacts) {
  Parsed in = ParseWithQuery(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "?- t(1, Y).\n");
  // Two disconnected chains; magic must only explore the one from node 1.
  Database edb = EdgeDb(in.program.symbols.get(),
                        {{1, 2}, {2, 3}, {10, 11}, {11, 12}, {12, 13}});
  auto magic = MagicTemplates(in.program, in.query, {});
  ASSERT_TRUE(magic.ok());
  auto plain_run = Evaluate(in.program, edb, {});
  auto magic_run = Evaluate(magic->program, edb, {});
  ASSERT_TRUE(plain_run.ok());
  ASSERT_TRUE(magic_run.ok());
  PredId t = in.program.symbols->LookupPredicate("t");
  PredId t_bf = in.program.symbols->LookupPredicate("t_bf");
  EXPECT_EQ(plain_run->db.FactsFor(t), 9u);  // full closure, both chains
  // Only the chain from node 1: t(1,2), t(2,3) (subquery), t(1,3).
  EXPECT_EQ(magic_run->db.FactsFor(t_bf), 3u);
  // Same answers.
  auto plain_answers = QueryAnswers(*plain_run, in.query);
  auto magic_answers = QueryAnswers(*magic_run, magic->query);
  ASSERT_TRUE(plain_answers.ok());
  ASSERT_TRUE(magic_answers.ok());
  EXPECT_TRUE(SameAnswers(*plain_answers, *magic_answers));
  EXPECT_EQ(plain_answers->size(), 2u);
}

TEST(MagicTest, ConstraintMagicCarriesSelections) {
  // Section 1's mrl vs mrl': when the constrained argument is carried by
  // the magic predicate (template-passing sips), constraint magic includes
  // T <= 240 in the magic rule and plain magic does not. (Under plain bf
  // adornments T is simply not carried — that is the mrl' regime.)
  Parsed in = ParseWithQuery(
      "r1: short(S, T) :- flight(S, T), T <= 240.\n"
      "r3: flight(S, T) :- leg(S, T).\n"
      "?- short(a, T).\n");
  MagicOptions with;
  with.sips = SipStrategy::kFullLeftToRight;
  with.constraint_magic = true;
  auto cm = MagicTemplates(in.program, in.query, with);
  ASSERT_TRUE(cm.ok());
  MagicOptions without;
  without.sips = SipStrategy::kFullLeftToRight;
  without.constraint_magic = false;
  auto pm = MagicTemplates(in.program, in.query, without);
  ASSERT_TRUE(pm.ok());
  auto count_inequalities = [](const Program& p) {
    int n = 0;
    for (const Rule& rule : p.rules) {
      for (const LinearConstraint& atom : rule.constraints.linear()) {
        if (atom.op() != CmpOp::kEq) ++n;
      }
    }
    return n;
  };
  EXPECT_GT(count_inequalities(cm->program), count_inequalities(pm->program));
}

TEST(MagicTest, PlainMagicStillEquivalent) {
  Parsed in = ParseWithQuery(
      "r1: short(S, T) :- flight(S, T), T <= 240.\n"
      "r3: flight(S, T) :- leg(S, T).\n"
      "?- short(a, T).\n");
  Database db;
  ASSERT_TRUE(db.AddGroundFact(in.program.symbols.get(), "leg",
                               {Database::Value::Symbol("a"),
                                Database::Value::Number(Rational(100))})
                  .ok());
  ASSERT_TRUE(db.AddGroundFact(in.program.symbols.get(), "leg",
                               {Database::Value::Symbol("a"),
                                Database::Value::Number(Rational(500))})
                  .ok());
  MagicOptions without;
  without.constraint_magic = false;
  auto pm = MagicTemplates(in.program, in.query, without);
  ASSERT_TRUE(pm.ok());
  auto run = Evaluate(pm->program, db, {});
  ASSERT_TRUE(run.ok());
  auto answers = QueryAnswers(*run, pm->query);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
}

TEST(MagicTest, FullSipsTemplatePassing) {
  // Backward fibonacci: the magic predicate keeps both arguments and the
  // seed is a genuine constraint fact m_fib(N, 5).
  Parsed in = ParseWithQuery(
      "fib(0, 1).\n"
      "fib(1, 1).\n"
      "fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
      "?- fib(N, 5).\n");
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(in.program, in.query, options);
  ASSERT_TRUE(magic.ok());
  PredId m_fib = in.program.symbols->LookupPredicate("m_fib");
  ASSERT_NE(m_fib, SymbolTable::kNoPred);
  EXPECT_EQ(magic->program.Arity(m_fib), 2);
  const Rule* seed = nullptr;
  for (const Rule& rule : magic->program.rules) {
    if (rule.IsConstraintFact() && rule.head.pred == m_fib) seed = &rule;
  }
  ASSERT_NE(seed, nullptr);
  EXPECT_FALSE(
      seed->constraints.GetNumericValue(seed->head.args[0]).has_value());
  EXPECT_TRUE(
      seed->constraints.GetNumericValue(seed->head.args[1]).has_value());
}

TEST(MagicTest, GroundFactsPreservedUnderBoundIfGround) {
  // Proposition 7.1: bf-adorned constraint magic keeps evaluation ground.
  Parsed in = ParseWithQuery(
      "t(X, Y) :- e(X, Y), X <= 10.\n"
      "t(X, Y) :- e(X, Z), t(Z, Y), Y >= 0.\n"
      "?- t(1, Y).\n");
  Database edb = EdgeDb(in.program.symbols.get(), {{1, 2}, {2, 3}});
  auto magic = MagicTemplates(in.program, in.query, {});
  ASSERT_TRUE(magic.ok());
  auto run = Evaluate(magic->program, edb, {});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.all_ground);
  EXPECT_TRUE(run->stats.reached_fixpoint);
}

TEST(MagicTest, MagicOfMapExposed) {
  Parsed in = ParseWithQuery(
      "t(X, Y) :- e(X, Y).\n"
      "?- t(1, Y).\n");
  auto magic = MagicTemplates(in.program, in.query, {});
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->magic_of.at(magic->query_pred), magic->magic_query_pred);
  EXPECT_EQ(magic->carried_positions.at(magic->query_pred),
            std::vector<int>{0});
}

}  // namespace
}  // namespace cqlopt
