#include "eval/fact.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

TEST(FactTest, GroundFactDetection) {
  SymbolTable symbols;
  PredId p = symbols.InternPredicate("p");
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -3, CmpOp::kEq)).ok());
  ASSERT_TRUE(c.BindSymbol(2, symbols.InternSymbol("madison")).ok());
  Fact fact(p, 2, c);
  EXPECT_TRUE(fact.IsGround());
}

TEST(FactTest, ConstraintFactNotGround) {
  SymbolTable symbols;
  PredId p = symbols.InternPredicate("p");
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, 1}}, -3, CmpOp::kLe)).ok());
  Fact fact(p, 1, c);
  EXPECT_FALSE(fact.IsGround());
}

TEST(FactTest, ToStringGround) {
  SymbolTable symbols;
  PredId p = symbols.InternPredicate("flight");
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(1, symbols.InternSymbol("madison")).ok());
  ASSERT_TRUE(c.AddLinear(Atom({{2, 1}}, -50, CmpOp::kEq)).ok());
  Fact fact(p, 2, c);
  EXPECT_EQ(fact.ToString(symbols), "flight(madison, 50)");
}

TEST(FactTest, ToStringConstraintFactShowsResidual) {
  SymbolTable symbols;
  PredId p = symbols.InternPredicate("m_fib");
  Conjunction c;
  ASSERT_TRUE(c.AddLinear(Atom({{1, -1}}, 0, CmpOp::kLt)).ok());  // $1 > 0
  ASSERT_TRUE(c.AddLinear(Atom({{2, 1}}, -5, CmpOp::kEq)).ok());
  Fact fact(p, 2, c);
  EXPECT_EQ(fact.ToString(symbols), "m_fib($1, 5; $1 > 0)");
}

TEST(FactTest, KeyIdentifiesStructurally) {
  SymbolTable symbols;
  PredId p = symbols.InternPredicate("p");
  Conjunction c1;
  ASSERT_TRUE(c1.AddLinear(Atom({{1, 1}}, -3, CmpOp::kLe)).ok());
  Conjunction c2;
  ASSERT_TRUE(c2.AddLinear(Atom({{1, 1}}, -3, CmpOp::kLe)).ok());
  EXPECT_EQ(Fact(p, 1, c1).Key(), Fact(p, 1, c2).Key());
  Conjunction c3;
  ASSERT_TRUE(c3.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  EXPECT_NE(Fact(p, 1, c1).Key(), Fact(p, 1, c3).Key());
  PredId q = symbols.InternPredicate("q");
  EXPECT_NE(Fact(p, 1, c1).Key(), Fact(q, 1, c1).Key());
}

}  // namespace
}  // namespace cqlopt
