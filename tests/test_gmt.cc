#include "transform/gmt.h"

#include <gtest/gtest.h>

#include "ast/normalize.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "core/equivalence.h"
#include "eval/seminaive.h"

namespace cqlopt {
namespace {

struct Parsed {
  Program program;
  Query query;
};

Parsed ParseWithQuery(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queries.size(), 1u);
  return Parsed{parsed->program, parsed->queries[0]};
}

// Example 6.1's program-query pair (Example 4.3 of Mumick et al.).
const char* kExample61 =
    "r1: p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).\n"
    "r2: p(X, Y) :- u(X, Y).\n"
    "r3: q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).\n"
    "?- X > 10, p(X, Y).\n";

TEST(GmtTest, Example61GroundedProgramStructure) {
  Parsed in = ParseWithQuery(kExample61);
  auto gmt = GmtTransform(in.program, in.query);
  ASSERT_TRUE(gmt.ok()) << gmt.status().ToString();
  // The paper's final program is {r41, r43, r51, r53, r61, r62, r11, r21,
  // r31}: 9 rules, defining p_cf, q_ccf, and three supplementary preds.
  EXPECT_EQ(gmt->grounded.rules.size(), 9u);
  EXPECT_EQ(gmt->supplementary.size(), 3u);
  // No magic predicate remains in the grounded program.
  for (const Rule& rule : gmt->grounded.rules) {
    EXPECT_EQ(in.program.symbols->PredicateName(rule.head.pred).rfind("m_", 0),
              std::string::npos)
        << RenderRule(rule, *in.program.symbols);
    for (const Literal& lit : rule.body) {
      EXPECT_EQ(in.program.symbols->PredicateName(lit.pred).rfind("m_", 0),
                std::string::npos);
    }
  }
}

TEST(GmtTest, Example61GroundedIsRangeRestricted) {
  // Theorem 6.2 (1).
  Parsed in = ParseWithQuery(kExample61);
  auto gmt = GmtTransform(in.program, in.query);
  ASSERT_TRUE(gmt.ok());
  EXPECT_TRUE(IsRangeRestricted(gmt->grounded));
  // The intermediate magic program is NOT range-restricted (mr2 defines
  // m_p_cf(W) with W only constrained, not ground).
  EXPECT_FALSE(IsRangeRestricted(gmt->magic));
}

TEST(GmtTest, Example61QueryEquivalence) {
  // Theorem 6.2 (2): the grounded program computes the same answers as the
  // original program, and only ground facts.
  Parsed in = ParseWithQuery(kExample61);
  auto gmt = GmtTransform(in.program, in.query);
  ASSERT_TRUE(gmt.ok());
  Database db;
  SymbolTable* symbols = in.program.symbols.get();
  auto add2 = [&](const char* pred, int a, int b) {
    ASSERT_TRUE(db.AddGroundFact(symbols, pred,
                                 {Database::Value::Number(Rational(a)),
                                  Database::Value::Number(Rational(b))})
                    .ok());
  };
  auto add3 = [&](const char* pred, int a, int b, int c) {
    ASSERT_TRUE(db.AddGroundFact(symbols, pred,
                                 {Database::Value::Number(Rational(a)),
                                  Database::Value::Number(Rational(b)),
                                  Database::Value::Number(Rational(c))})
                    .ok());
  };
  add2("u", 20, 1);
  add2("u", 30, 2);
  add2("u", 5, 3);
  add2("q1", 20, 11);
  add2("q2", 25, 30);
  add3("q3", 11, 25, 7);
  auto original = Evaluate(in.program, db, {});
  ASSERT_TRUE(original.ok());
  auto grounded = Evaluate(gmt->grounded, db, {});
  ASSERT_TRUE(grounded.ok());
  EXPECT_TRUE(grounded->stats.all_ground);
  auto a1 = QueryAnswers(*original, in.query);
  auto a2 = QueryAnswers(*grounded, gmt->query);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(SameAnswers(*a1, *a2));
  EXPECT_FALSE(a1->empty());  // u(20,1) answers directly; 30 via recursion
}

TEST(GmtTest, MagicProgramComputesConstraintFacts) {
  // The point of grounding: P^{ad,mg} computes constraint facts, the
  // grounded program does not.
  Parsed in = ParseWithQuery(kExample61);
  auto gmt = GmtTransform(in.program, in.query);
  ASSERT_TRUE(gmt.ok());
  Database db;
  SymbolTable* symbols = in.program.symbols.get();
  ASSERT_TRUE(db.AddGroundFact(symbols, "u",
                               {Database::Value::Number(Rational(20)),
                                Database::Value::Number(Rational(1))})
                  .ok());
  auto magic_run = Evaluate(gmt->magic, db, {});
  ASSERT_TRUE(magic_run.ok());
  EXPECT_FALSE(magic_run->stats.all_ground);  // seed m_p_cf(X; X > 10)
}

TEST(GmtTest, NotGroundableRejected) {
  // The condition variable of the head occurs only in a recursive literal:
  // Definition 6.1 fails.
  Parsed in = ParseWithQuery(
      "p(X) :- p(Y), X > Y.\n"
      "p(X) :- base(X).\n"
      "?- X > 10, p(X).\n");
  auto gmt = GmtTransform(in.program, in.query);
  EXPECT_FALSE(gmt.ok());
  EXPECT_EQ(gmt.status().code(), StatusCode::kInvalidArgument);
}

TEST(GmtTest, NoConditionArgumentsIsPlainMagic) {
  // Fully ground query: nothing to ground; the pipeline reduces to magic.
  Parsed in = ParseWithQuery(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "?- t(1, Y).\n");
  auto gmt = GmtTransform(in.program, in.query);
  ASSERT_TRUE(gmt.ok());
  EXPECT_TRUE(gmt->supplementary.empty());
  EXPECT_EQ(gmt->grounded.rules.size(), gmt->magic.rules.size());
}

}  // namespace
}  // namespace cqlopt
