#include "ast/parser.h"

#include <gtest/gtest.h>

#include "ast/printer.h"

namespace cqlopt {
namespace {

TEST(LexerViaParserTest, RejectsUnknownCharacters) {
  auto result = ParseProgram("p(X) :- q(X) & r(X).");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, SimpleRuleAndLabel) {
  auto result = ParseProgram("r1: q(X, Y) :- e(X, Y).");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->program.rules.size(), 1u);
  const Rule& r = result->program.rules[0];
  EXPECT_EQ(r.label, "r1");
  EXPECT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.head.arity(), 2);
  EXPECT_TRUE(r.constraints.IsSatisfiable());
}

TEST(ParserTest, LabelIsOptional) {
  auto result = ParseProgram("q(X) :- e(X).");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->program.rules[0].label.empty());
}

TEST(ParserTest, ConstraintsCollectIntoConjunction) {
  auto result = ParseProgram("q(X, Y) :- e(X, Y), X <= 4, Y > 2 * X + 1.");
  ASSERT_TRUE(result.ok());
  const Rule& r = result->program.rules[0];
  EXPECT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.constraints.linear().size(), 2u);
}

TEST(ParserTest, AllComparisonOperatorsAccepted) {
  auto result = ParseProgram(
      "q(A, B, C, D, E) :- e(A, B, C, D, E), A < 1, B <= 2, C > 3, D >= 4, "
      "E = 5.");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program.rules[0].constraints.linear().size(), 5u);
}

TEST(ParserTest, ConstantArgumentsBecomeConstraints) {
  // fib(0, 1). has numeric constants normalized into equality constraints.
  auto result = ParseProgram("fib(0, 1).");
  ASSERT_TRUE(result.ok());
  const Rule& r = result->program.rules[0];
  EXPECT_TRUE(r.IsConstraintFact());
  EXPECT_EQ(r.head.arity(), 2);
  EXPECT_EQ(r.constraints.GetNumericValue(r.head.args[0]),
            std::optional<Rational>(Rational(0)));
  EXPECT_EQ(r.constraints.GetNumericValue(r.head.args[1]),
            std::optional<Rational>(Rational(1)));
}

TEST(ParserTest, ArithmeticArgumentsFlattened) {
  // fib(N - 1, X1) introduces a fresh variable V with V = N - 1.
  auto result = ParseProgram("p(N) :- fib(N - 1, X1), N > 1.");
  ASSERT_TRUE(result.ok());
  const Rule& r = result->program.rules[0];
  const Literal& fib = r.body[0];
  EXPECT_NE(fib.args[0], r.head.args[0]);  // fresh var, not N
  // The constraint store must tie them: fresh = N - 1.
  bool found = false;
  for (const LinearConstraint& atom : r.constraints.linear()) {
    if (atom.op() == CmpOp::kEq && atom.Vars().size() == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ParserTest, SymbolicConstantsBindFreshVars) {
  auto result = ParseProgram("origin(madison) :- hub(madison).");
  ASSERT_TRUE(result.ok());
  const Rule& r = result->program.rules[0];
  EXPECT_TRUE(r.constraints.GetSymbol(r.head.args[0]).has_value());
}

TEST(ParserTest, SymbolEqualityConstraint) {
  auto result = ParseProgram("q(X) :- e(X), X = madison.");
  ASSERT_TRUE(result.ok());
  const Rule& r = result->program.rules[0];
  EXPECT_TRUE(r.constraints.GetSymbol(r.head.args[0]).has_value());
}

TEST(ParserTest, SymbolInequalityRejected) {
  auto result = ParseProgram("q(X) :- e(X), X <= madison.");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, NonlinearProductRejected) {
  auto result = ParseProgram("q(X, Y) :- e(X, Y), X * Y <= 4.");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, ScalarMultiplicationAllowed) {
  auto result = ParseProgram("q(X) :- e(X), 2 * X <= 4, X * 3 >= 1.");
  EXPECT_TRUE(result.ok());
}

TEST(ParserTest, ArityMismatchRejected) {
  auto result = ParseProgram("q(X) :- e(X, Y).  p(Z) :- e(Z).");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, QueriesParsedSeparately) {
  auto result = ParseProgram(
      "q(X, Y) :- e(X, Y).\n"
      "?- q(madison, Y), Y <= 4.\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queries.size(), 1u);
  const Query& query = result->queries[0];
  EXPECT_TRUE(query.constraints.GetSymbol(query.literal.args[0]).has_value());
}

TEST(ParserTest, QueryMustHaveOneLiteral) {
  EXPECT_FALSE(ParseProgram("?- X <= 4.").ok());
  EXPECT_FALSE(ParseProgram("e(1,2). ?- e(X, Y), e(Y, Z).").ok());
}

TEST(ParserTest, CommentsIgnored) {
  auto result = ParseProgram(
      "% a comment\n"
      "q(X) :- e(X).  // another\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program.rules.size(), 1u);
}

TEST(ParserTest, DecimalNumbers) {
  auto result = ParseProgram("q(X) :- e(X), X <= 2.5.");
  ASSERT_TRUE(result.ok());
}

TEST(ParserTest, PrimedPredicateNamesAllowed) {
  auto result = ParseProgram("flight'(X) :- flight(X).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program.symbols->PredicateName(
                result->program.rules[0].head.pred),
            "flight'");
}

TEST(ParserTest, VariablesScopedPerRule) {
  auto result = ParseProgram("a(X) :- e(X). b(X) :- f(X).");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->program.rules[0].head.args[0],
            result->program.rules[1].head.args[0]);
}

TEST(ParserTest, RuleVariableIdsAboveArgumentPositions) {
  auto result = ParseProgram("q(X, Y) :- e(X, Y).");
  ASSERT_TRUE(result.ok());
  for (VarId v : result->program.rules[0].Vars()) EXPECT_GE(v, 1024);
}

TEST(ParserTest, ParseQueryTextChecksArity) {
  auto parsed = ParseProgram("q(X, Y) :- e(X, Y).");
  ASSERT_TRUE(parsed.ok());
  Program program = parsed->program;
  EXPECT_TRUE(ParseQueryText("?- q(1, Y).", &program).ok());
  EXPECT_FALSE(ParseQueryText("?- q(1).", &program).ok());
}

TEST(ParserTest, RoundTripThroughPrinter) {
  const char* text =
      "r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), "
      "flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.";
  auto first = ParseProgram(text);
  ASSERT_TRUE(first.ok());
  std::string rendered = RenderProgram(first->program);
  auto second = ParseProgram(rendered);
  ASSERT_TRUE(second.ok()) << rendered;
  EXPECT_EQ(RenderProgram(second->program), rendered);
}

}  // namespace
}  // namespace cqlopt
