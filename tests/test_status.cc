#include "util/status.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("unexpected token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "unexpected token");
  EXPECT_EQ(st.ToString(), "PARSE_ERROR: unexpected token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kResourceExhausted,
        StatusCode::kNotFound, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusTest, GovernanceFactories) {
  Status deadline = Status::DeadlineExceeded("past due");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DEADLINE_EXCEEDED: past due");
  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "CANCELLED: caller gave up");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CQLOPT_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto first = Quarter(7);
  EXPECT_FALSE(first.ok());
  auto second = Quarter(6);  // 6/2 = 3, odd at second step
  EXPECT_FALSE(second.ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  CQLOPT_RETURN_IF_ERROR(FailIfNegative(a));
  CQLOPT_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(-1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace cqlopt
