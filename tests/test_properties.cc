#include <gtest/gtest.h>

#include "ast/parser.h"
#include "constraint/disjoint.h"
#include "constraint/implication.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "testing/corpus.h"
#include "testing/generator.h"
#include "testing/properties.h"
#include "testing/shrinker.h"
#include "transform/pipeline.h"

namespace cqlopt {
namespace {

using testing::AllProperties;
using testing::ConstraintGenOptions;
using testing::FindProperty;
using testing::FuzzCase;
using testing::FuzzOptions;
using testing::GenerateCase;
using testing::PropertyInfo;
using testing::PropertyOutcome;
using testing::RandomConjunction;
using testing::RenderCorpusFile;
using testing::Rng;
using testing::ShrinkCase;
using testing::ShrinkStats;

/// The constraint-generator configuration shared by the pure-constraint
/// property suites: six variables, dense multi-variable atoms, strict and
/// equality operators all enabled.
ConstraintGenOptions DenseOptions(int atoms) {
  ConstraintGenOptions cg;
  cg.num_vars = 6;
  cg.atoms = atoms;
  cg.dense = true;
  return cg;
}

/// On failure, shrinks the case and renders a self-contained report: the
/// failure message, the minimized corpus-format repro, and the exact
/// cqlfuzz command line that replays the unshrunk case.
std::string FailureReport(const PropertyInfo& info, const FuzzCase& c,
                          const FuzzOptions& fo, const std::string& message) {
  ShrinkStats stats;
  FuzzCase shrunk = ShrinkCase(c, info, fo, {}, &stats);
  return message + "\n--- shrunk repro (" +
         std::to_string(shrunk.program.rules.size()) + " rules, " +
         std::to_string(shrunk.edb.size()) + " facts, " +
         std::to_string(stats.attempts) + " attempts) ---\n" +
         RenderCorpusFile(shrunk, info.name, fo.bug, message) +
         "--- replay: cqlfuzz --seed " + std::to_string(c.seed) +
         " --iters 1 --property " + info.name + " ---";
}

class ImplicationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationProperty, ReflexiveAndMonotone) {
  Rng rng(Rng::DeriveSeed(0x1A9, static_cast<uint64_t>(GetParam())));
  for (int trial = 0; trial < 30; ++trial) {
    Conjunction a = RandomConjunction(&rng, DenseOptions(3));
    // Reflexivity.
    EXPECT_TRUE(Implies(a, a));
    // Strengthening the LHS preserves implication.
    Conjunction stronger = a;
    (void)stronger.AddConjunction(RandomConjunction(&rng, DenseOptions(1)));
    EXPECT_TRUE(Implies(stronger, a));
    // Anything implies true; false implies anything.
    EXPECT_TRUE(Implies(a, Conjunction::True()));
    EXPECT_TRUE(Implies(Conjunction::False(), a));
  }
}

TEST_P(ImplicationProperty, TransitiveOnChains) {
  Rng rng(Rng::DeriveSeed(0x2B7, static_cast<uint64_t>(GetParam())));
  for (int trial = 0; trial < 20; ++trial) {
    Conjunction a = RandomConjunction(&rng, DenseOptions(2));
    Conjunction b = a;
    (void)b.AddConjunction(RandomConjunction(&rng, DenseOptions(1)));
    Conjunction c = b;
    (void)c.AddConjunction(RandomConjunction(&rng, DenseOptions(1)));
    // c => b => a by construction; check the checker agrees transitively.
    EXPECT_TRUE(Implies(c, b));
    EXPECT_TRUE(Implies(b, a));
    EXPECT_TRUE(Implies(c, a));
  }
}

TEST_P(ImplicationProperty, ProjectionIsSound) {
  // a implies its own projection (projection only loses constraints).
  Rng rng(Rng::DeriveSeed(0x3C5, static_cast<uint64_t>(GetParam())));
  for (int trial = 0; trial < 30; ++trial) {
    Conjunction a = RandomConjunction(&rng, DenseOptions(4));
    auto projected = a.Project({1, 2});
    ASSERT_TRUE(projected.ok());
    EXPECT_TRUE(Implies(a, *projected));
    EXPECT_EQ(a.IsSatisfiable(), projected->IsSatisfiable());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationProperty, ::testing::Range(1, 7));

class DisjointProperty : public ::testing::TestWithParam<int> {};

TEST_P(DisjointProperty, EquivalentAndPairwiseUnsat) {
  Rng rng(Rng::DeriveSeed(0x4D3, static_cast<uint64_t>(GetParam())));
  for (int trial = 0; trial < 10; ++trial) {
    ConstraintSet set;
    for (int d = 0; d < 3; ++d) {
      set.AddDisjunct(RandomConjunction(&rng, DenseOptions(2)));
    }
    if (set.is_false()) continue;
    auto out = MakeDisjoint(set);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->EquivalentTo(set))
        << set.ToString() << " vs " << out->ToString();
    const auto& ds = out->disjuncts();
    for (size_t i = 0; i < ds.size(); ++i) {
      for (size_t j = i + 1; j < ds.size(); ++j) {
        Conjunction both = ds[i];
        if (!both.AddConjunction(ds[j]).ok()) continue;
        EXPECT_FALSE(both.IsSatisfiable());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointProperty, ::testing::Range(1, 5));

/// The full differential suite over generated programs: every registered
/// property (engine vs oracle, strategy confluence, rewrite equivalence,
/// FM projection, resume-vs-scratch, service round-trip) on random
/// programs with disjunctive rules, recursion, constraint facts, and
/// strict/equality selections. Failures shrink themselves and print the
/// cqlfuzz replay command.
class GeneratedCaseProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedCaseProperty, AllPropertiesHold) {
  uint64_t seed = Rng::DeriveSeed(0xC0FFEE, static_cast<uint64_t>(GetParam()));
  FuzzCase c = GenerateCase(seed, {});
  FuzzOptions fo;
  for (const PropertyInfo& info : AllProperties()) {
    PropertyOutcome out = info.fn(c, fo);
    EXPECT_TRUE(out.ok) << info.name << ": "
                        << FailureReport(info, c, fo, out.message);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedCaseProperty,
                         ::testing::Range(0, 10));

/// `--seed N` must be a complete repro token: the same seed generates a
/// byte-identical case (program, query, and EDB) on every run and platform.
TEST(GeneratorDeterminism, SameSeedSameCase) {
  for (uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    FuzzCase a = GenerateCase(seed, {});
    FuzzCase b = GenerateCase(seed, {});
    EXPECT_EQ(RenderCorpusFile(a, "x", testing::PlantedBug::kNone, ""),
              RenderCorpusFile(b, "x", testing::PlantedBug::kNone, ""));
  }
}

/// The planted-bug path: the differential harness must catch a deliberately
/// broken pipeline within a few cases, and the shrinker must cut the repro
/// down to a handful of rules (the cqlfuzz --self-check contract).
TEST(SelfCheck, PlantedBugIsCaughtAndShrunk) {
  const PropertyInfo* rewrite = FindProperty("rewrite_equiv");
  ASSERT_NE(rewrite, nullptr);
  FuzzOptions fo;
  fo.bug = testing::PlantedBug::kDropConstraintAtom;
  bool caught = false;
  for (int i = 0; i < 50 && !caught; ++i) {
    FuzzCase c = GenerateCase(
        Rng::DeriveSeed(42, static_cast<uint64_t>(i)), {});
    PropertyOutcome out = rewrite->fn(c, fo);
    if (out.ok) continue;
    caught = true;
    ShrinkStats stats;
    FuzzCase shrunk = ShrinkCase(c, *rewrite, fo, {}, &stats);
    EXPECT_LE(shrunk.program.rules.size(), 10u);
    EXPECT_GT(stats.attempts, 0);
    // The shrunk case still fails — minimization preserved the bug.
    PropertyOutcome again = rewrite->fn(shrunk, fo);
    EXPECT_FALSE(again.ok);
  }
  EXPECT_TRUE(caught)
      << "planted drop-constraint-atom bug not caught in 50 cases";
}

/// Theorem 4.4 property: rewriting never increases the computed fact count,
/// and ground evaluations stay ground.
class FactCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(FactCountProperty, RewritingNeverComputesMoreFacts) {
  auto parsed = ParseProgram(
      "q(X, Y) :- t(X, Y), X <= 4.\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "?- q(X, Y).\n");
  ASSERT_TRUE(parsed.ok());
  Program& program = parsed->program;
  Query& query = parsed->queries[0];
  Database db;
  ASSERT_TRUE(AddBinaryRelation(program.symbols.get(), "e", 18, 9,
                                static_cast<uint64_t>(GetParam()) * 7, &db)
                  .ok());
  auto baseline = Evaluate(program, db, {});
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->stats.all_ground);
  auto steps = ParseSteps("pred,qrp");
  ASSERT_TRUE(steps.ok());
  auto rewritten = ApplyPipeline(program, query, *steps, {});
  ASSERT_TRUE(rewritten.ok());
  auto run = Evaluate(rewritten->program, db, {});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.all_ground);
  EXPECT_LE(run->db.TotalFacts(), baseline->db.TotalFacts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactCountProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace cqlopt
