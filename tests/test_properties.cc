#include <random>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "constraint/disjoint.h"
#include "constraint/implication.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "transform/pipeline.h"

namespace cqlopt {
namespace {

/// Random conjunction over variables 1..3 with small integer coefficients.
Conjunction RandomConjunction(std::mt19937_64* rng, int atoms) {
  std::uniform_int_distribution<int> coeff(-2, 2);
  std::uniform_int_distribution<int> constant(-8, 8);
  std::uniform_int_distribution<int> op_pick(0, 5);
  Conjunction c;
  for (int i = 0; i < atoms; ++i) {
    LinearExpr e;
    for (VarId v = 1; v <= 3; ++v) e.Add(v, Rational(coeff(*rng)));
    e.AddConstant(Rational(constant(*rng)));
    CmpOp op = op_pick(*rng) == 0 ? CmpOp::kEq
               : op_pick(*rng) < 3 ? CmpOp::kLt
                                   : CmpOp::kLe;
    (void)c.AddLinear(LinearConstraint(std::move(e), op));
  }
  return c;
}

class ImplicationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationProperty, ReflexiveAndMonotone) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    Conjunction a = RandomConjunction(&rng, 3);
    // Reflexivity.
    EXPECT_TRUE(Implies(a, a));
    // Strengthening the LHS preserves implication.
    Conjunction stronger = a;
    (void)stronger.AddConjunction(RandomConjunction(&rng, 1));
    EXPECT_TRUE(Implies(stronger, a));
    // Anything implies true; false implies anything.
    EXPECT_TRUE(Implies(a, Conjunction::True()));
    EXPECT_TRUE(Implies(Conjunction::False(), a));
  }
}

TEST_P(ImplicationProperty, TransitiveOnChains) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int trial = 0; trial < 20; ++trial) {
    Conjunction a = RandomConjunction(&rng, 2);
    Conjunction b = a;
    (void)b.AddConjunction(RandomConjunction(&rng, 1));
    Conjunction c = b;
    (void)c.AddConjunction(RandomConjunction(&rng, 1));
    // c => b => a by construction; check the checker agrees transitively.
    EXPECT_TRUE(Implies(c, b));
    EXPECT_TRUE(Implies(b, a));
    EXPECT_TRUE(Implies(c, a));
  }
}

TEST_P(ImplicationProperty, ProjectionIsSound) {
  // a implies its own projection (projection only loses constraints).
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) + 200);
  for (int trial = 0; trial < 30; ++trial) {
    Conjunction a = RandomConjunction(&rng, 4);
    auto projected = a.Project({1, 2});
    ASSERT_TRUE(projected.ok());
    EXPECT_TRUE(Implies(a, *projected));
    EXPECT_EQ(a.IsSatisfiable(), projected->IsSatisfiable());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationProperty,
                         ::testing::Range(1, 7));

class DisjointProperty : public ::testing::TestWithParam<int> {};

TEST_P(DisjointProperty, EquivalentAndPairwiseUnsat) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) + 300);
  for (int trial = 0; trial < 10; ++trial) {
    ConstraintSet set;
    for (int d = 0; d < 3; ++d) set.AddDisjunct(RandomConjunction(&rng, 2));
    if (set.is_false()) continue;
    auto out = MakeDisjoint(set);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->EquivalentTo(set)) << set.ToString() << " vs "
                                        << out->ToString();
    const auto& ds = out->disjuncts();
    for (size_t i = 0; i < ds.size(); ++i) {
      for (size_t j = i + 1; j < ds.size(); ++j) {
        Conjunction both = ds[i];
        if (!both.AddConjunction(ds[j]).ok()) continue;
        EXPECT_FALSE(both.IsSatisfiable());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointProperty, ::testing::Range(1, 5));

/// End-to-end rewriting property: on random EDBs, every pipeline preserves
/// the query answers of the transitive-closure-with-selections program.
class RewriteEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(RewriteEquivalenceProperty, PipelinesPreserveAnswers) {
  auto parsed = ParseProgram(
      "q(X, Y) :- t(X, Y), X + Y <= 14, X >= 1.\n"
      "t(X, Y) :- e(X, Y), Y >= 0.\n"
      "t(X, Y) :- e(X, Z), t(Z, Y), Z <= 9.\n"
      "?- q(2, Y).\n");
  ASSERT_TRUE(parsed.ok());
  Program& program = parsed->program;
  Query& query = parsed->queries[0];
  Database db;
  ASSERT_TRUE(AddBinaryRelation(program.symbols.get(), "e", 20, 10,
                                static_cast<uint64_t>(GetParam()), &db)
                  .ok());
  auto baseline_run = Evaluate(program, db, {});
  ASSERT_TRUE(baseline_run.ok());
  auto baseline = QueryAnswers(*baseline_run, query);
  ASSERT_TRUE(baseline.ok());
  for (const char* spec : {"pred,qrp", "pred,qrp,mg", "mg,qrp", "balbin"}) {
    auto steps = ParseSteps(spec);
    ASSERT_TRUE(steps.ok());
    auto rewritten = ApplyPipeline(program, query, *steps, {});
    ASSERT_TRUE(rewritten.ok()) << spec << ": "
                                << rewritten.status().ToString();
    auto run = Evaluate(rewritten->program, db, {});
    ASSERT_TRUE(run.ok()) << spec;
    auto answers = QueryAnswers(*run, rewritten->query);
    ASSERT_TRUE(answers.ok()) << spec;
    EXPECT_TRUE(SameAnswers(*baseline, *answers))
        << spec << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalenceProperty,
                         ::testing::Range(1, 9));

/// Theorem 4.4 property: rewriting never increases the computed fact count,
/// and ground evaluations stay ground.
class FactCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(FactCountProperty, RewritingNeverComputesMoreFacts) {
  auto parsed = ParseProgram(
      "q(X, Y) :- t(X, Y), X <= 4.\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "?- q(X, Y).\n");
  ASSERT_TRUE(parsed.ok());
  Program& program = parsed->program;
  Query& query = parsed->queries[0];
  Database db;
  ASSERT_TRUE(AddBinaryRelation(program.symbols.get(), "e", 18, 9,
                                static_cast<uint64_t>(GetParam()) * 7, &db)
                  .ok());
  auto baseline = Evaluate(program, db, {});
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->stats.all_ground);
  auto steps = ParseSteps("pred,qrp");
  ASSERT_TRUE(steps.ok());
  auto rewritten = ApplyPipeline(program, query, *steps, {});
  ASSERT_TRUE(rewritten.ok());
  auto run = Evaluate(rewritten->program, db, {});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.all_ground);
  EXPECT_LE(run->db.TotalFacts(), baseline->db.TotalFacts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactCountProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace cqlopt
