#include "core/equivalence.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace cqlopt {
namespace {

struct Parsed {
  Program program;
  Query query;
};

Parsed ParseWithQuery(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queries.size(), 1u);
  return Parsed{parsed->program, parsed->queries[0]};
}

TEST(EquivalenceTest, QueryAnswersFiltersByConstants) {
  Parsed in = ParseWithQuery(
      "t(X, Y) :- e(X, Y).\n"
      "?- t(1, Y).\n");
  Database db;
  auto add = [&](int a, int b) {
    ASSERT_TRUE(db.AddGroundFact(in.program.symbols.get(), "e",
                                 {Database::Value::Number(Rational(a)),
                                  Database::Value::Number(Rational(b))})
                    .ok());
  };
  add(1, 2);
  add(1, 3);
  add(9, 9);
  auto run = Evaluate(in.program, db, {});
  ASSERT_TRUE(run.ok());
  auto answers = QueryAnswers(*run, in.query);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
  for (const Fact& f : *answers) {
    EXPECT_EQ(f.constraint.GetNumericValue(1),
              std::optional<Rational>(Rational(1)));
  }
}

TEST(EquivalenceTest, QueryAnswersFiltersByInequalities) {
  Parsed in = ParseWithQuery(
      "t(X) :- e(X, Y).\n"
      "?- t(X), X <= 2.\n");
  Database db;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(db.AddGroundFact(in.program.symbols.get(), "e",
                                 {Database::Value::Number(Rational(i)),
                                  Database::Value::Number(Rational(0))})
                    .ok());
  }
  auto run = Evaluate(in.program, db, {});
  ASSERT_TRUE(run.ok());
  auto answers = QueryAnswers(*run, in.query);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST(EquivalenceTest, MissingRelationGivesNoAnswers) {
  Parsed in = ParseWithQuery("t(X) :- e(X). ?- t(1).");
  EvalResult empty;
  auto answers = QueryAnswers(empty, in.query);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

Fact NumericFact(int value) {
  Conjunction c;
  LinearExpr e = LinearExpr::Var(1) - LinearExpr::Constant(Rational(value));
  EXPECT_TRUE(c.AddLinear(LinearConstraint(e, CmpOp::kEq)).ok());
  return Fact(0, 1, c);
}

Fact RangeFact(int lo, int hi) {
  Conjunction c;
  LinearExpr upper = LinearExpr::Var(1) - LinearExpr::Constant(Rational(hi));
  LinearExpr lower = LinearExpr::Constant(Rational(lo)) - LinearExpr::Var(1);
  EXPECT_TRUE(c.AddLinear(LinearConstraint(upper, CmpOp::kLe)).ok());
  EXPECT_TRUE(c.AddLinear(LinearConstraint(lower, CmpOp::kLe)).ok());
  return Fact(0, 1, c);
}

TEST(EquivalenceTest, SameAnswersGroundSets) {
  std::vector<Fact> a = {NumericFact(1), NumericFact(2)};
  std::vector<Fact> b = {NumericFact(2), NumericFact(1)};
  EXPECT_TRUE(SameAnswers(a, b));
  b.push_back(NumericFact(3));
  EXPECT_FALSE(SameAnswers(a, b));
}

TEST(EquivalenceTest, SameAnswersConstraintFactsCoverage) {
  // {[0,10]} == {[0,5], [5,10]} as ground sets.
  std::vector<Fact> whole = {RangeFact(0, 10)};
  std::vector<Fact> split = {RangeFact(0, 5), RangeFact(5, 10)};
  EXPECT_TRUE(SameAnswers(whole, split));
  // {[0,10]} != {[0,4], [5,10]} (gap at (4,5)).
  std::vector<Fact> gap = {RangeFact(0, 4), RangeFact(5, 10)};
  EXPECT_FALSE(SameAnswers(whole, gap));
}

TEST(EquivalenceTest, EmptySetsAreEqual) {
  EXPECT_TRUE(SameAnswers({}, {}));
  EXPECT_FALSE(SameAnswers({NumericFact(1)}, {}));
}

}  // namespace
}  // namespace cqlopt
