#include "constraint/implication.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

TEST(ImplicationTest, PaperExampleFromDefinition23) {
  // (X + Y <= 4) & (X >= 2) implies Y <= 2 (the paper's Section 2 example).
  Conjunction a = Conj({Atom({{1, 1}, {2, 1}}, -4, CmpOp::kLe),
                        Atom({{1, -1}}, 2, CmpOp::kLe)});
  Conjunction b = Conj({Atom({{2, 1}}, -2, CmpOp::kLe)});
  EXPECT_TRUE(Implies(a, b));
  EXPECT_FALSE(Implies(b, a));
}

TEST(ImplicationTest, UnsatisfiableImpliesEverything) {
  Conjunction f = Conjunction::False();
  Conjunction b = Conj({Atom({{1, 1}}, -1, CmpOp::kLe)});
  EXPECT_TRUE(Implies(f, b));
  EXPECT_FALSE(Implies(b, f));
}

TEST(ImplicationTest, EverythingImpliesTrue) {
  Conjunction a = Conj({Atom({{1, 1}}, -1, CmpOp::kLe)});
  EXPECT_TRUE(Implies(a, Conjunction::True()));
}

TEST(ImplicationTest, StrictVsNonStrict) {
  Conjunction lt = Conj({Atom({{1, 1}}, -3, CmpOp::kLt)});   // x < 3
  Conjunction le = Conj({Atom({{1, 1}}, -3, CmpOp::kLe)});   // x <= 3
  EXPECT_TRUE(Implies(lt, le));
  EXPECT_FALSE(Implies(le, lt));
}

TEST(ImplicationTest, SymbolBindingsEntailSyntactically) {
  Conjunction a;
  ASSERT_TRUE(a.BindSymbol(1, 7).ok());
  ASSERT_TRUE(a.BindSymbol(2, 7).ok());
  Conjunction b;
  ASSERT_TRUE(b.BindSymbol(1, 7).ok());
  EXPECT_TRUE(Implies(a, b));
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(1, 8).ok());
  EXPECT_FALSE(Implies(a, c));
}

TEST(ImplicationTest, EqualityEntailedByUnionFind) {
  Conjunction a;
  ASSERT_TRUE(a.AddEquality(1, 2).ok());
  ASSERT_TRUE(a.AddEquality(2, 3).ok());
  Conjunction b;
  ASSERT_TRUE(b.AddEquality(1, 3).ok());
  EXPECT_TRUE(Implies(a, b));
}

TEST(ImplicationTest, EqualityEntailedByLinearAtoms) {
  // x <= y and y <= x entail x = y.
  Conjunction a = Conj({Atom({{1, 1}, {2, -1}}, 0, CmpOp::kLe),
                        Atom({{2, 1}, {1, -1}}, 0, CmpOp::kLe)});
  Conjunction b;
  ASSERT_TRUE(b.AddEquality(1, 2).ok());
  EXPECT_TRUE(Implies(a, b));
}

TEST(ImplicationTest, SymbolEqualityEntailedBySharedBinding) {
  Conjunction a;
  ASSERT_TRUE(a.BindSymbol(1, 7).ok());
  ASSERT_TRUE(a.BindSymbol(2, 7).ok());
  Conjunction b;
  ASSERT_TRUE(b.AddEquality(1, 2).ok());
  ASSERT_TRUE(b.BindSymbol(1, 7).ok());
  EXPECT_TRUE(Implies(a, b));
}

TEST(ImplicationTest, DisjunctionNeedsCaseSplit) {
  // 0 <= x <= 10 implies (x <= 5) v (x >= 5): no single disjunct covers it.
  Conjunction a = Conj({Atom({{1, -1}}, 0, CmpOp::kLe),
                        Atom({{1, 1}}, -10, CmpOp::kLe)});
  Conjunction d1 = Conj({Atom({{1, 1}}, -5, CmpOp::kLe)});
  Conjunction d2 = Conj({Atom({{1, -1}}, 5, CmpOp::kLe)});
  EXPECT_FALSE(Implies(a, d1));
  EXPECT_FALSE(Implies(a, d2));
  EXPECT_TRUE(ImpliesDisjunction(a, {d1, d2}));
}

TEST(ImplicationTest, DisjunctionWithGapNotImplied) {
  // 0 <= x <= 10 does NOT imply (x < 5) v (x > 5): x = 5 escapes.
  Conjunction a = Conj({Atom({{1, -1}}, 0, CmpOp::kLe),
                        Atom({{1, 1}}, -10, CmpOp::kLe)});
  Conjunction d1 = Conj({Atom({{1, 1}}, -5, CmpOp::kLt)});
  Conjunction d2 = Conj({Atom({{1, -1}}, 5, CmpOp::kLt)});
  EXPECT_FALSE(ImpliesDisjunction(a, {d1, d2}));
}

TEST(ImplicationTest, DisjunctionEmptyIsFalse) {
  Conjunction a = Conj({Atom({{1, 1}}, -1, CmpOp::kLe)});
  EXPECT_FALSE(ImpliesDisjunction(a, {}));
  EXPECT_TRUE(ImpliesDisjunction(Conjunction::False(), {}));
}

TEST(ImplicationTest, EmptyDisjunctCoversEverything) {
  // A disjunct with no atoms is `true`, so the disjunction is implied by
  // anything — including conjunctions that imply no other disjunct. Pins
  // the contract the RefuteAll tail (constraint/implication.cc) documents:
  // ¬true contributes no case-split branches, so an empty disjunct covers
  // all of `a` (in practice the per-disjunct fast path already accepts it).
  Conjunction a = Conj({Atom({{1, 1}}, -1, CmpOp::kLe)});
  Conjunction empty;  // no atoms: true
  EXPECT_TRUE(ImpliesDisjunction(a, {empty}));
  Conjunction unrelated = Conj({Atom({{2, 1}}, -9, CmpOp::kLe)});
  EXPECT_TRUE(ImpliesDisjunction(a, {unrelated, empty}));
  EXPECT_TRUE(ImpliesDisjunction(Conjunction::True(), {empty}));
}

TEST(ImplicationTest, UnsatisfiableDisjunctsIgnored) {
  Conjunction a = Conj({Atom({{1, 1}}, -1, CmpOp::kLe)});
  Conjunction dead = Conjunction::False();
  Conjunction live = Conj({Atom({{1, 1}}, -2, CmpOp::kLe)});
  EXPECT_TRUE(ImpliesDisjunction(a, {dead, live}));
}

TEST(ImplicationTest, FlightDisjunctionFromExample43) {
  // (T > 0 & T <= 240 & C > 0 & C <= 150) implies the QRP constraint of
  // flight: (T>0 & T<=240 & C>0) | (T>0 & C>0 & C<=150) — via either arm.
  Conjunction a = Conj({Atom({{1, -1}}, 0, CmpOp::kLt),
                        Atom({{1, 1}}, -240, CmpOp::kLe),
                        Atom({{2, -1}}, 0, CmpOp::kLt),
                        Atom({{2, 1}}, -150, CmpOp::kLe)});
  Conjunction arm1 = Conj({Atom({{1, -1}}, 0, CmpOp::kLt),
                           Atom({{1, 1}}, -240, CmpOp::kLe),
                           Atom({{2, -1}}, 0, CmpOp::kLt)});
  Conjunction arm2 = Conj({Atom({{1, -1}}, 0, CmpOp::kLt),
                           Atom({{2, -1}}, 0, CmpOp::kLt),
                           Atom({{2, 1}}, -150, CmpOp::kLe)});
  EXPECT_TRUE(ImpliesDisjunction(a, {arm1, arm2}));
  // But (T>0 & C>0) alone does not imply the disjunction.
  Conjunction weak = Conj({Atom({{1, -1}}, 0, CmpOp::kLt),
                           Atom({{2, -1}}, 0, CmpOp::kLt)});
  EXPECT_FALSE(ImpliesDisjunction(weak, {arm1, arm2}));
}

TEST(ImplicationTest, EquivalentDetectsSyntacticVariants) {
  // 2x <= 4 is equivalent to x <= 2.
  Conjunction a = Conj({Atom({{1, 2}}, -4, CmpOp::kLe)});
  Conjunction b = Conj({Atom({{1, 1}}, -2, CmpOp::kLe)});
  EXPECT_TRUE(Equivalent(a, b));
  Conjunction c = Conj({Atom({{1, 1}}, -3, CmpOp::kLe)});
  EXPECT_FALSE(Equivalent(a, c));
}

}  // namespace
}  // namespace cqlopt
