// Columnar-storage and interval-index coverage (DESIGN.md §12): the edge
// cases of the per-position interval index — open/closed/infinite query
// bounds, unconstrained and symbol-bound positions, fully point-valued
// columns with sealed runs, empty relations — plus the copy-on-write chunk
// sharing contract and the corpus-replay differential pinning byte-identity
// of evaluation with interval pruning on vs off across every subsumption
// mode and thread count.

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/relation.h"
#include "eval/seminaive.h"
#include "testing/corpus.h"
#include "testing/properties.h"

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

/// $1 = n: a point-valued position (ColTag::kNumber).
Fact NumberFact(int n) {
  Conjunction c;
  EXPECT_TRUE(c.AddLinear(Atom({{1, 1}}, -n, CmpOp::kEq)).ok());
  return Fact(0, 1, c);
}

/// $1 bound to a symbol (ColTag::kSymbol).
Fact SymbolFact(SymbolId s) {
  Conjunction c;
  EXPECT_TRUE(c.BindSymbol(1, s).ok());
  return Fact(0, 1, c);
}

/// lo <= $1 <= hi: finite bounds but no point (ColTag::kInterval).
Fact RangeFact(int lo, int hi) {
  Conjunction c;
  EXPECT_TRUE(c.AddLinear(Atom({{1, -1}}, lo, CmpOp::kLe)).ok());
  EXPECT_TRUE(c.AddLinear(Atom({{1, 1}}, -hi, CmpOp::kLe)).ok());
  return Fact(0, 1, c);
}

/// $1 >= lo only: a half-line bound summary.
Fact LowerBoundFact(int lo) {
  Conjunction c;
  EXPECT_TRUE(c.AddLinear(Atom({{1, -1}}, lo, CmpOp::kLe)).ok());
  return Fact(0, 1, c);
}

/// No constraint at all on $1 (ColTag::kUnbound).
Fact UnboundFact() { return Fact(0, 1, Conjunction()); }

Interval Between(int lo, bool lo_strict, int hi, bool hi_strict) {
  Interval q;
  q.TightenLower(Rational(lo), lo_strict);
  q.TightenUpper(Rational(hi), hi_strict);
  return q;
}

Interval AtMost(int hi) {
  Interval q;
  q.TightenUpper(Rational(hi), /*strict=*/false);
  return q;
}

Interval AtLeast(int lo) {
  Interval q;
  q.TightenLower(Rational(lo), /*strict=*/false);
  return q;
}

std::vector<size_t> IntervalProbeVec(const Relation& rel, int position,
                                     const Interval& query, size_t limit,
                                     long* runs_pruned = nullptr) {
  std::vector<size_t> scratch;
  return rel.IntervalProbe(position, query, limit, &scratch, runs_pruned);
}

TEST(IntervalIndexTest, EmptyRelation) {
  Relation rel;
  EXPECT_FALSE(rel.HasIntervalIndex(1));
  EXPECT_EQ(rel.IntervalProbeCost(1, AtMost(10)), 0u);
  EXPECT_EQ(IntervalProbeVec(rel, 1, AtMost(10), 0), std::vector<size_t>{});
}

TEST(IntervalIndexTest, ClosedAndOpenQueryBounds) {
  Relation rel;
  (void)rel.Insert(NumberFact(40), 0, SubsumptionMode::kNone);  // 0
  (void)rel.Insert(NumberFact(50), 0, SubsumptionMode::kNone);  // 1
  (void)rel.Insert(NumberFact(60), 0, SubsumptionMode::kNone);  // 2
  EXPECT_TRUE(rel.HasIntervalIndex(1));
  // Closed ends include the boundary values; open ends exclude them.
  EXPECT_EQ(IntervalProbeVec(rel, 1, Between(40, false, 60, false), 3),
            std::vector<size_t>({0, 1, 2}));
  EXPECT_EQ(IntervalProbeVec(rel, 1, Between(40, true, 60, true), 3),
            std::vector<size_t>({1}));
  EXPECT_EQ(IntervalProbeVec(rel, 1, Between(40, true, 60, false), 3),
            std::vector<size_t>({1, 2}));
  // A closed point query keeps exactly the matching row.
  EXPECT_EQ(IntervalProbeVec(rel, 1, Between(50, false, 50, false), 3),
            std::vector<size_t>({1}));
}

TEST(IntervalIndexTest, InfiniteQueryEnds) {
  Relation rel;
  (void)rel.Insert(NumberFact(10), 0, SubsumptionMode::kNone);  // 0
  (void)rel.Insert(NumberFact(50), 0, SubsumptionMode::kNone);  // 1
  (void)rel.Insert(NumberFact(90), 0, SubsumptionMode::kNone);  // 2
  EXPECT_EQ(IntervalProbeVec(rel, 1, AtMost(50), 3),
            std::vector<size_t>({0, 1}));
  EXPECT_EQ(IntervalProbeVec(rel, 1, AtLeast(50), 3),
            std::vector<size_t>({1, 2}));
  // The full line excludes nothing.
  EXPECT_EQ(IntervalProbeVec(rel, 1, Interval(), 3),
            std::vector<size_t>({0, 1, 2}));
}

TEST(IntervalIndexTest, UnprunablePositionsAlwaysEnumerated) {
  Relation rel;
  (void)rel.Insert(SymbolFact(7), 0, SubsumptionMode::kNone);    // 0
  (void)rel.Insert(UnboundFact(), 0, SubsumptionMode::kNone);    // 1
  (void)rel.Insert(NumberFact(1000), 0, SubsumptionMode::kNone);  // 2
  // The query excludes every numeric value stored, but symbol-bound and
  // unconstrained rows can never be numerically excluded.
  EXPECT_EQ(IntervalProbeVec(rel, 1, Between(1, false, 2, false), 3),
            std::vector<size_t>({0, 1}));
  // A position no fact constrains has no interval index at all.
  EXPECT_FALSE(rel.HasIntervalIndex(2));
}

TEST(IntervalIndexTest, RangedRowsPrunedOnDisjointSummary) {
  Relation rel;
  (void)rel.Insert(RangeFact(10, 20), 0, SubsumptionMode::kNone);   // 0
  (void)rel.Insert(RangeFact(35, 50), 0, SubsumptionMode::kNone);   // 1
  (void)rel.Insert(LowerBoundFact(100), 0, SubsumptionMode::kNone);  // 2
  // [30, 40] intersects [35, 50] only.
  EXPECT_EQ(IntervalProbeVec(rel, 1, Between(30, false, 40, false), 3),
            std::vector<size_t>({1}));
  // (-inf, 50] misses [100, +inf) but keeps both finite ranges.
  EXPECT_EQ(IntervalProbeVec(rel, 1, AtMost(50), 3),
            std::vector<size_t>({0, 1}));
  // Touching endpoints intersect (both closed).
  EXPECT_EQ(IntervalProbeVec(rel, 1, Between(20, false, 35, false), 3),
            std::vector<size_t>({0, 1}));
}

TEST(IntervalIndexTest, AllConstrainedColumnWithSealedRuns) {
  // Enough point rows to seal several sorted runs (kRunSeal = 128) and
  // trigger at least one run merge, with values deliberately inserted out
  // of order so run sorting does real work.
  Relation rel;
  constexpr int kRows = 300;
  std::vector<int> values(kRows);
  for (int i = 0; i < kRows; ++i) values[i] = (i * 7919) % 601;
  for (int v : values) {
    (void)rel.Insert(NumberFact(v), 0, SubsumptionMode::kNone);
  }
  ASSERT_EQ(rel.size(), static_cast<size_t>(kRows));
  Interval mid = Between(100, false, 200, false);
  std::vector<size_t> expected;
  for (int i = 0; i < kRows; ++i) {
    if (values[i] >= 100 && values[i] <= 200) expected.push_back(i);
  }
  EXPECT_EQ(IntervalProbeVec(rel, 1, mid, kRows), expected);
  // The limit cuts by row index, exactly like the scan's size snapshot.
  std::vector<size_t> head;
  for (size_t r : expected) {
    if (r < 150) head.push_back(r);
  }
  EXPECT_EQ(IntervalProbeVec(rel, 1, mid, 150), head);
  // The cost bound never under-reports the enumerated rows.
  EXPECT_GE(rel.IntervalProbeCost(1, mid), expected.size());
  // A query beyond every stored value rejects whole sealed runs.
  long runs_pruned = 0;
  EXPECT_EQ(IntervalProbeVec(rel, 1, AtLeast(10000), kRows, &runs_pruned),
            std::vector<size_t>{});
  EXPECT_GE(runs_pruned, 1);
}

TEST(IntervalIndexTest, ResultsAscendingAcrossRowKinds) {
  Relation rel;
  (void)rel.Insert(SymbolFact(3), 0, SubsumptionMode::kNone);     // 0 loose
  (void)rel.Insert(NumberFact(45), 0, SubsumptionMode::kNone);    // 1 point
  (void)rel.Insert(RangeFact(40, 70), 0, SubsumptionMode::kNone);  // 2 ranged
  (void)rel.Insert(NumberFact(10), 0, SubsumptionMode::kNone);    // 3 point
  (void)rel.Insert(UnboundFact(), 0, SubsumptionMode::kNone);     // 4 loose
  std::vector<size_t> got =
      IntervalProbeVec(rel, 1, Between(40, false, 60, false), rel.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got, std::vector<size_t>({0, 1, 2, 4}));
}

TEST(ColumnarStorageTest, CopyOnWriteSharesSealedChunks) {
  Relation rel;
  for (int i = 0; i < 600; ++i) {  // several full 256-row chunks
    (void)rel.Insert(NumberFact(i), 0, SubsumptionMode::kNone);
  }
  ASSERT_EQ(rel.size(), 600u);
  EXPECT_EQ(rel.SharedBytes(), 0u);  // sole owner: nothing shared

  Relation copy = rel;
  // Every chunk is now shared between the two relations.
  EXPECT_GT(copy.SharedBytes(), 0u);
  EXPECT_LE(copy.SharedBytes(), copy.ApproxBytes());

  // Appending into the copy clones only its tail chunk; the original's
  // rows are untouched.
  (void)copy.Insert(NumberFact(9999), 1, SubsumptionMode::kNone);
  ASSERT_EQ(copy.size(), 601u);
  ASSERT_EQ(rel.size(), 600u);
  for (size_t i = 0; i < rel.size(); ++i) {
    EXPECT_EQ(rel.fact(i).Key(), copy.fact(i).Key());
    EXPECT_EQ(rel.birth(i), copy.birth(i));
  }
  EXPECT_EQ(copy.fact(600).Key(), NumberFact(9999).Key());
  // Sealed chunks stay shared after the append (only the tail was cloned).
  EXPECT_GT(copy.SharedBytes(), 0u);
}

/// Storage fingerprint of an evaluation: per-predicate fact keys, row
/// order, and birth stamps — the byte-identity bar every index access path
/// must clear.
std::string Fingerprint(const EvalResult& r) {
  std::string out;
  for (const auto& [pred, rel] : r.db.relations()) {
    out += std::to_string(pred) + "{";
    for (size_t i = 0; i < rel.size(); ++i) {
      out += rel.fact(i).Key() + "@" + std::to_string(rel.birth(i)) + ";";
    }
    out += "}";
  }
  return out;
}

TEST(IntervalIndexTest, EvaluationPrunesAndStaysByteIdentical) {
  auto parsed = ParseProgram(
      "s1: withinbudget(S, T) :- budget(B), leg(S, T), T <= B.\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& p = parsed->program;
  Database db;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db.AddGroundFact(
                      p.symbols.get(), "leg",
                      {Database::Value::Symbol("s" + std::to_string(i % 40)),
                       Database::Value::Number(Rational((i * 7919) % 601))})
                    .ok());
  }
  ASSERT_TRUE(
      db.AddGroundFact(p.symbols.get(), "budget",
                       {Database::Value::Number(Rational(60))})
          .ok());
  EvalOptions opts;
  opts.max_iterations = 16;
  opts.strategy = EvalStrategy::kStratified;
  opts.interval_index = true;
  auto on = Evaluate(p, db, opts);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  opts.interval_index = false;
  auto off = Evaluate(p, db, opts);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // The interval path actually fired and cut candidates vs the scan it
  // replaced; the off arm recorded none.
  EXPECT_GT(on->stats.interval_probes, 0);
  EXPECT_LT(on->stats.interval_candidates, on->stats.interval_scan_equivalent);
  EXPECT_GE(on->stats.interval_index_build_ns, 0);
  EXPECT_EQ(off->stats.interval_probes, 0);
  EXPECT_EQ(off->stats.interval_candidates, 0);

  // Same facts, same order, same births, same derivation counters.
  EXPECT_EQ(Fingerprint(*on), Fingerprint(*off));
  EXPECT_EQ(on->stats.derivations, off->stats.derivations);
  EXPECT_EQ(on->stats.inserted, off->stats.inserted);
  EXPECT_EQ(on->stats.iterations, off->stats.iterations);
}

/// Corpus-replay differential: every minimized repro in tests/fuzz_corpus/
/// (planted-bug self-checks excluded) is evaluated under all three
/// subsumption modes × 1/2/8 worker threads, with interval pruning on vs
/// off, and the columnar storage must be byte-identical between the two
/// arms in every combination.
TEST(ColumnarDifferentialTest, CorpusByteIdenticalAcrossModesAndThreads) {
  auto files = testing::ListCorpusFiles(CQLOPT_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  ASSERT_FALSE(files->empty());
  for (const std::string& path : *files) {
    SCOPED_TRACE(path);
    auto loaded = testing::LoadCorpusFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    if (loaded->bug != testing::PlantedBug::kNone) continue;
    Database db = testing::BuildDatabase(loaded->c);
    for (SubsumptionMode mode :
         {SubsumptionMode::kNone, SubsumptionMode::kSingleFact,
          SubsumptionMode::kSetImplication}) {
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                     " threads=" + std::to_string(threads));
        EvalOptions opts;
        opts.max_iterations = 48;
        opts.strategy = EvalStrategy::kStratified;
        opts.subsumption = mode;
        opts.threads = threads;
        opts.interval_index = true;
        auto on = Evaluate(loaded->c.program, db, opts);
        ASSERT_TRUE(on.ok()) << on.status().ToString();
        opts.interval_index = false;
        auto off = Evaluate(loaded->c.program, db, opts);
        ASSERT_TRUE(off.ok()) << off.status().ToString();
        EXPECT_EQ(Fingerprint(*on), Fingerprint(*off));
        EXPECT_EQ(on->stats.derivations, off->stats.derivations);
        EXPECT_EQ(on->stats.inserted, off->stats.inserted);
      }
    }
  }
}

}  // namespace
}  // namespace cqlopt
