// Tests for the deterministic fail-point registry (src/util/failpoint.h):
// arm/skip/times semantics, auto-disarm, hit counting, and the disarmed
// fast path. Each test leaves the registry fully disarmed so ordering
// between tests (and with the fault-injection suites) never matters.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace cqlopt {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    failpoint::ResetCounters();
  }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  for (const std::string& site : failpoint::AllSites()) {
    EXPECT_FALSE(failpoint::ShouldFail(site)) << site;
  }
}

TEST_F(FailpointTest, CatalogueMatchesTheNamedConstants) {
  const std::vector<std::string>& sites = failpoint::AllSites();
  ASSERT_EQ(sites.size(), 12u);
  EXPECT_EQ(sites[0], failpoint::kWalShortWrite);
  EXPECT_EQ(sites[1], failpoint::kWalFsync);
  EXPECT_EQ(sites[2], failpoint::kWalCrashBeforeCommit);
  EXPECT_EQ(sites[3], failpoint::kWalCrashAfterCommit);
  EXPECT_EQ(sites[4], failpoint::kServerShortWrite);
  EXPECT_EQ(sites[5], failpoint::kEvalRuleAlloc);
  EXPECT_EQ(sites[6], failpoint::kSchedulerWorkerHold);
  EXPECT_EQ(sites[7], failpoint::kReplicaFetch);
  EXPECT_EQ(sites[8], failpoint::kReplicaTornRecord);
  EXPECT_EQ(sites[9], failpoint::kReplicaCrashBeforeApply);
  EXPECT_EQ(sites[10], failpoint::kReplicaCrashMidApply);
  EXPECT_EQ(sites[11], failpoint::kReplicaCrashAfterApply);
}

TEST_F(FailpointTest, ArmFiresOnceThenAutoDisarms) {
  failpoint::Arm(failpoint::kWalFsync);
  EXPECT_TRUE(failpoint::ShouldFail(failpoint::kWalFsync));
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalFsync));
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalFsync));
}

TEST_F(FailpointTest, SkipPassesThroughBeforeFiring) {
  failpoint::Arm(failpoint::kWalShortWrite, /*skip=*/2, /*times=*/1);
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalShortWrite));
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalShortWrite));
  EXPECT_TRUE(failpoint::ShouldFail(failpoint::kWalShortWrite));
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalShortWrite));
}

TEST_F(FailpointTest, TimesFiresExactlyThatMany) {
  failpoint::Arm(failpoint::kEvalRuleAlloc, /*skip=*/1, /*times=*/3);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (failpoint::ShouldFail(failpoint::kEvalRuleAlloc)) ++fired;
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FailpointTest, UnlimitedFiresUntilDisarm) {
  failpoint::Arm(failpoint::kServerShortWrite, /*skip=*/0, /*times=*/0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(failpoint::ShouldFail(failpoint::kServerShortWrite));
  }
  failpoint::Disarm(failpoint::kServerShortWrite);
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kServerShortWrite));
}

TEST_F(FailpointTest, HitsCountWhileAnySiteIsArmed) {
  // Arm an unrelated site with a huge skip: nothing fires, but the
  // registry leaves its fast path, so every probe is counted — the idiom a
  // harness uses to enumerate the injection points a scenario crosses.
  failpoint::Arm(failpoint::kWalFsync, /*skip=*/1000000, /*times=*/1);
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalShortWrite));
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalShortWrite));
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalFsync));
  EXPECT_EQ(failpoint::Hits(failpoint::kWalShortWrite), 2);
  EXPECT_EQ(failpoint::Hits(failpoint::kWalFsync), 1);
  failpoint::ResetCounters();
  EXPECT_EQ(failpoint::Hits(failpoint::kWalShortWrite), 0);
}

TEST_F(FailpointTest, FullyDisarmedRegistrySkipsCounting) {
  // The disarmed fast path is one relaxed load: probes are NOT counted, so
  // production traffic never contends on the registry mutex.
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalShortWrite));
  EXPECT_EQ(failpoint::Hits(failpoint::kWalShortWrite), 0);
}

TEST_F(FailpointTest, RearmingReplacesTheBudget) {
  failpoint::Arm(failpoint::kWalFsync, /*skip=*/0, /*times=*/1);
  EXPECT_TRUE(failpoint::ShouldFail(failpoint::kWalFsync));
  failpoint::Arm(failpoint::kWalFsync, /*skip=*/0, /*times=*/2);
  EXPECT_TRUE(failpoint::ShouldFail(failpoint::kWalFsync));
  EXPECT_TRUE(failpoint::ShouldFail(failpoint::kWalFsync));
  EXPECT_FALSE(failpoint::ShouldFail(failpoint::kWalFsync));
}

TEST_F(FailpointTest, ConcurrentProbesSeeExactlyTheArmedBudget) {
  failpoint::Arm(failpoint::kEvalRuleAlloc, /*skip=*/0, /*times=*/8);
  std::atomic<int> fired{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (failpoint::ShouldFail(failpoint::kEvalRuleAlloc)) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(fired.load(), 8);
  // Once the 8th firing auto-disarms the site the registry drops back to
  // its uncounted fast path, so only the probes that raced the armed
  // window are tallied — at least the 8 that fired.
  EXPECT_GE(failpoint::Hits(failpoint::kEvalRuleAlloc), 8);
}

}  // namespace
}  // namespace cqlopt
