#include "graph/dependency_graph.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "graph/scc.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

TEST(DependencyGraphTest, EdgesFollowRuleBodies) {
  Program p = ParseOrDie(
      "q(X) :- a(X).\n"
      "a(X) :- b(X), c(X).\n");
  DependencyGraph g(p);
  PredId q = p.symbols->LookupPredicate("q");
  PredId a = p.symbols->LookupPredicate("a");
  PredId b = p.symbols->LookupPredicate("b");
  EXPECT_EQ(g.SuccessorsOf(q).count(a), 1u);
  EXPECT_EQ(g.SuccessorsOf(a).count(b), 1u);
  EXPECT_TRUE(g.SuccessorsOf(b).empty());
}

TEST(DependencyGraphTest, ReachableFromQuery) {
  Program p = ParseOrDie(
      "q(X) :- a(X).\n"
      "a(X) :- b(X).\n"
      "orphan(X) :- c(X).\n");
  DependencyGraph g(p);
  PredId q = p.symbols->LookupPredicate("q");
  auto reachable = g.ReachableFrom(q);
  EXPECT_EQ(reachable.count(p.symbols->LookupPredicate("b")), 1u);
  EXPECT_EQ(reachable.count(p.symbols->LookupPredicate("orphan")), 0u);
}

TEST(DependencyGraphTest, MutualRecursionDetected) {
  Program p = ParseOrDie(
      "even(X) :- odd(Y), X = Y + 1.\n"
      "odd(X) :- even(Y), X = Y + 1.\n"
      "even(Z) :- zero(Z).\n");
  DependencyGraph g(p);
  PredId even = p.symbols->LookupPredicate("even");
  PredId odd = p.symbols->LookupPredicate("odd");
  PredId zero = p.symbols->LookupPredicate("zero");
  EXPECT_TRUE(g.MutuallyRecursive(even, odd));
  EXPECT_TRUE(g.MutuallyRecursive(even, even));
  EXPECT_FALSE(g.MutuallyRecursive(even, zero));
}

TEST(SccTest, ComponentsReverseTopological) {
  Program p = ParseOrDie(
      "q(X) :- a(X).\n"
      "a(X) :- a(X), b(X).\n"
      "b(X) :- e(X).\n");
  DependencyGraph g(p);
  SccDecomposition scc(g);
  PredId q = p.symbols->LookupPredicate("q");
  PredId a = p.symbols->LookupPredicate("a");
  PredId b = p.symbols->LookupPredicate("b");
  // Reverse topological: dependency components come before dependents.
  EXPECT_LT(scc.ComponentOf(b), scc.ComponentOf(a));
  EXPECT_LT(scc.ComponentOf(a), scc.ComponentOf(q));
}

TEST(SccTest, RecursiveGroupIsOneComponent) {
  Program p = ParseOrDie(
      "x(A) :- y(A).\n"
      "y(A) :- x(A).\n"
      "x(A) :- base(A).\n");
  DependencyGraph g(p);
  SccDecomposition scc(g);
  EXPECT_EQ(scc.ComponentOf(p.symbols->LookupPredicate("x")),
            scc.ComponentOf(p.symbols->LookupPredicate("y")));
}

TEST(SccTest, TopDownFromStartsAtQueryScc) {
  Program p = ParseOrDie(
      "q(X) :- a(X).\n"
      "a(X) :- a(X), b(X).\n"
      "b(X) :- e(X).\n"
      "unrelated(X) :- f(X).\n");
  DependencyGraph g(p);
  SccDecomposition scc(g);
  PredId q = p.symbols->LookupPredicate("q");
  auto order = scc.TopDownFrom(q, g);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), std::vector<PredId>{q});
  for (const auto& component : order) {
    for (PredId pred : component) {
      EXPECT_NE(pred, p.symbols->LookupPredicate("unrelated"));
    }
  }
}

TEST(SccTest, SelfLoopSingletonComponent) {
  Program p = ParseOrDie("t(X, Y) :- t(X, Z), t(Z, Y).\n t(X, Y) :- e(X, Y).");
  DependencyGraph g(p);
  SccDecomposition scc(g);
  PredId t = p.symbols->LookupPredicate("t");
  PredId e = p.symbols->LookupPredicate("e");
  EXPECT_NE(scc.ComponentOf(t), scc.ComponentOf(e));
  EXPECT_TRUE(g.MutuallyRecursive(t, t));
}

TEST(SccTest, DeepChainNoStackOverflow) {
  // 2000-predicate chain exercises the iterative Tarjan.
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text += "p" + std::to_string(i) + "(X) :- p" + std::to_string(i + 1) +
            "(X).\n";
  }
  Program p = ParseOrDie(text);
  DependencyGraph g(p);
  SccDecomposition scc(g);
  EXPECT_EQ(scc.components().size(), 2001u);
}

}  // namespace
}  // namespace cqlopt
