// Tests for DRed-style retraction (src/eval/retract.h) and streaming-window
// expiry (DESIGN.md §14). The scenarios pin the cases the randomized
// retract_vs_scratch property can only hit by luck: diamond derivations
// whose shared conclusion must survive losing one support, recursive
// over-deletion that re-derives through a cycle, retraction under
// constraint subsumption (where the scratch run stores a fact the original
// run subsumed away), and TTL expiry ordering interleaved with queries.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/loader.h"
#include "eval/retract.h"
#include "eval/seminaive.h"
#include "service/query_service.h"

namespace cqlopt {
namespace {

/// Byte-identity comparator: relation keys and birth stamps in storage
/// order — what the retract_vs_scratch contract promises to preserve.
std::string Fingerprint(const EvalResult& r) {
  std::string out;
  for (const auto& [pred, rel] : r.db.relations()) {
    out += std::to_string(pred);
    out += '{';
    for (size_t i = 0; i < rel.size(); ++i) {
      out += rel.fact(i).Key();
      out += '@';
      out += std::to_string(rel.birth(i));
      out += ';';
    }
    out += '}';
  }
  return out;
}

/// Sorted rendered facts of one predicate in an evaluation result.
std::vector<std::string> FactStrings(const EvalResult& r,
                                     const std::string& pred_name,
                                     const SymbolTable& symbols) {
  std::vector<std::string> out;
  for (const auto& [pred, rel] : r.db.relations()) {
    if (symbols.PredicateName(pred) != pred_name) continue;
    for (size_t i = 0; i < rel.size(); ++i) {
      out.push_back(rel.fact(i).ToString(symbols));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Parses loader-syntax statements into the facts they store, in order.
std::vector<Fact> FactsFromText(const std::string& text,
                                std::shared_ptr<SymbolTable> symbols) {
  Database staged;
  auto loaded = LoadDatabaseText(text, symbols, &staged);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::vector<Fact> out;
  for (const auto& [pred, rel] : staged.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) out.push_back(rel.fact(i));
  }
  return out;
}

/// Builds a Database holding `text`'s facts (the evaluation EDB shape).
Database EdbFromText(const std::string& text,
                     std::shared_ptr<SymbolTable> symbols) {
  Database db;
  auto loaded = LoadDatabaseText(text, symbols, &db);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return db;
}

EvalOptions StratifiedOptions(SubsumptionMode mode = SubsumptionMode::kNone) {
  EvalOptions opts;
  opts.strategy = EvalStrategy::kStratified;
  opts.subsumption = mode;
  return opts;
}

/// Runs the full differential: evaluate `edb_text`, retract `retract_text`'s
/// facts incrementally, and demand byte-identity with a scratch run over
/// `surviving_text`. Returns the incremental result for further probing.
EvalResult RetractAndCheck(const std::string& program_text,
                           const std::string& edb_text,
                           const std::string& retract_text,
                           const std::string& surviving_text,
                           const EvalOptions& opts,
                           std::shared_ptr<SymbolTable>* symbols_out =
                               nullptr) {
  auto parsed = ParseProgram(program_text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto symbols = parsed->program.symbols;
  if (symbols_out != nullptr) *symbols_out = symbols;

  Database full = EdbFromText(edb_text, symbols);
  auto base = Evaluate(parsed->program, full, opts);
  EXPECT_TRUE(base.ok()) << base.status().ToString();

  std::vector<Fact> batch = FactsFromText(retract_text, symbols);
  auto shrunk =
      RetractEvaluate(parsed->program, std::move(*base), batch, opts);
  EXPECT_TRUE(shrunk.ok()) << shrunk.status().ToString();

  Database surviving = EdbFromText(surviving_text, symbols);
  auto scratch = Evaluate(parsed->program, surviving, opts);
  EXPECT_TRUE(scratch.ok()) << scratch.status().ToString();
  EXPECT_EQ(Fingerprint(*shrunk), Fingerprint(*scratch))
      << "incremental retraction (path " << shrunk->stats.retract_path
      << ") diverged from the scratch run";
  return std::move(*shrunk);
}

TEST(RetractEvaluateTest, DiamondConclusionSurvivesWhileOneSupportRemains) {
  const char* program =
      "d(X) :- a(X).\n"
      "d(X) :- b(X).\n"
      "top(X) :- d(X).\n";
  // d(1) is derived two ways (a diamond through a(1) and b(1)). Killing
  // a(1) must leave d(1) and top(1) standing on the b(1) support alone.
  auto shrunk = RetractAndCheck(program, "a(1).\na(2).\nb(1).\n", "a(1).\n",
                                "a(2).\nb(1).\n", StratifiedOptions());
  EXPECT_EQ(shrunk.stats.retracted_facts, 1);
  EXPECT_EQ(shrunk.stats.retract_missing, 0);
  EXPECT_NE(shrunk.stats.retract_path, "full")
      << "a counting-resolvable deletion took the scratch fallback";
}

TEST(RetractEvaluateTest, SecondSupportRetractionKillsTheDiamond) {
  const char* program =
      "d(X) :- a(X).\n"
      "d(X) :- b(X).\n"
      "top(X) :- d(X).\n";
  auto parsed = ParseProgram(program);
  ASSERT_TRUE(parsed.ok());
  auto symbols = parsed->program.symbols;
  EvalOptions opts = StratifiedOptions();

  Database full = EdbFromText("a(1).\na(2).\nb(1).\n", symbols);
  auto base = Evaluate(parsed->program, full, opts);
  ASSERT_TRUE(base.ok());

  // Chained retractions on one materialization: first a(1), then b(1).
  auto once = RetractEvaluate(parsed->program, std::move(*base),
                              FactsFromText("a(1).\n", symbols), opts);
  ASSERT_TRUE(once.ok());
  auto twice = RetractEvaluate(parsed->program, std::move(*once),
                               FactsFromText("b(1).\n", symbols), opts);
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();

  auto scratch =
      Evaluate(parsed->program, EdbFromText("a(2).\n", symbols), opts);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(Fingerprint(*twice), Fingerprint(*scratch));
  EXPECT_EQ(FactStrings(*twice, "d", *symbols),
            std::vector<std::string>{"d(2)"});
  EXPECT_EQ(FactStrings(*twice, "top", *symbols),
            std::vector<std::string>{"top(2)"});
}

TEST(RetractEvaluateTest, RecursiveOverDeletionRederivesThroughTheCycle) {
  const char* program =
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
  // The 1<->2 cycle derives path facts many times over; deleting the only
  // road to 3 over-deletes into the cycle, and the re-derivation pass must
  // restore exactly the scratch state of the surviving graph.
  std::shared_ptr<SymbolTable> symbols;
  auto shrunk = RetractAndCheck(
      program, "edge(1, 2).\nedge(2, 1).\nedge(2, 3).\n", "edge(2, 3).\n",
      "edge(1, 2).\nedge(2, 1).\n", StratifiedOptions(), &symbols);
  std::vector<std::string> paths = FactStrings(shrunk, "path", *symbols);
  EXPECT_TRUE(std::find(paths.begin(), paths.end(), "path(1, 1)") !=
              paths.end())
      << "cycle-derived survivor was not re-derived";
  for (const std::string& fact : paths) {
    EXPECT_EQ(fact.find("3"), std::string::npos)
        << fact << " survived the retraction of the only edge into 3";
  }
  EXPECT_NE(shrunk.stats.retract_path, "full");
}

TEST(RetractEvaluateTest, RetractionOfNeverInsertedFactsIsCountedNotFatal) {
  const char* program = "d(X) :- a(X).\n";
  auto parsed = ParseProgram(program);
  ASSERT_TRUE(parsed.ok());
  auto symbols = parsed->program.symbols;
  EvalOptions opts = StratifiedOptions();
  auto base =
      Evaluate(parsed->program, EdbFromText("a(1).\n", symbols), opts);
  ASSERT_TRUE(base.ok());
  // a(9) was never inserted; d(1) is derived-only, not a base fact. Both
  // are misses; the state is untouched (the "noop" path).
  std::string before = Fingerprint(*base);
  auto batch = FactsFromText("a(9).\nd(1).\n", symbols);
  auto shrunk = RetractEvaluate(parsed->program, std::move(*base), batch, opts);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(Fingerprint(*shrunk), before);
  EXPECT_EQ(shrunk->stats.retracted_facts, 0);
  EXPECT_EQ(shrunk->stats.retract_missing, 2);
  EXPECT_EQ(shrunk->stats.retract_path, "noop");
}

class RetractSubsumptionTest
    : public ::testing::TestWithParam<SubsumptionMode> {};

TEST_P(RetractSubsumptionTest, RetractingTheSubsumerResurfacesTheSubsumed) {
  const char* program = "good(X) :- cap(X).\n";
  // Under subsumption the derivation good(W <= 3) is absorbed by the wider
  // good(W <= 5) and never stored. Retracting cap(W <= 5) must leave
  // exactly what a scratch run over cap(W <= 3) stores — i.e. the
  // previously-subsumed fact has to be (re)derived, not lost.
  EvalOptions opts = StratifiedOptions(GetParam());
  std::shared_ptr<SymbolTable> symbols;
  auto shrunk = RetractAndCheck(program,
                                "cap(W) :- W <= 5.\ncap(W) :- W <= 3.\n",
                                "cap(W) :- W <= 5.\n", "cap(W) :- W <= 3.\n",
                                opts, &symbols);
  EXPECT_EQ(shrunk.stats.retracted_facts, 1);
  std::vector<std::string> good = FactStrings(shrunk, "good", *symbols);
  ASSERT_EQ(good.size(), 1u) << "good should hold exactly the narrow fact";
  EXPECT_NE(good[0].find("3"), std::string::npos) << good[0];
}

INSTANTIATE_TEST_SUITE_P(Modes, RetractSubsumptionTest,
                         ::testing::Values(SubsumptionMode::kSingleFact,
                                           SubsumptionMode::kSetImplication),
                         [](const ::testing::TestParamInfo<SubsumptionMode>&
                                info) {
                           return info.param == SubsumptionMode::kSingleFact
                                      ? "single_fact"
                                      : "set_implication";
                         });

// ---------------------------------------------------------------------------
// TTL windows at the service layer: expiry ordering vs queries.

TEST(TtlExpiryTest, DeadlinesExpireInOrderBetweenQueries) {
  auto service = QueryService::FromText("r(X) :- s(X).\n", "s(1).\n");
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const char* query = "?- r(V1).";

  auto warm = (*service)->Execute(query, "");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->answers.size(), 1u);

  ASSERT_TRUE((*service)->IngestTtl("s(2).\n", 100).ok());
  ASSERT_TRUE((*service)->IngestTtl("s(3).\n", 200).ok());
  auto all = (*service)->Execute(query, "");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->answers.size(), 3u);

  // One tick short of the first deadline: nothing expires, no epoch burns.
  auto early = (*service)->AdvanceClock(99);
  ASSERT_TRUE(early.ok()) << early.status().ToString();
  EXPECT_EQ(early->now_ms, 99);
  EXPECT_EQ(early->expired, 0);
  auto still = (*service)->Execute(query, "");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->answers.size(), 3u);

  // Reaching a deadline exactly expires it (windows are half-open at the
  // tail: a fact with TTL t dies once now >= ingest + t).
  auto first = (*service)->AdvanceClock(1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->now_ms, 100);
  EXPECT_EQ(first->expired, 1);
  auto two = (*service)->Execute(query, "");
  ASSERT_TRUE(two.ok());
  ASSERT_EQ(two->answers.size(), 2u);
  for (const std::string& answer : two->answers) {
    EXPECT_EQ(answer.find("r(2)"), std::string::npos) << answer;
  }

  // A big jump sweeps every elapsed deadline in one tick.
  auto rest = (*service)->AdvanceClock(1000);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->now_ms, 1100);
  EXPECT_EQ(rest->expired, 1);
  auto last = (*service)->Execute(query, "");
  ASSERT_TRUE(last.ok());
  ASSERT_EQ(last->answers.size(), 1u);
  EXPECT_NE(last->answers[0].find("r(1)"), std::string::npos)
      << last->answers[0];

  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.ttl_ingests, 2);
  EXPECT_EQ(stats.expired_facts, 2);
  EXPECT_EQ(stats.clock_ms, 1100);
  EXPECT_EQ(stats.ttl_pending, 0u);
}

TEST(TtlExpiryTest, DuplicatePermanentIngestDoesNotRefreshTheDeadline) {
  auto service = QueryService::FromText("r(X) :- s(X).\n", "");
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->IngestTtl("s(9).\n", 100).ok());
  // Re-ingesting the same fact without a TTL dedups against the stored row
  // — it neither refreshes nor cancels the deadline, so the fact still
  // expires on schedule (the documented EDB-set semantics).
  auto dup = (*service)->Ingest("s(9).\n");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->accepted, 0);
  EXPECT_EQ(dup->duplicates, 1);
  auto tick = (*service)->AdvanceClock(100);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(tick->expired, 1);
  auto gone = (*service)->Execute("?- r(V1).", "");
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->answers.empty());
}

TEST(TtlExpiryTest, RetractedTtlFactLeavesOnlyAStaleDeadlineBehind) {
  auto service = QueryService::FromText("r(X) :- s(X).\n", "");
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->IngestTtl("s(4).\n", 100).ok());
  auto removed = (*service)->Retract("s(4).\n");
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed->removed, 1);
  // The sweep must skip the stale entry: nothing expires, no epoch burns.
  int64_t epoch_before = (*service)->epoch();
  auto tick = (*service)->AdvanceClock(200);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(tick->expired, 0);
  EXPECT_EQ(tick->epoch, epoch_before);
  EXPECT_EQ((*service)->Stats().ttl_pending, 0u);
}

TEST(TtlExpiryTest, ClockOnlyMovesForward) {
  auto service = QueryService::FromText("r(X) :- s(X).\n", "");
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AdvanceClock(10).ok());
  auto back = (*service)->AdvanceClock(-5);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
  // A zero-delta advance is a clock read, not a tick.
  auto read = (*service)->AdvanceClock(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->now_ms, 10);
  EXPECT_EQ(read->expired, 0);
}

}  // namespace
}  // namespace cqlopt
