#include "eval/relation.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/database.h"

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Fact MakeFact(int bound, CmpOp op = CmpOp::kLe) {
  Conjunction c;
  EXPECT_TRUE(c.AddLinear(Atom({{1, 1}}, -bound, op)).ok());
  return Fact(0, 1, c);
}

TEST(RelationTest, InsertAndDuplicate) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(3), 0, SubsumptionMode::kNone),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.Insert(MakeFact(3), 1, SubsumptionMode::kNone),
            InsertOutcome::kDuplicate);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, SubsumptionDiscardsImpliedFact) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(5), 0, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  // x <= 3 implies x <= 5: subsumed.
  EXPECT_EQ(rel.Insert(MakeFact(3), 1, SubsumptionMode::kSingleFact),
            InsertOutcome::kSubsumed);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, NoSubsumptionModeKeepsBoth) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(5), 0, SubsumptionMode::kNone),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.Insert(MakeFact(3), 1, SubsumptionMode::kNone),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, WiderFactStillInsertedAfterNarrower) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(3), 0, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  // x <= 5 is NOT implied by x <= 3; the paper keeps both (old facts are
  // not retracted).
  EXPECT_EQ(rel.Insert(MakeFact(5), 1, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, SetImplicationCoversWithUnion) {
  Relation rel;
  // x <= 5 and x >= 5 together cover 0 <= x <= 10? No — but they do cover
  // any fact inside their union, e.g. 3 <= x <= 8.
  EXPECT_EQ(rel.Insert(MakeFact(5), 0, SubsumptionMode::kSetImplication),
            InsertOutcome::kInserted);  // x <= 5
  Conjunction ge5;
  ASSERT_TRUE(ge5.AddLinear(Atom({{1, -1}}, 5, CmpOp::kLe)).ok());
  EXPECT_EQ(rel.Insert(Fact(0, 1, ge5), 0, SubsumptionMode::kSetImplication),
            InsertOutcome::kInserted);  // x >= 5
  Conjunction middle;
  ASSERT_TRUE(middle.AddLinear(Atom({{1, 1}}, -8, CmpOp::kLe)).ok());
  ASSERT_TRUE(middle.AddLinear(Atom({{1, -1}}, 3, CmpOp::kLe)).ok());
  // Neither single fact implies [3,8], but their union does.
  EXPECT_EQ(
      rel.Insert(Fact(0, 1, middle), 1, SubsumptionMode::kSingleFact),
      InsertOutcome::kInserted);
  Relation rel2;
  (void)rel2.Insert(MakeFact(5), 0, SubsumptionMode::kNone);
  (void)rel2.Insert(Fact(0, 1, ge5), 0, SubsumptionMode::kNone);
  EXPECT_EQ(
      rel2.Insert(Fact(0, 1, middle), 1, SubsumptionMode::kSetImplication),
      InsertOutcome::kSubsumed);
}

TEST(RelationTest, BirthRecorded) {
  Relation rel;
  (void)rel.Insert(MakeFact(3), 4, SubsumptionMode::kNone);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.birth(0), 4);
}

TEST(RelationTest, AllGround) {
  Relation rel;
  Conjunction ground;
  ASSERT_TRUE(ground.AddLinear(Atom({{1, 1}}, -3, CmpOp::kEq)).ok());
  (void)rel.Insert(Fact(0, 1, ground), 0, SubsumptionMode::kNone);
  EXPECT_TRUE(rel.AllGround());
  (void)rel.Insert(MakeFact(7), 0, SubsumptionMode::kNone);
  EXPECT_FALSE(rel.AllGround());
}

// --- Per-position hash index -------------------------------------------
//
// The contract under test (relation.h): Probe(pos, value, limit) visits, in
// ascending entry order, exactly the entries < limit that a linear scan
// keeps after the ArgSignature pre-filter at that position — facts directly
// bound to the probed value, merged with facts whose position is
// constraint-only bound (unbound signature, e.g. `$1 > 0`).

/// $1 = n: direct equality, so QuickNumericValue binds the signature.
Fact NumberFact(int n) {
  Conjunction c;
  EXPECT_TRUE(c.AddLinear(Atom({{1, 1}}, -n, CmpOp::kEq)).ok());
  return Fact(0, 1, c);
}

/// $1 bound to a symbol.
Fact SymbolFact(SymbolId s) {
  Conjunction c;
  EXPECT_TRUE(c.BindSymbol(1, s).ok());
  return Fact(0, 1, c);
}

/// lo <= $1 <= hi: the position is restricted only through inequalities,
/// so its signature stays unbound (constraint-only bound).
Fact RangeFact(int lo, int hi) {
  Conjunction c;
  EXPECT_TRUE(c.AddLinear(Atom({{1, -1}}, lo, CmpOp::kLe)).ok());
  EXPECT_TRUE(c.AddLinear(Atom({{1, 1}}, -hi, CmpOp::kLe)).ok());
  return Fact(0, 1, c);
}

/// The linear scan the index replaces: rows [0, limit) surviving the value
/// column pre-filter at `position`.
std::vector<size_t> ScanWithPrefilter(const Relation& rel, int position,
                                      const Relation::ArgSignature& value,
                                      size_t limit) {
  std::vector<size_t> out;
  size_t n = std::min(limit, rel.size());
  for (size_t i = 0; i < n; ++i) {
    switch (rel.tag(i, position)) {
      case Relation::ColTag::kSymbol:
        if (!value.symbol.has_value() ||
            rel.symbol_at(i, position) != *value.symbol) {
          continue;
        }
        break;
      case Relation::ColTag::kNumber:
        if (!value.number.has_value() ||
            !(rel.number_at(i, position) == *value.number)) {
          continue;
        }
        break;
      default:
        break;  // absent / unbound / interval-bound: never pre-filtered
    }
    out.push_back(i);
  }
  return out;
}

/// Probe through a local scratch buffer, copied out for comparison.
std::vector<size_t> ProbeVec(const Relation& rel, int position,
                             const Relation::ArgSignature& value,
                             size_t limit) {
  std::vector<size_t> scratch;
  return rel.Probe(position, value, limit, &scratch);
}

Relation::ArgSignature NumberValue(int n) {
  return Relation::ArgSignature{std::nullopt, Rational(n)};
}

Relation::ArgSignature SymbolValue(SymbolId s) {
  return Relation::ArgSignature{s, std::nullopt};
}

TEST(RelationIndexTest, ProbeEqualsScanWithPrefilter) {
  Relation rel;
  (void)rel.Insert(NumberFact(3), 0, SubsumptionMode::kNone);
  (void)rel.Insert(RangeFact(0, 10), 0, SubsumptionMode::kNone);
  (void)rel.Insert(NumberFact(7), 1, SubsumptionMode::kNone);
  (void)rel.Insert(SymbolFact(4), 1, SubsumptionMode::kNone);
  (void)rel.Insert(NumberFact(9), 2, SubsumptionMode::kNone);
  (void)rel.Insert(RangeFact(2, 5), 2, SubsumptionMode::kNone);
  for (const auto& value :
       {NumberValue(3), NumberValue(7), NumberValue(99), SymbolValue(4),
        SymbolValue(5)}) {
    for (size_t limit : {size_t{0}, size_t{3}, rel.size(), size_t{100}}) {
      EXPECT_EQ(ProbeVec(rel, 1, value, limit),
                ScanWithPrefilter(rel, 1, value, limit));
    }
  }
}

TEST(RelationIndexTest, ConstraintOnlyBoundEnumeratedForEveryValue) {
  Relation rel;
  (void)rel.Insert(RangeFact(0, 10), 0, SubsumptionMode::kNone);
  // The range fact's position 1 has no direct binding: it must appear in
  // every probe, even for values outside the range — the caller's
  // constraint conjunction, not the index, decides satisfiability.
  EXPECT_EQ(ProbeVec(rel, 1, NumberValue(5), rel.size()),
            std::vector<size_t>({0}));
  EXPECT_EQ(ProbeVec(rel, 1, NumberValue(99), rel.size()),
            std::vector<size_t>({0}));
  EXPECT_EQ(ProbeVec(rel, 1, SymbolValue(1), rel.size()),
            std::vector<size_t>({0}));
}

TEST(RelationIndexTest, RejectedFactsAreNeverIndexed) {
  Relation rel;
  EXPECT_EQ(rel.Insert(NumberFact(3), 0, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.Insert(NumberFact(3), 1, SubsumptionMode::kSingleFact),
            InsertOutcome::kDuplicate);
  // 3 <= $1 <= 3 is a different key but implied by $1 = 3... build an
  // actually-subsumed fact: x <= 5 first, then probe with a narrower one.
  EXPECT_EQ(rel.Insert(MakeFact(5), 1, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.Insert(MakeFact(3), 2, SubsumptionMode::kSingleFact),
            InsertOutcome::kSubsumed);
  // Only the two stored entries are reachable through the index.
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(ProbeVec(rel, 1, NumberValue(3), rel.size()),
            std::vector<size_t>({0, 1}));  // row 1 is interval-bound (x <= 5)
  EXPECT_EQ(rel.ProbeCost(1, NumberValue(3)), 2u);
}

TEST(RelationIndexTest, ProbeCostMatchesUnlimitedProbe) {
  Relation rel;
  (void)rel.Insert(NumberFact(1), 0, SubsumptionMode::kNone);
  (void)rel.Insert(NumberFact(2), 0, SubsumptionMode::kNone);
  (void)rel.Insert(RangeFact(0, 3), 0, SubsumptionMode::kNone);
  (void)rel.Insert(SymbolFact(2), 0, SubsumptionMode::kNone);
  for (const auto& value : {NumberValue(1), NumberValue(2), SymbolValue(2),
                            SymbolValue(9), NumberValue(42)}) {
    EXPECT_EQ(rel.ProbeCost(1, value),
              ProbeVec(rel, 1, value, rel.size()).size());
  }
}

TEST(RelationIndexTest, SymbolAndNumberKeysNeverCollide) {
  Relation rel;
  (void)rel.Insert(NumberFact(7), 0, SubsumptionMode::kNone);
  (void)rel.Insert(SymbolFact(7), 0, SubsumptionMode::kNone);
  EXPECT_EQ(ProbeVec(rel, 1, NumberValue(7), rel.size()),
            std::vector<size_t>({0}));
  EXPECT_EQ(ProbeVec(rel, 1, SymbolValue(7), rel.size()),
            std::vector<size_t>({1}));
}

TEST(RelationIndexTest, MergedResultIsAscendingInsertionOrder) {
  Relation rel;
  // Interleave bound and unbound entries so the merge has real work to do.
  (void)rel.Insert(RangeFact(0, 1), 0, SubsumptionMode::kNone);   // 0
  (void)rel.Insert(NumberFact(5), 0, SubsumptionMode::kNone);     // 1
  (void)rel.Insert(RangeFact(0, 2), 0, SubsumptionMode::kNone);   // 2
  (void)rel.Insert(NumberFact(6), 0, SubsumptionMode::kNone);     // 3
  (void)rel.Insert(RangeFact(0, 3), 0, SubsumptionMode::kNone);   // 4
  EXPECT_EQ(ProbeVec(rel, 1, NumberValue(5), rel.size()),
            std::vector<size_t>({0, 1, 2, 4}));
  // The snapshot limit cuts the merged stream, not just one side.
  EXPECT_EQ(ProbeVec(rel, 1, NumberValue(5), 2), std::vector<size_t>({0, 1}));
  EXPECT_EQ(ProbeVec(rel, 1, NumberValue(6), 4),
            std::vector<size_t>({0, 2, 3}));
}

TEST(RelationIndexTest, ProbeBeyondSeenArityIsEmpty) {
  Relation rel;
  (void)rel.Insert(NumberFact(3), 0, SubsumptionMode::kNone);
  EXPECT_EQ(ProbeVec(rel, 2, NumberValue(3), rel.size()),
            std::vector<size_t>{});
  EXPECT_EQ(rel.ProbeCost(2, NumberValue(3)), 0u);
}

TEST(DatabaseTest, AddGroundFactBuildsConstraints) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(db.AddGroundFact(&symbols, "leg",
                               {Database::Value::Symbol("a"),
                                Database::Value::Number(Rational(7))})
                  .ok());
  PredId leg = symbols.LookupPredicate("leg");
  const Relation* rel = db.Find(leg);
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_TRUE(rel->fact(0).IsGround());
  EXPECT_EQ(rel->birth(0), -1);
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_EQ(db.FactsFor(leg), 1u);
  EXPECT_TRUE(db.AllGround());
}

TEST(DatabaseTest, FindMissingRelationIsNull) {
  Database db;
  EXPECT_EQ(db.Find(99), nullptr);
  EXPECT_EQ(db.FactsFor(99), 0u);
}

}  // namespace
}  // namespace cqlopt
