#include "eval/relation.h"

#include <gtest/gtest.h>

#include "eval/database.h"

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Fact MakeFact(int bound, CmpOp op = CmpOp::kLe) {
  Conjunction c;
  EXPECT_TRUE(c.AddLinear(Atom({{1, 1}}, -bound, op)).ok());
  return Fact(0, 1, c);
}

TEST(RelationTest, InsertAndDuplicate) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(3), 0, SubsumptionMode::kNone),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.Insert(MakeFact(3), 1, SubsumptionMode::kNone),
            InsertOutcome::kDuplicate);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, SubsumptionDiscardsImpliedFact) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(5), 0, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  // x <= 3 implies x <= 5: subsumed.
  EXPECT_EQ(rel.Insert(MakeFact(3), 1, SubsumptionMode::kSingleFact),
            InsertOutcome::kSubsumed);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, NoSubsumptionModeKeepsBoth) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(5), 0, SubsumptionMode::kNone),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.Insert(MakeFact(3), 1, SubsumptionMode::kNone),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, WiderFactStillInsertedAfterNarrower) {
  Relation rel;
  EXPECT_EQ(rel.Insert(MakeFact(3), 0, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  // x <= 5 is NOT implied by x <= 3; the paper keeps both (old facts are
  // not retracted).
  EXPECT_EQ(rel.Insert(MakeFact(5), 1, SubsumptionMode::kSingleFact),
            InsertOutcome::kInserted);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, SetImplicationCoversWithUnion) {
  Relation rel;
  // x <= 5 and x >= 5 together cover 0 <= x <= 10? No — but they do cover
  // any fact inside their union, e.g. 3 <= x <= 8.
  EXPECT_EQ(rel.Insert(MakeFact(5), 0, SubsumptionMode::kSetImplication),
            InsertOutcome::kInserted);  // x <= 5
  Conjunction ge5;
  ASSERT_TRUE(ge5.AddLinear(Atom({{1, -1}}, 5, CmpOp::kLe)).ok());
  EXPECT_EQ(rel.Insert(Fact(0, 1, ge5), 0, SubsumptionMode::kSetImplication),
            InsertOutcome::kInserted);  // x >= 5
  Conjunction middle;
  ASSERT_TRUE(middle.AddLinear(Atom({{1, 1}}, -8, CmpOp::kLe)).ok());
  ASSERT_TRUE(middle.AddLinear(Atom({{1, -1}}, 3, CmpOp::kLe)).ok());
  // Neither single fact implies [3,8], but their union does.
  EXPECT_EQ(
      rel.Insert(Fact(0, 1, middle), 1, SubsumptionMode::kSingleFact),
      InsertOutcome::kInserted);
  Relation rel2;
  (void)rel2.Insert(MakeFact(5), 0, SubsumptionMode::kNone);
  (void)rel2.Insert(Fact(0, 1, ge5), 0, SubsumptionMode::kNone);
  EXPECT_EQ(
      rel2.Insert(Fact(0, 1, middle), 1, SubsumptionMode::kSetImplication),
      InsertOutcome::kSubsumed);
}

TEST(RelationTest, BirthRecorded) {
  Relation rel;
  (void)rel.Insert(MakeFact(3), 4, SubsumptionMode::kNone);
  ASSERT_EQ(rel.entries().size(), 1u);
  EXPECT_EQ(rel.entries()[0].birth, 4);
}

TEST(RelationTest, AllGround) {
  Relation rel;
  Conjunction ground;
  ASSERT_TRUE(ground.AddLinear(Atom({{1, 1}}, -3, CmpOp::kEq)).ok());
  (void)rel.Insert(Fact(0, 1, ground), 0, SubsumptionMode::kNone);
  EXPECT_TRUE(rel.AllGround());
  (void)rel.Insert(MakeFact(7), 0, SubsumptionMode::kNone);
  EXPECT_FALSE(rel.AllGround());
}

TEST(DatabaseTest, AddGroundFactBuildsConstraints) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(db.AddGroundFact(&symbols, "leg",
                               {Database::Value::Symbol("a"),
                                Database::Value::Number(Rational(7))})
                  .ok());
  PredId leg = symbols.LookupPredicate("leg");
  const Relation* rel = db.Find(leg);
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_TRUE(rel->entries()[0].fact.IsGround());
  EXPECT_EQ(rel->entries()[0].birth, -1);
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_EQ(db.FactsFor(leg), 1u);
  EXPECT_TRUE(db.AllGround());
}

TEST(DatabaseTest, FindMissingRelationIsNull) {
  Database db;
  EXPECT_EQ(db.Find(99), nullptr);
  EXPECT_EQ(db.FactsFor(99), 0u);
}

}  // namespace
}  // namespace cqlopt
