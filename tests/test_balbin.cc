#include "transform/balbin_c.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "transform/qrp_constraints.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

const ConstraintSet& Of(const Program& p, const InferenceResult& r,
                        const std::string& pred) {
  return r.constraints.at(p.symbols->LookupPredicate(pred));
}

TEST(BalbinTest, Example41SyntacticMissesImpliedConstraint) {
  // The paper's Section 6.1/4.1 claim: the C transformation, treating
  // constraints as ordinary literals, pushes (X+Y<=6 & X>=2) into p1 but
  // can push NOTHING into p2 — there is no explicit constraining literal
  // on Y alone. Gen_QRP_constraints derives Y <= 4 semantically.
  Program p = ParseOrDie(
      "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n"
      "r2: p1(X, Y) :- b1(X, Y).\n"
      "r3: p2(X) :- b2(X).\n");
  PredId q = p.symbols->LookupPredicate("q");

  auto syntactic = GenSyntacticQrpConstraints(p, q, {});
  ASSERT_TRUE(syntactic.ok());
  EXPECT_TRUE(syntactic->converged);
  ConstraintSet expected_p1 = ConstraintSet::Of(
      Conj({Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe),
            Atom({{1, -1}}, 2, CmpOp::kLe)}));
  EXPECT_TRUE(Of(p, *syntactic, "p1").EquivalentTo(expected_p1));
  EXPECT_TRUE(Of(p, *syntactic, "p2").IsTriviallyTrue())
      << RenderConstraintSet(Of(p, *syntactic, "p2"), *p.symbols,
                             DollarNames());

  auto semantic = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(semantic.ok());
  ConstraintSet expected_p2 =
      ConstraintSet::Of(Conj({Atom({{1, 1}}, -4, CmpOp::kLe)}));
  EXPECT_TRUE(Of(p, *semantic, "p2").EquivalentTo(expected_p2));
}

TEST(BalbinTest, SyntacticMatchesSemanticWhenConstraintsAreDirect) {
  // When every constraint is a direct selection on one literal's variables,
  // the two generators agree.
  Program p = ParseOrDie(
      "q(X) :- a(X), X <= 9.\n"
      "a(X) :- e(X).\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto syntactic = GenSyntacticQrpConstraints(p, q, {});
  auto semantic = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(syntactic.ok());
  ASSERT_TRUE(semantic.ok());
  PredId a = p.symbols->LookupPredicate("a");
  EXPECT_TRUE(syntactic->constraints.at(a).EquivalentTo(
      semantic->constraints.at(a)));
}

TEST(BalbinTest, SyntacticNeverStrongerThanSemantic) {
  // Soundness relation: the semantic QRP constraint implies the syntactic
  // one on every derived predicate (syntactic is an over-approximation).
  Program p = ParseOrDie(
      "q(X) :- a(X, Y), b(Y), X + Y <= 10, X >= 1, Y >= 0.\n"
      "a(X, Y) :- e(X, Y).\n"
      "b(X) :- f(X).\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto syntactic = GenSyntacticQrpConstraints(p, q, {});
  auto semantic = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(syntactic.ok());
  ASSERT_TRUE(semantic.ok());
  for (const auto& [pred, semantic_set] : semantic->constraints) {
    auto it = syntactic->constraints.find(pred);
    if (it == syntactic->constraints.end()) continue;
    EXPECT_TRUE(semantic_set.Implies(it->second))
        << p.symbols->PredicateName(pred);
  }
}

TEST(BalbinTest, PropagatesThroughRecursion) {
  // Direct selections survive recursion in the syntactic variant too.
  Program p = ParseOrDie(
      "q(X, Y) :- t(X, Y), X <= 5.\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- t(X, Z), e(Z, Y).\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto syntactic = GenSyntacticQrpConstraints(p, q, {});
  ASSERT_TRUE(syntactic.ok());
  ConstraintSet expected =
      ConstraintSet::Of(Conj({Atom({{1, 1}}, -5, CmpOp::kLe)}));
  EXPECT_TRUE(Of(p, *syntactic, "t").EquivalentTo(expected))
      << RenderConstraintSet(Of(p, *syntactic, "t"), *p.symbols,
                             DollarNames());
}

}  // namespace
}  // namespace cqlopt
