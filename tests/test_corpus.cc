// Corpus test: every program in programs/*.cql parses, round-trips through
// the printer, rewrites under every applicable transformation sequence, and
// stays query-equivalent on a seeded EDB.

#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "eval/loader.h"
#include "transform/pipeline.h"

namespace cqlopt {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(CQLOPT_PROGRAMS_DIR) + "/" + name;
}

class CorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusTest, ParsesAndRoundTrips) {
  std::string text = ReadFile(ProgramPath(GetParam()));
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->queries.size(), 1u) << GetParam();
  // One render can reorient equality atoms (canonical orientation depends
  // on variable-id order, which the first reparse reshuffles); from the
  // second render on, the text is a fixpoint.
  std::string first = RenderProgram(parsed->program);
  auto reparsed = ParseProgram(first);
  ASSERT_TRUE(reparsed.ok()) << first;
  std::string second = RenderProgram(reparsed->program);
  auto reparsed2 = ParseProgram(second);
  ASSERT_TRUE(reparsed2.ok()) << second;
  EXPECT_EQ(RenderProgram(reparsed2->program), second);
}

/// Builds a seeded EDB covering every database predicate of the program.
Database SyntheticEdb(const Program& program, uint64_t seed) {
  Database db;
  for (PredId pred : program.DatabasePredicates()) {
    const std::string& name = program.symbols->PredicateName(pred);
    int arity = program.Arity(pred);
    std::mt19937_64 rng(seed + static_cast<uint64_t>(pred));
    for (int i = 0; i < 12; ++i) {
      std::vector<Database::Value> values;
      for (int a = 0; a < arity; ++a) {
        values.push_back(Database::Value::Number(
            Rational(static_cast<int64_t>(rng() % 30))));
      }
      (void)db.AddGroundFact(program.symbols.get(), name, values);
    }
  }
  return db;
}

TEST_P(CorpusTest, AllSequencesQueryEquivalent) {
  std::string text = ReadFile(ProgramPath(GetParam()));
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok());
  Program& program = parsed->program;
  Query& query = parsed->queries[0];
  // flights uses symbolic airports: load its companion EDB; others get a
  // synthetic numeric EDB.
  Database db;
  if (std::string(GetParam()) == "flights.cql") {
    auto loaded = LoadDatabaseText(ReadFile(ProgramPath("flights_edb.cql")),
                                   program.symbols, &db);
    ASSERT_TRUE(loaded.ok());
  } else {
    db = SyntheticEdb(program, 1234);
  }
  EvalOptions eval;
  eval.max_iterations = 48;
  auto baseline_run = Evaluate(program, db, eval);
  ASSERT_TRUE(baseline_run.ok());
  if (!baseline_run->stats.reached_fixpoint) {
    GTEST_SKIP() << "baseline diverges on this EDB (expected for fib.cql)";
  }
  auto baseline = QueryAnswers(*baseline_run, query);
  ASSERT_TRUE(baseline.ok());
  for (const char* spec : {"pred,qrp", "pred,qrp,mg", "mg,qrp", "balbin"}) {
    auto steps = ParseSteps(spec);
    ASSERT_TRUE(steps.ok());
    auto rewritten = ApplyPipeline(program, query, *steps, {});
    ASSERT_TRUE(rewritten.ok()) << GetParam() << " " << spec << ": "
                                << rewritten.status().ToString();
    auto run = Evaluate(rewritten->program, db, eval);
    ASSERT_TRUE(run.ok());
    auto answers = QueryAnswers(*run, rewritten->query);
    ASSERT_TRUE(answers.ok());
    EXPECT_TRUE(SameAnswers(*baseline, *answers)) << GetParam() << " " << spec;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, CorpusTest,
                         ::testing::Values("flights.cql", "fib.cql",
                                           "example41.cql", "example42.cql",
                                           "example61.cql", "example71.cql",
                                           "example72.cql"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cqlopt
