// Tests for WAL-shipped replication (src/service/replica.h): follower
// bootstrap via snapshot, live tailing of the primary's feed, retryable
// link faults (dropped fetches, torn records, crashes around apply),
// snapshot renegotiation across compaction, per-cut divergence quarantine,
// and PROMOTE failover draining the dead primary's WAL. The invariant under
// test is DESIGN.md §15's: a caught-up follower is byte-identical to its
// primary (RenderStateText — epoch, clock, facts, TTL deadlines), and a
// follower that cannot be identical is quarantined, never silently wrong.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/client.h"
#include "service/protocol.h"
#include "service/replica.h"
#include "service/server.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(CQLOPT_PROGRAMS_DIR) + "/" + name;
}

/// mkdtemp'd WAL directory, removed with its known files on scope exit.
struct TempWalDir {
  std::string path;
  TempWalDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/cqlopt-rep-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path.assign(buf.data());
  }
  ~TempWalDir() {
    if (path.empty()) return;
    for (const char* name :
         {"/wal.log", "/snapshot.cql", "/snapshot.tmp", "/cqld.sock"}) {
      ::unlink((path + name).c_str());
    }
    ::rmdir(path.c_str());
  }
};

const char kFlightsQuery[] = "?- cheaporshort(msn, sea, Time, Cost).";

/// A flights primary with a WAL; the follower variant starts on an EMPTY
/// EDB — everything it knows must arrive by replication.
std::unique_ptr<QueryService> DurableFlights(const std::string& wal_dir,
                                             bool empty_edb = false) {
  ServiceOptions options;
  options.wal_dir = wal_dir;
  auto service = QueryService::FromText(
      ReadFile(ProgramPath("flights.cql")),
      empty_edb ? "" : ReadFile(ProgramPath("flights_edb.cql")), options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

/// Steps until a fetch comes back level (0 records), tolerating retryable
/// injected faults exactly like the Replicator's own backoff loop.
Status CatchUp(Replicator& replicator, int max_steps = 64) {
  for (int i = 0; i < max_steps; ++i) {
    Result<int> stepped = replicator.Step();
    if (!stepped.ok()) {
      if (stepped.status().code() == StatusCode::kDataLoss) {
        return stepped.status();
      }
      continue;
    }
    if (*stepped == 0) return Status::OK();
  }
  return Status::DeadlineExceeded("no catch-up in max_steps");
}

TEST(ReplicatorTest, FollowerBootstrapsAndTailsThePrimary) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  ASSERT_FALSE(p_dir.path.empty());
  ASSERT_FALSE(f_dir.path.empty());
  auto primary = DurableFlights(p_dir.path);
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());

  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  Replicator replicator(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator.AttachHooks();
  EXPECT_EQ(follower->role(), NodeRole::kFollower);

  // Bootstrap: the mismatched coordinates (-1) renegotiate a full snapshot,
  // which lands the follower level with the cut in one step.
  ASSERT_TRUE(CatchUp(replicator).ok());
  EXPECT_EQ(replicator.Progress().snapshots_installed, 1);
  EXPECT_EQ(follower->RenderStateText(), primary->RenderStateText());

  // Live tail: every record kind ships as exact WAL payload bytes.
  ASSERT_TRUE(primary->Ingest("singleleg(sea, msn, 210, 140).\n").ok());
  ASSERT_TRUE(primary->IngestTtl("singleleg(den, jfk, 240, 160).\n", 100).ok());
  ASSERT_TRUE(primary->AdvanceClock(150).ok());  // expires the TTL batch
  ASSERT_TRUE(primary->Retract("singleleg(sea, msn, 210, 140).\n").ok());
  ASSERT_TRUE(CatchUp(replicator).ok());
  EXPECT_EQ(follower->RenderStateText(), primary->RenderStateText());
  ReplicatorProgress progress = replicator.Progress();
  EXPECT_EQ(progress.lag_records, 0);
  EXPECT_EQ(progress.records_applied, 4);
  EXPECT_GT(progress.divergence_checks, 0);
  EXPECT_FALSE(progress.quarantined);

  // The health augmenter reports replication through the follower's HEALTH.
  HealthInfo health = follower->Health();
  EXPECT_EQ(health.role, NodeRole::kFollower);
  EXPECT_EQ(health.lag_records, 0);
  EXPECT_EQ(health.primary_epoch, primary->epoch());
  EXPECT_FALSE(health.quarantined);
}

TEST(ReplicatorTest, AsOfReadsGateOnTheFollowerEpoch) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  Replicator replicator(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator.AttachHooks();
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  ASSERT_TRUE(CatchUp(replicator).ok());

  auto at_head = follower->Execute(kFlightsQuery, "", primary->epoch());
  EXPECT_TRUE(at_head.ok()) << at_head.status().ToString();
  auto ahead = follower->Execute(kFlightsQuery, "", primary->epoch() + 1);
  ASSERT_FALSE(ahead.ok());
  EXPECT_EQ(ahead.status().code(), StatusCode::kUnavailable);
}

TEST(ReplicatorTest, DroppedFetchesAndTornRecordsAreRetryable) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  Replicator replicator(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator.AttachHooks();
  ASSERT_TRUE(CatchUp(replicator).ok());
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());

  // A dropped fetch is typed UNAVAILABLE and leaves the coordinates alone.
  failpoint::Arm(failpoint::kReplicaFetch, /*skip=*/0, /*times=*/1);
  Result<int> dropped = replicator.Step();
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);

  // A torn record rejects the whole batch the same way; the refetch then
  // applies it cleanly. Nothing is partially surfaced.
  failpoint::Arm(failpoint::kReplicaTornRecord, /*skip=*/0, /*times=*/1);
  Result<int> torn = replicator.Step();
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kUnavailable);
  failpoint::DisarmAll();

  ASSERT_TRUE(CatchUp(replicator).ok());
  EXPECT_EQ(follower->RenderStateText(), primary->RenderStateText());
  ReplicatorProgress progress = replicator.Progress();
  EXPECT_EQ(progress.fetch_failures, 2);
  EXPECT_FALSE(progress.quarantined);
}

TEST(ReplicatorTest, CompactionRenegotiatesTheSnapshot) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  Replicator replicator(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator.AttachHooks();
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  ASSERT_TRUE(CatchUp(replicator).ok());
  ASSERT_EQ(replicator.Progress().snapshots_installed, 1);

  // Compaction starts a new feed generation: the follower's coordinates go
  // stale and the next fetch must renegotiate a snapshot, then tail the
  // records committed after it.
  ASSERT_TRUE(primary->Compact().ok());
  ASSERT_TRUE(primary->Ingest("singleleg(sea, msn, 210, 140).\n").ok());
  ASSERT_TRUE(CatchUp(replicator).ok());
  EXPECT_EQ(replicator.Progress().snapshots_installed, 2);
  EXPECT_EQ(follower->RenderStateText(), primary->RenderStateText());
}

TEST(ReplicatorTest, CrashedFollowerRecoversFromItsOwnWal) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  auto replicator = std::make_unique<Replicator>(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator->AttachHooks();
  ASSERT_TRUE(CatchUp(*replicator).ok());

  // Three pending records; the injected crash fires after the first one of
  // the batch commits — which by then is durable in the FOLLOWER's WAL.
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  ASSERT_TRUE(primary->Ingest("singleleg(sea, msn, 210, 140).\n").ok());
  ASSERT_TRUE(primary->Ingest("singleleg(den, jfk, 240, 160).\n").ok());
  failpoint::Arm(failpoint::kReplicaCrashMidApply, /*skip=*/0, /*times=*/1);
  Result<int> crashed = replicator->Step();
  failpoint::DisarmAll();
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kInternal);

  // "Crash": drop the replicator and the service; only f_dir survives.
  ASSERT_GT(replicator->Progress().records_applied, 0);
  int64_t epoch_at_crash = follower->epoch();
  replicator.reset();
  follower.reset();

  follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  ASSERT_TRUE(follower->Recover().ok());
  // Everything applied before the crash recovered without the primary.
  EXPECT_EQ(follower->epoch(), epoch_at_crash);

  replicator = std::make_unique<Replicator>(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator->AttachHooks();
  ASSERT_TRUE(CatchUp(*replicator).ok());
  EXPECT_EQ(follower->RenderStateText(), primary->RenderStateText());
}

TEST(ReplicatorTest, DivergenceQuarantinesTheFollower) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  Replicator replicator(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator.AttachHooks();
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  ASSERT_TRUE(CatchUp(replicator).ok());

  // Tamper: a local clock tick the primary never saw. Epochs still match,
  // so only the state CRC at the cut can catch it.
  ASSERT_TRUE(follower->AdvanceClock(1).ok());
  Result<int> diverged = replicator.Step();
  ASSERT_FALSE(diverged.ok());
  EXPECT_EQ(diverged.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(follower->quarantined());
  EXPECT_TRUE(replicator.Progress().quarantined);

  // Quarantine is load-bearing: reads refuse with typed DATA_LOSS,
  // promotion refuses, and the pull loop stays dead.
  auto read = follower->Execute(kFlightsQuery, "");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  Status promote = follower->Promote("");
  ASSERT_FALSE(promote.ok());
  EXPECT_EQ(promote.code(), StatusCode::kFailedPrecondition);
  Result<int> pull = replicator.Step();
  ASSERT_FALSE(pull.ok());
  EXPECT_EQ(pull.status().code(), StatusCode::kDataLoss);

  // HEALTH carries the quarantine so operators see it without a log dive.
  HealthInfo health = follower->Health();
  EXPECT_TRUE(health.quarantined);
  EXPECT_FALSE(health.quarantine_reason.empty());
}

TEST(ReplicatorTest, PromoteDrainsTheDeadPrimarysWal) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  Replicator replicator(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator.AttachHooks();

  // History with an expired TTL batch: a naive promote that re-applied the
  // whole dead WAL would resurrect it with a fresh deadline computed from
  // the current clock — byte-identity below is the regression gate.
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  ASSERT_TRUE(primary->IngestTtl("singleleg(den, jfk, 240, 160).\n", 100).ok());
  ASSERT_TRUE(primary->AdvanceClock(150).ok());
  ASSERT_TRUE(CatchUp(replicator).ok());

  // One more acknowledged write the follower never pulls, then the crash.
  // (A new destination, not a return leg: a singleleg cycle would make the
  // recursive flights program derive unboundedly growing itineraries.)
  ASSERT_TRUE(primary->Ingest("singleleg(sea, pdx, 210, 140).\n").ok());
  std::string dead_state = primary->RenderStateText();
  int64_t dead_epoch = primary->epoch();
  primary.reset();

  // PROMOTE through the service runs the replicator's handler first; its
  // drain replays exactly the unconsumed suffix of the dead WAL.
  ASSERT_TRUE(follower->Promote(p_dir.path).ok());
  EXPECT_EQ(follower->role(), NodeRole::kPrimary);
  EXPECT_EQ(follower->epoch(), dead_epoch);
  EXPECT_EQ(follower->RenderStateText(), dead_state);

  // Promotion of a primary is an idempotent no-op, and the promoted node
  // serves and accepts writes.
  EXPECT_TRUE(follower->Promote("").ok());
  EXPECT_TRUE(follower->Execute(kFlightsQuery, "").ok());
  EXPECT_TRUE(follower->Ingest("singleleg(jfk, den, 250, 170).\n").ok());
}

TEST(ReplicatorTest, PromoteWithoutADeadWalJustFlipsTheRole) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  Replicator replicator(
      follower.get(), std::make_unique<LocalReplicationSource>(primary.get()));
  replicator.AttachHooks();
  ASSERT_TRUE(CatchUp(replicator).ok());
  std::string before = follower->RenderStateText();
  ASSERT_TRUE(follower->Promote("").ok());
  EXPECT_EQ(follower->role(), NodeRole::kPrimary);
  EXPECT_EQ(follower->RenderStateText(), before);
}

// ---------------------------------------------------------------------------
// The wire path: REPLICATE over a real socket through RemoteReplicationSource.

TEST(RemoteReplicationTest, ShipsSnapshotAndRecordsOverTheWire) {
  failpoint::DisarmAll();
  TempWalDir p_dir, f_dir;
  auto primary = DurableFlights(p_dir.path);
  ASSERT_TRUE(primary->Ingest("singleleg(msn, sea, 150, 80).\n").ok());

  ServerOptions options;
  options.socket_path = p_dir.path + "/cqld.sock";
  std::promise<ServerEndpoints> promise;
  std::future<ServerEndpoints> future = promise.get_future();
  options.on_ready = [&promise](const ServerEndpoints& endpoints) {
    promise.set_value(endpoints);
  };
  Status serve_status = Status::OK();
  std::thread server([&] { serve_status = ServeLoop(*primary, options); });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
  const std::string socket_path = future.get().socket_path;

  auto follower = DurableFlights(f_dir.path, /*empty_edb=*/true);
  auto source = std::make_unique<RemoteReplicationSource>(
      nullptr,
      [socket_path]() { return LineClient::ConnectUnix(socket_path, 2000); },
      /*io_timeout_ms=*/5000);
  Replicator replicator(follower.get(), std::move(source));
  replicator.AttachHooks();

  // Bootstrap (snapshot header + D/S lines) then a live tail (R lines),
  // every record CRC-verified client-side before it is applied.
  ASSERT_TRUE(CatchUp(replicator).ok());
  EXPECT_EQ(replicator.Progress().snapshots_installed, 1);
  EXPECT_EQ(follower->RenderStateText(), primary->RenderStateText());

  ASSERT_TRUE(primary->IngestTtl("singleleg(den, jfk, 240, 160).\n", 100).ok());
  ASSERT_TRUE(primary->AdvanceClock(150).ok());
  ASSERT_TRUE(CatchUp(replicator).ok());
  EXPECT_EQ(follower->RenderStateText(), primary->RenderStateText());

  auto shutdown = LineClient::ConnectUnix(socket_path, 2000);
  ASSERT_TRUE(shutdown.ok()) << shutdown.status().ToString();
  LineClient::Response bye;
  EXPECT_TRUE((*shutdown)->Exchange("SHUTDOWN", 5000, &bye).ok());
  server.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
}

// ---------------------------------------------------------------------------
// LineClient deadlines: timeouts are typed client-side errors.

TEST(LineClientTest, ConnectToAMissingSocketIsUnavailable) {
  auto conn = LineClient::ConnectUnix("/nonexistent/cqld.sock", 500);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST(LineClientTest, SilentServerTimesOutWithDeadlineExceeded) {
  TempWalDir scratch;
  ASSERT_FALSE(scratch.path.empty());
  const std::string path = scratch.path + "/cqld.sock";
  // A listener that accepts but never answers: the read deadline, not the
  // transport, must end the exchange — typed DEADLINE_EXCEEDED, distinct
  // from both a server ERR response and a lost connection.
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);

  auto conn = LineClient::ConnectUnix(path, 1000);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  LineClient::Response response;
  Status timed_out = (*conn)->Exchange("STATS", 200, &response);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), StatusCode::kDeadlineExceeded);
  ::close(listener);
}

}  // namespace
}  // namespace cqlopt
