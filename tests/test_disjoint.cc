#include "constraint/disjoint.h"

#include <gtest/gtest.h>

#include "constraint/implication.h"

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

bool PairwiseDisjoint(const ConstraintSet& s) {
  const auto& ds = s.disjuncts();
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = i + 1; j < ds.size(); ++j) {
      Conjunction both = ds[i];
      if (!both.AddConjunction(ds[j]).ok()) continue;
      if (both.IsSatisfiable()) return false;
    }
  }
  return true;
}

TEST(DisjointTest, AlreadyDisjointUnchangedSemantics) {
  ConstraintSet s = ConstraintSet::Of(Conj({Atom({{1, 1}}, -3, CmpOp::kLe)}));
  s.AddDisjunct(Conj({Atom({{1, -1}}, 7, CmpOp::kLe)}));  // x >= 7
  auto out = MakeDisjoint(s);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(PairwiseDisjoint(*out));
  EXPECT_TRUE(out->EquivalentTo(s));
}

TEST(DisjointTest, FlightQrpSplitsIntoThreePieces) {
  // Section 4.6: the two overlapping disjuncts of flight's minimum QRP
  // constraint split into three non-overlapping pieces:
  //   (0<T<=240 & C>0 & C<=150) v (0<T<=240 & C>150) v (T>240 & C>0 & C<=150)
  // modulo which side keeps the overlap.
  Conjunction arm1 = Conj({Atom({{1, -1}}, 0, CmpOp::kLt),
                           Atom({{1, 1}}, -240, CmpOp::kLe),
                           Atom({{2, -1}}, 0, CmpOp::kLt)});
  Conjunction arm2 = Conj({Atom({{1, -1}}, 0, CmpOp::kLt),
                           Atom({{2, -1}}, 0, CmpOp::kLt),
                           Atom({{2, 1}}, -150, CmpOp::kLe)});
  ConstraintSet s = ConstraintSet::Of(arm1);
  // AddDisjunct would keep both (neither implies the other).
  ASSERT_TRUE(s.AddDisjunct(arm2));
  auto out = MakeDisjoint(s);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(PairwiseDisjoint(*out));
  EXPECT_TRUE(out->EquivalentTo(s));
  EXPECT_GE(out->disjuncts().size(), 2u);
}

TEST(DisjointTest, NestedIntervalsSubtract) {
  // (x <= 10) v (x <= 5): second fully covered; result equivalent to x<=10.
  ConstraintSet s;
  // Build by hand to force both disjuncts in.
  Conjunction big = Conj({Atom({{1, 1}}, -10, CmpOp::kLe)});
  Conjunction small = Conj({Atom({{1, 1}}, -5, CmpOp::kLe)});
  ConstraintSet manual = ConstraintSet::Of(small);
  manual.AddDisjunct(big);  // replaces small (implied)
  auto out = MakeDisjoint(manual);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(PairwiseDisjoint(*out));
  EXPECT_TRUE(out->EquivalentTo(ConstraintSet::Of(big)));
}

TEST(DisjointTest, EqualityDisjunctSplitsComplementInTwo) {
  // (x = 5) v (0 <= x <= 10): pieces stay disjoint and cover the union.
  ConstraintSet s = ConstraintSet::Of(Conj({Atom({{1, 1}}, -5, CmpOp::kEq)}));
  s.AddDisjunct(Conj({Atom({{1, -1}}, 0, CmpOp::kLe),
                      Atom({{1, 1}}, -10, CmpOp::kLe)}));
  auto out = MakeDisjoint(s);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(PairwiseDisjoint(*out));
  EXPECT_TRUE(out->EquivalentTo(s));
}

TEST(DisjointTest, SymbolicDisjunctsUnimplemented) {
  Conjunction sym;
  ASSERT_TRUE(sym.BindSymbol(1, 3).ok());
  ConstraintSet s = ConstraintSet::Of(sym);
  auto out = MakeDisjoint(s);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
}

TEST(DisjointTest, FalseStaysFalse) {
  auto out = MakeDisjoint(ConstraintSet::False());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->is_false());
}

}  // namespace
}  // namespace cqlopt
