// Tests for per-query resource governance (seminaive.h EvalOptions):
// wall-clock deadlines, cooperative cancellation, the derived-fact budget,
// and how governed aborts surface — typed Status codes, position-annotated
// messages, partial stats via abort_stats, and a query service that keeps
// serving after a governed (or injected) evaluation failure.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/seminaive.h"
#include "service/query_service.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

/// The unbounded counter — Table 1's divergence in miniature. Evaluation
/// never reaches a fixpoint, so only a governance limit (or the iteration
/// cap) can stop it.
Program Counter() { return ParseOrDie("c(0).\nc(X + 1) :- c(X).\n"); }

EvalOptions Governed(EvalStrategy strategy = EvalStrategy::kStratified) {
  EvalOptions options;
  options.strategy = strategy;
  options.max_iterations = 1000000;
  return options;
}

TEST(GovernanceTest, FactBudgetAbortsWithResourceExhausted) {
  Program p = Counter();
  EvalOptions options = Governed();
  options.max_derived_facts = 10;
  EvalStats partial;
  options.abort_stats = &partial;
  auto result = Evaluate(p, Database(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("derived-fact budget of 10"),
            std::string::npos)
      << result.status().message();
  // The abort is position-annotated and the partial stats surfaced.
  EXPECT_NE(result.status().message().find("global iteration"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("facts stored"),
            std::string::npos);
  EXPECT_TRUE(partial.aborted);
  EXPECT_FALSE(partial.abort_point.empty());
  EXPECT_GT(partial.inserted, 10);
}

TEST(GovernanceTest, FactBudgetAbortIsThreadCountInvariant) {
  // The budget is only checked at the serial iteration boundary, so the
  // abort point — and the partial database the service would discard — is
  // byte-identical at any thread count. Re-proven with the interval
  // prepass on and off: the fast decision tier changes which machinery
  // answers constraint queries, never how many facts an iteration stores,
  // so the abort point is invariant across that dimension too.
  Program p = Counter();
  std::string first_point;
  long first_inserted = -1;
  for (bool prepass : {true, false}) {
    for (int threads : {1, 2, 8}) {
      EvalOptions options = Governed();
      options.threads = threads;
      options.prepass = prepass;
      options.max_derived_facts = 25;
      EvalStats partial;
      options.abort_stats = &partial;
      auto result = Evaluate(p, Database(), options);
      ASSERT_FALSE(result.ok())
          << "threads=" << threads << " prepass=" << prepass;
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      if (first_inserted < 0) {
        first_point = partial.abort_point;
        first_inserted = partial.inserted;
      } else {
        EXPECT_EQ(partial.abort_point, first_point)
            << "threads=" << threads << " prepass=" << prepass;
        EXPECT_EQ(partial.inserted, first_inserted)
            << "threads=" << threads << " prepass=" << prepass;
      }
    }
  }
}

TEST(GovernanceTest, DeadlineAbortsADivergingEvaluation) {
  Program p = Counter();
  for (int threads : {1, 8}) {
    EvalOptions options = Governed();
    options.threads = threads;
    options.deadline_ms = 5;
    auto result = Evaluate(p, Database(), options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(result.status().message().find("wall-clock deadline of 5ms"),
              std::string::npos)
        << result.status().message();
  }
}

TEST(GovernanceTest, PreCancelledTokenAbortsImmediately) {
  Program p = Counter();
  EvalOptions options = Governed();
  options.cancel = CancelToken::Cancellable();
  options.cancel.RequestCancel();
  auto result = Evaluate(p, Database(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(GovernanceTest, CancelFromAnotherThreadAborts) {
  Program p = Counter();
  for (int threads : {1, 8}) {
    EvalOptions options = Governed();
    options.threads = threads;
    options.cancel = CancelToken::Cancellable();
    CancelToken token = options.cancel;
    std::thread killer([token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      token.RequestCancel();
    });
    auto result = Evaluate(p, Database(), options);
    killer.join();
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST(GovernanceTest, LimitsOffMeansUnlimited) {
  // All limits default to off: a converging program is untouched, and its
  // stats carry no abort marker.
  Program p = ParseOrDie("t(X, Y) :- e(X, Y).\n");
  Database edb;
  ASSERT_TRUE(edb.AddGroundFact(p.symbols.get(), "e",
                                {Database::Value::Number(Rational(1)),
                                 Database::Value::Number(Rational(2))})
                  .ok());
  auto result = Evaluate(p, edb, Governed());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->stats.reached_fixpoint);
  EXPECT_FALSE(result->stats.aborted);
  EXPECT_TRUE(result->stats.abort_point.empty());
}

TEST(GovernanceTest, NegativeLimitsAreRejected) {
  Program p = Counter();
  EvalOptions bad_deadline = Governed();
  bad_deadline.deadline_ms = -1;
  EXPECT_EQ(Evaluate(p, Database(), bad_deadline).status().code(),
            StatusCode::kInvalidArgument);
  EvalOptions bad_budget = Governed();
  bad_budget.max_derived_facts = -5;
  EXPECT_EQ(Evaluate(p, Database(), bad_budget).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GovernanceTest, ResumeRefusalPinpointsTheAbort) {
  // Resuming an aborted base must fail with the abort position, not a bare
  // precondition — the message is the operator's breadcrumb.
  Program p = Counter();
  EvalOptions options = Governed();
  options.max_derived_facts = 10;
  EvalStats partial;
  options.abort_stats = &partial;
  ASSERT_FALSE(Evaluate(p, Database(), options).ok());

  // Rebuild a base EvalResult carrying the aborted stats, as a caller
  // holding the abort_stats of a failed materialization would see it.
  EvalResult base;
  base.stats = partial;
  auto resumed = ResumeEvaluate(p, std::move(base), {}, Governed());
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(resumed.status().message().find("was aborted at"),
            std::string::npos)
      << resumed.status().message();
  EXPECT_NE(resumed.status().message().find("re-evaluate from scratch"),
            std::string::npos);
}

TEST(GovernanceTest, ResumeRefusalOnCappedBaseNamesTheIteration) {
  Program p = Counter();
  EvalOptions capped = Governed();
  capped.max_iterations = 3;
  auto base = Evaluate(p, Database(), capped);
  ASSERT_TRUE(base.ok());
  ASSERT_FALSE(base->stats.reached_fixpoint);
  auto resumed = ResumeEvaluate(p, std::move(*base), {}, Governed());
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find(
                "hit its iteration cap at global iteration 3"),
            std::string::npos)
      << resumed.status().message();
  EXPECT_NE(resumed.status().message().find("facts stored"),
            std::string::npos);
}

TEST(GovernanceTest, ServiceMapsBudgetAbortToTypedErrorAndKeepsServing) {
  ServiceOptions options;
  options.eval.max_derived_facts = 2;
  options.eval.max_iterations = 1000000;
  auto service = QueryService::FromText("c(0).\nc(X + 1) :- c(X).\n", "",
                                        options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto denied = (*service)->Execute("?- c(X).", "");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*service)->Stats().governed_aborts, 1);

  // The abort poisoned nothing: ingest still commits, a second attempt
  // fails identically (deterministic budget), and the error stays typed.
  ASSERT_TRUE((*service)->Ingest("seed(1).\n").ok());
  auto again = (*service)->Execute("?- c(X).", "");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*service)->Stats().governed_aborts, 2);
}

TEST(GovernanceTest, ServiceRecoversAfterInjectedAllocFailure) {
  auto service = QueryService::FromText(
      "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, Z), t(Z, Y).\n",
      "e(1, 2).\ne(2, 3).\n", {});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  failpoint::Arm(failpoint::kEvalRuleAlloc);
  auto denied = (*service)->Execute("?- t(1, Y).", "");
  failpoint::DisarmAll();
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(denied.status().message().find("injected allocation failure"),
            std::string::npos)
      << denied.status().message();

  // The same query succeeds once the fault clears — the failed evaluation
  // left no half-materialized entry behind.
  auto served = (*service)->Execute("?- t(1, Y).", "");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->answers.size(), 2u);
  EXPECT_EQ((*service)->Stats().governed_aborts, 1);
}

}  // namespace
}  // namespace cqlopt
