#include "constraint/linear_expr.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

TEST(LinearExprTest, VarAndConstantConstruction) {
  LinearExpr x = LinearExpr::Var(1);
  EXPECT_EQ(x.CoefficientOf(1), Rational(1));
  EXPECT_TRUE(x.constant().is_zero());
  LinearExpr c = LinearExpr::Constant(Rational(5));
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.constant(), Rational(5));
}

TEST(LinearExprTest, AddCancelsToZeroCoefficient) {
  LinearExpr e = LinearExpr::Var(1);
  e.Add(1, Rational(-1));
  EXPECT_TRUE(e.is_constant());
  EXPECT_TRUE(e.coefficients().empty());
}

TEST(LinearExprTest, AdditionMergesTerms) {
  LinearExpr a = LinearExpr::Var(1) + LinearExpr::Var(2);
  LinearExpr b = LinearExpr::Var(2);
  LinearExpr sum = a + b;
  EXPECT_EQ(sum.CoefficientOf(1), Rational(1));
  EXPECT_EQ(sum.CoefficientOf(2), Rational(2));
}

TEST(LinearExprTest, SubtractionAndNegation) {
  LinearExpr a = LinearExpr::Var(1) - LinearExpr::Var(2);
  LinearExpr n = -a;
  EXPECT_EQ(n.CoefficientOf(1), Rational(-1));
  EXPECT_EQ(n.CoefficientOf(2), Rational(1));
  EXPECT_EQ(a - a, LinearExpr());
}

TEST(LinearExprTest, ScaleByZeroClears) {
  LinearExpr a = LinearExpr::Var(1) + LinearExpr::Constant(Rational(3));
  LinearExpr z = a.Scale(Rational(0));
  EXPECT_TRUE(z.is_constant());
  EXPECT_TRUE(z.constant().is_zero());
}

TEST(LinearExprTest, SubstituteReplacesVariable) {
  // x + 2y, substitute y := 3x + 1 -> 7x + 2.
  LinearExpr e = LinearExpr::Var(1);
  e.Add(2, Rational(2));
  LinearExpr repl = LinearExpr::Var(1).Scale(Rational(3));
  repl.AddConstant(Rational(1));
  LinearExpr out = e.Substitute(2, repl);
  EXPECT_EQ(out.CoefficientOf(1), Rational(7));
  EXPECT_EQ(out.CoefficientOf(2), Rational(0));
  EXPECT_EQ(out.constant(), Rational(2));
}

TEST(LinearExprTest, SubstituteAbsentVarIsNoop) {
  LinearExpr e = LinearExpr::Var(1);
  EXPECT_EQ(e.Substitute(9, LinearExpr::Constant(Rational(5))), e);
}

TEST(LinearExprTest, RenameMergesCollidingTargets) {
  // x + y renamed {x->z, y->z} = 2z.
  LinearExpr e = LinearExpr::Var(1) + LinearExpr::Var(2);
  LinearExpr out = e.Rename({{1, 3}, {2, 3}});
  EXPECT_EQ(out.CoefficientOf(3), Rational(2));
  EXPECT_EQ(out.Vars(), std::vector<VarId>({3}));
}

TEST(LinearExprTest, VarsSorted) {
  LinearExpr e = LinearExpr::Var(5) + LinearExpr::Var(2) + LinearExpr::Var(9);
  EXPECT_EQ(e.Vars(), std::vector<VarId>({2, 5, 9}));
}

TEST(LinearExprTest, ToStringReadable) {
  LinearExpr e = LinearExpr::Var(1).Scale(Rational(2)) - LinearExpr::Var(3);
  e.AddConstant(Rational(5));
  EXPECT_EQ(e.ToString(), "2*$1 - $3 + 5");
  EXPECT_EQ(LinearExpr().ToString(), "0");
}

}  // namespace
}  // namespace cqlopt
