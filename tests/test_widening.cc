#include "transform/widening.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "constraint/implication.h"
#include "core/equivalence.h"
#include "eval/seminaive.h"
#include "transform/magic.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

TEST(HullTest, EmptySetIsFalse) {
  EXPECT_TRUE(HullOf(ConstraintSet::False()).known_unsat());
}

TEST(HullTest, SingleDisjunctIsItself) {
  Conjunction d = Conj({Atom({{1, 1}}, -4, CmpOp::kLe)});
  Conjunction hull = HullOf(ConstraintSet::Of(d));
  EXPECT_TRUE(Equivalent(hull, d));
}

TEST(HullTest, PointFactsHullToTrend) {
  // {$1 = 1} ∨ {$1 = 2} ∨ {$1 = 5} hulls to 1 <= $1 <= 5.
  ConstraintSet set = ConstraintSet::Of(Conj({Atom({{1, 1}}, -1, CmpOp::kEq)}));
  set.AddDisjunct(Conj({Atom({{1, 1}}, -2, CmpOp::kEq)}));
  set.AddDisjunct(Conj({Atom({{1, 1}}, -5, CmpOp::kEq)}));
  Conjunction hull = HullOf(set);
  Conjunction expected = Conj({Atom({{1, -1}}, 1, CmpOp::kLe),
                               Atom({{1, 1}}, -5, CmpOp::kLe)});
  EXPECT_TRUE(Equivalent(hull, expected)) << hull.ToString();
}

TEST(HullTest, SharedSymbolSurvives) {
  Conjunction a;
  ASSERT_TRUE(a.BindSymbol(1, 7).ok());
  ASSERT_TRUE(a.AddLinear(Atom({{2, 1}}, -1, CmpOp::kEq)).ok());
  Conjunction b;
  ASSERT_TRUE(b.BindSymbol(1, 7).ok());
  ASSERT_TRUE(b.AddLinear(Atom({{2, 1}}, -2, CmpOp::kEq)).ok());
  ConstraintSet set = ConstraintSet::Of(a);
  set.AddDisjunct(b);
  Conjunction hull = HullOf(set);
  EXPECT_EQ(hull.GetSymbol(1), std::optional<SymbolId>(7));
}

TEST(WideningTest, ExactConvergenceDetected) {
  // The flights program's predicate constraints converge exactly; widening
  // must report exact convergence with the minimum constraints.
  Program p = ParseOrDie(
      "r3: flight(T, C) :- singleleg(T, C), C > 0, T > 0.\n"
      "r4: flight(T, C) :- flight(T1, C1), flight(T2, C2), "
      "T = T1 + T2 + 30, C = C1 + C2.\n");
  auto result = GenPredicateConstraintsWithWidening(p, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_TRUE(result->exact);
  PredId flight = p.symbols->LookupPredicate("flight");
  ConstraintSet expected = ConstraintSet::Of(
      Conj({Atom({{1, -1}}, 0, CmpOp::kLt), Atom({{2, -1}}, 0, CmpOp::kLt)}));
  EXPECT_TRUE(result->constraints.at(flight).EquivalentTo(expected));
}

TEST(WideningTest, FibDerivesTheTable2ConstraintAutomatically) {
  // The headline: the paper hand-picks fib: $2 >= 1 (Example 4.4) because
  // the exact fixpoint diverges. Widening derives it.
  Program p = ParseOrDie(
      "r1: fib(0, 1).\n"
      "r2: fib(1, 1).\n"
      "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n");
  auto result = GenPredicateConstraintsWithWidening(p, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_FALSE(result->exact);
  PredId fib = p.symbols->LookupPredicate("fib");
  const ConstraintSet& derived = result->constraints.at(fib);
  // Must imply the paper's $2 >= 1 (and be satisfiable).
  ConstraintSet paper =
      ConstraintSet::Of(Conj({Atom({{2, -1}}, 1, CmpOp::kLe)}));
  EXPECT_TRUE(derived.Implies(paper))
      << RenderConstraintSet(derived, *p.symbols, DollarNames());
  EXPECT_TRUE(derived.IsSatisfiable());
}

TEST(WideningTest, DerivedFibConstraintIsSound) {
  // Every fact of a bounded forward evaluation satisfies the widened
  // constraint (predicate-constraint soundness, empirically).
  Program p = ParseOrDie(
      "r1: fib(0, 1).\n"
      "r2: fib(1, 1).\n"
      "r3: fib(N, X1 + X2) :- N > 1, N <= 12, fib(N - 1, X1), "
      "fib(N - 2, X2).\n");
  auto widened = GenPredicateConstraintsWithWidening(p, {}, {});
  ASSERT_TRUE(widened.ok());
  ASSERT_TRUE(widened->converged);
  PredId fib = p.symbols->LookupPredicate("fib");
  EvalOptions eval;
  eval.max_iterations = 32;
  auto run = Evaluate(p, Database(), eval);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->stats.reached_fixpoint);
  const Relation* rel = run->db.Find(fib);
  ASSERT_NE(rel, nullptr);
  EXPECT_GE(rel->size(), 12u);
  const auto& disjuncts = widened->constraints.at(fib).disjuncts();
  for (size_t i = 0; i < rel->size(); ++i) {
    EXPECT_TRUE(ImpliesDisjunction(rel->fact(i).constraint, disjuncts))
        << rel->fact(i).ToString(*p.symbols);
  }
}

TEST(WideningTest, MakesBackwardFibTerminateEndToEnd) {
  // Full automation of Table 2: widen, propagate, magic, evaluate — the
  // evaluation terminates and finds fib(4, 5) without any hand-supplied
  // constraint.
  auto parsed = ParseProgram(
      "r1: fib(0, 1).\n"
      "r2: fib(1, 1).\n"
      "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
      "?- fib(N, 5).\n");
  ASSERT_TRUE(parsed.ok());
  Program& program = parsed->program;
  auto widened = GenPredicateConstraintsWithWidening(program, {}, {});
  ASSERT_TRUE(widened.ok());
  ASSERT_TRUE(widened->converged);
  auto propagated =
      PropagateGivenConstraints(program, widened->constraints);
  ASSERT_TRUE(propagated.ok());
  MagicOptions magic_options;
  magic_options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(*propagated, parsed->queries[0], magic_options);
  ASSERT_TRUE(magic.ok());
  EvalOptions eval;
  eval.max_iterations = 64;
  auto run = Evaluate(magic->program, Database(), eval);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.reached_fixpoint);
  auto answers = QueryAnswers(*run, magic->query);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0].ToString(*program.symbols), "fib(4, 5)");
}

TEST(WideningTest, EmptyModelStaysFalse) {
  Program p = ParseOrDie("loop(X) :- loop(X).\n");
  auto result = GenPredicateConstraintsWithWidening(p, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_TRUE(
      result->constraints.at(p.symbols->LookupPredicate("loop")).is_false());
}

}  // namespace
}  // namespace cqlopt
