// Tests for the query-serving subsystem (src/service): the prepared-program
// cache, snapshot epochs, incremental ingestion, and the cqld line
// protocol. The core guarantee is differential: resuming a materialized
// fixpoint with ingested EDB deltas (ResumeEvaluate) must agree with a
// from-scratch kStratified evaluation of the grown database — across the
// program corpus, all three subsumption modes, and 1/2/8 worker threads.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/equivalence.h"
#include "eval/loader.h"
#include "eval/seminaive.h"
#include "service/protocol.h"
#include "service/server.h"
#include "testing/generator.h"
#include "testing/properties.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(CQLOPT_PROGRAMS_DIR) + "/" + name;
}

std::vector<Fact> AllFacts(const Database& db) {
  std::vector<Fact> out;
  for (const auto& [pred, rel] : db.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) {
      out.push_back(rel.fact(i));
    }
  }
  return out;
}

/// Corpus-style EDB (test_stratified.cc's generator): `count` numeric
/// tuples per database predicate.
Database SyntheticEdb(const Program& program, uint64_t seed, int count) {
  Database db;
  for (PredId pred : program.DatabasePredicates()) {
    const std::string& name = program.symbols->PredicateName(pred);
    int arity = program.Arity(pred);
    std::mt19937_64 rng(seed + static_cast<uint64_t>(pred));
    for (int i = 0; i < count; ++i) {
      std::vector<Database::Value> values;
      for (int a = 0; a < arity; ++a) {
        values.push_back(Database::Value::Number(
            Rational(static_cast<int64_t>(rng() % 30))));
      }
      (void)db.AddGroundFact(program.symbols.get(), name, values);
    }
  }
  return db;
}

std::set<std::string> KeysOf(const Database& db, PredId pred) {
  std::set<std::string> out;
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return out;
  for (size_t i = 0; i < rel->size(); ++i) {
    out.insert(rel->fact(i).Key());
  }
  return out;
}

std::vector<Fact> FactsOf(const Database& db, PredId pred) {
  std::vector<Fact> out;
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return out;
  for (size_t i = 0; i < rel->size(); ++i) {
    out.push_back(rel->fact(i));
  }
  return out;
}

/// Structural key equality per predicate, with a semantic SameAnswers
/// fallback: subsumption may keep different but equivalent representatives
/// depending on the order facts arrived (resume order differs from
/// from-scratch order).
::testing::AssertionResult DatabasesAgree(const Database& a,
                                          const Database& b,
                                          const SymbolTable& symbols,
                                          bool exact) {
  std::set<PredId> preds;
  for (const auto& [pred, rel] : a.relations()) preds.insert(pred);
  for (const auto& [pred, rel] : b.relations()) preds.insert(pred);
  for (PredId pred : preds) {
    if (KeysOf(a, pred) == KeysOf(b, pred)) continue;
    if (exact) {
      return ::testing::AssertionFailure()
             << "key sets differ on " << symbols.PredicateName(pred);
    }
    std::vector<Fact> fa = FactsOf(a, pred);
    std::vector<Fact> fb = FactsOf(b, pred);
    if (fa.empty() != fb.empty() || !SameAnswers(fa, fb)) {
      return ::testing::AssertionFailure()
             << "databases differ on " << symbols.PredicateName(pred) << " ("
             << fa.size() << " vs " << fb.size() << " facts)";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Differential: resume-after-ingest == from-scratch stratified evaluation.

struct ModeParam {
  const char* name;
  SubsumptionMode mode;
};

using ResumeParam = std::tuple<const char*, ModeParam, int>;

class ResumeDifferentialTest : public ::testing::TestWithParam<ResumeParam> {};

TEST_P(ResumeDifferentialTest, ResumedEqualsFromScratch) {
  const auto& [program_name, mode, threads] = GetParam();
  auto parsed = ParseProgram(ReadFile(ProgramPath(program_name)));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& program = parsed->program;

  Database base;
  std::vector<Fact> delta;
  if (std::string(program_name) == "flights.cql") {
    auto loaded = LoadDatabaseText(ReadFile(ProgramPath("flights_edb.cql")),
                                   program.symbols, &base);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    // New legs keep the network acyclic (the raw program composes flights
    // unboundedly around a cycle; topological order msn, den, ord, jfk,
    // sea is preserved).
    Database extra;
    auto extra_loaded = LoadDatabaseText(
        "singleleg(msn, jfk, 210, 140).\n"
        "singleleg(den, jfk, 90, 55).\n"
        "singleleg(den, ord, 45, 35).\n",
        program.symbols, &extra);
    ASSERT_TRUE(extra_loaded.ok()) << extra_loaded.status().ToString();
    delta = AllFacts(extra);
  } else {
    base = SyntheticEdb(program, 1234, 12);
    delta = AllFacts(SyntheticEdb(program, 7777, 3));
  }

  EvalOptions options;
  options.strategy = EvalStrategy::kStratified;
  options.subsumption = mode.mode;
  options.threads = threads;
  options.max_iterations = std::string(program_name) == "fib.cql" ? 14 : 48;

  auto base_run = Evaluate(program, base, options);
  ASSERT_TRUE(base_run.ok()) << base_run.status().ToString();

  if (!base_run->stats.reached_fixpoint) {
    // Divergent program (fib.cql): resuming a capped base would silently
    // drop its unexplored frontier, so it must be rejected.
    auto resumed = ResumeEvaluate(program, std::move(*base_run), delta,
                                  options);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
    return;
  }

  auto resumed = ResumeEvaluate(program, std::move(*base_run), delta,
                                options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  Database full = base;
  full.AddFacts(delta);
  auto scratch = Evaluate(program, full, options);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();

  EXPECT_EQ(resumed->stats.reached_fixpoint, scratch->stats.reached_fixpoint);
  // Under kNone nothing is ever pruned, so the runs must agree exactly;
  // with subsumption on, equivalence is semantic.
  EXPECT_TRUE(DatabasesAgree(resumed->db, scratch->db, *program.symbols,
                             /*exact=*/mode.mode == SubsumptionMode::kNone));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ResumeDifferentialTest,
    ::testing::Combine(
        ::testing::Values("flights.cql", "fib.cql", "example41.cql",
                          "example42.cql", "example61.cql", "example71.cql",
                          "example72.cql"),
        ::testing::Values(ModeParam{"none", SubsumptionMode::kNone},
                          ModeParam{"single_fact",
                                    SubsumptionMode::kSingleFact},
                          ModeParam{"set_implication",
                                    SubsumptionMode::kSetImplication}),
        ::testing::Values(1, 2, 8)),
    [](const ::testing::TestParamInfo<ResumeParam>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + "_" + std::get<1>(info.param).name + "_t" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Differential: retract_vs_scratch replayed across the full worker x
// subsumption x prepass matrix. The property itself (testing/properties.cc)
// pins RetractEvaluate to byte-identity with a scratch run on the surviving
// EDB and checks RETRACT over the protocol; here it must hold at every
// point of the configuration lattice, not just the fuzzer's defaults.

using RetractMatrixParam = std::tuple<ModeParam, int, bool>;

class RetractDifferentialTest
    : public ::testing::TestWithParam<RetractMatrixParam> {};

TEST_P(RetractDifferentialTest, RetractVsScratchHoldsAcrossSeeds) {
  const auto& [mode, threads, prepass] = GetParam();
  const cqlopt::testing::PropertyInfo* property =
      cqlopt::testing::FindProperty("retract_vs_scratch");
  ASSERT_NE(property, nullptr);
  cqlopt::testing::FuzzOptions fo;
  fo.subsumption = mode.mode;
  fo.eval_threads = threads;
  fo.prepass = prepass;
  int checked = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    cqlopt::testing::FuzzCase c =
        cqlopt::testing::GenerateCase(seed * 7919, {});
    cqlopt::testing::PropertyOutcome outcome = property->fn(c, fo);
    EXPECT_TRUE(outcome.ok)
        << "seed " << seed * 7919 << ": " << outcome.message;
    if (!outcome.skipped) ++checked;
  }
  // The sweep must actually exercise the property, not skip its way green.
  EXPECT_GT(checked, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RetractDifferentialTest,
    ::testing::Combine(
        ::testing::Values(ModeParam{"none", SubsumptionMode::kNone},
                          ModeParam{"single_fact",
                                    SubsumptionMode::kSingleFact},
                          ModeParam{"set_implication",
                                    SubsumptionMode::kSetImplication}),
        ::testing::Values(1, 2, 8), ::testing::Bool()),
    [](const ::testing::TestParamInfo<RetractMatrixParam>& info) {
      return std::string(std::get<0>(info.param).name) + "_t" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_prepass" : "_noprepass");
    });

TEST(ResumeEvaluateTest, EmptyDeltaReturnsBaseUnchanged) {
  auto parsed = ParseProgram("t(X, Y) :- e(X, Y).\n");
  ASSERT_TRUE(parsed.ok());
  Database db;
  ASSERT_TRUE(
      LoadDatabaseText("e(1, 2).\ne(2, 3).\n", parsed->program.symbols, &db)
          .ok());
  auto base = Evaluate(parsed->program, db, EvalOptions{});
  ASSERT_TRUE(base.ok());
  size_t facts = base->db.TotalFacts();
  int iterations = base->stats.iterations;
  auto resumed =
      ResumeEvaluate(parsed->program, std::move(*base), {}, EvalOptions{});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->db.TotalFacts(), facts);
  EXPECT_EQ(resumed->stats.iterations, iterations);
  EXPECT_TRUE(resumed->stats.reached_fixpoint);
}

// ---------------------------------------------------------------------------
// QueryService: serving paths, prepared cache, epochs.

const char kFlightsQuery[] = "?- cheaporshort(msn, sea, Time, Cost).";

std::unique_ptr<QueryService> FlightsService(ServiceOptions options = {}) {
  auto service =
      QueryService::FromText(ReadFile(ProgramPath("flights.cql")),
                             ReadFile(ProgramPath("flights_edb.cql")),
                             options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

TEST(QueryServiceTest, ColdThenEpochHitThenResumed) {
  auto service = FlightsService();

  auto first = service->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->path, ServePath::kCold);
  EXPECT_FALSE(first->prepared_hit);
  EXPECT_EQ(first->epoch, 0);
  EXPECT_TRUE(first->reached_fixpoint);
  EXPECT_FALSE(first->answers.empty());

  auto second = service->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->path, ServePath::kEpochHit);
  EXPECT_TRUE(second->prepared_hit);
  EXPECT_EQ(second->iterations_run, 0);
  EXPECT_EQ(second->answers, first->answers);

  auto ingest = service->Ingest("singleleg(msn, sea, 150, 80).\n");
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  EXPECT_EQ(ingest->accepted, 1);
  EXPECT_EQ(ingest->epoch, 1);

  auto third = service->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->path, ServePath::kResumed);
  EXPECT_EQ(third->epoch, 1);
  // The new direct leg is cheap and short: it must show up as an answer.
  EXPECT_GT(third->answers.size(), first->answers.size());

  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.cold_evals, 1);
  EXPECT_EQ(stats.epoch_hits, 1);
  EXPECT_EQ(stats.resumes, 1);
  EXPECT_EQ(stats.epoch, 1);
}

TEST(QueryServiceTest, ResumedMatchesFreshServiceAfterIngest) {
  const std::string batch =
      "singleleg(sea, msn, 210, 140).\nsingleleg(den, jfk, 240, 160).\n";
  auto incremental = FlightsService();
  ASSERT_TRUE(incremental->Execute(kFlightsQuery, "pred,qrp,mg").ok());
  ASSERT_TRUE(incremental->Ingest(batch).ok());
  auto resumed = incremental->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->path, ServePath::kResumed);

  auto fresh = QueryService::FromText(
      ReadFile(ProgramPath("flights.cql")),
      ReadFile(ProgramPath("flights_edb.cql")) + batch, {});
  ASSERT_TRUE(fresh.ok());
  auto scratch = (*fresh)->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(scratch->path, ServePath::kCold);
  EXPECT_EQ(resumed->answers, scratch->answers);
}

TEST(QueryServiceTest, FingerprintIgnoresVariableNames) {
  auto service = FlightsService();
  auto a = service->Prepare("?- cheaporshort(msn, sea, T, C).", "pred,qrp");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  bool cached = false;
  auto b = service->Prepare("?- cheaporshort(msn, sea, Time, Cost).",
                            "pred,qrp", &cached);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(cached);

  auto other_steps = service->Prepare("?- cheaporshort(msn, sea, T, C).",
                                      "pred,qrp,mg", &cached);
  ASSERT_TRUE(other_steps.ok());
  EXPECT_NE(*a, *other_steps);
  EXPECT_FALSE(cached);

  auto other_query = service->Prepare("?- cheaporshort(msn, den, T, C).",
                                      "pred,qrp", &cached);
  ASSERT_TRUE(other_query.ok());
  EXPECT_NE(*a, *other_query);
  EXPECT_FALSE(cached);
}

TEST(QueryServiceTest, PreparedCacheEvictsAtCapacity) {
  ServiceOptions options;
  options.prepared_capacity = 1;
  auto service = FlightsService(options);
  ASSERT_TRUE(service->Prepare(kFlightsQuery, "pred,qrp").ok());
  ASSERT_TRUE(service->Prepare(kFlightsQuery, "pred,qrp,mg").ok());
  EXPECT_EQ(service->Stats().prepared_entries, 1u);
  // The survivor is the most recently used; re-preparing it hits.
  bool cached = false;
  ASSERT_TRUE(service->Prepare(kFlightsQuery, "pred,qrp,mg", &cached).ok());
  EXPECT_TRUE(cached);
}

TEST(QueryServiceTest, DuplicateIngestBurnsNoEpoch) {
  auto service = FlightsService();
  // Exactly the first row of flights_edb.cql.
  auto outcome = service->Ingest("singleleg(msn, ord, 50, 80).\n");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->accepted, 0);
  EXPECT_EQ(outcome->duplicates, 1);
  EXPECT_EQ(outcome->epoch, 0);
  EXPECT_EQ(service->epoch(), 0);
}

TEST(QueryServiceTest, IngestErrorsArePositional) {
  auto service = FlightsService();
  auto outcome = service->Ingest("singleleg(msn, ord, 55, 75).\nbad(X) :- q(X).\n");
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("line 2"), std::string::npos)
      << outcome.status().message();
  EXPECT_EQ(service->epoch(), 0);  // nothing committed
}

TEST(PreparedCacheTest, CollisionDegradesToMiss) {
  PreparedCache cache(4);
  auto entry = std::make_shared<PreparedEntry>();
  entry->fingerprint = 42;
  entry->canonical = "alpha";
  cache.Insert(entry);
  EXPECT_EQ(cache.Find(42, "alpha"), entry);
  // Same fingerprint, different canonical text: must not serve `alpha`.
  EXPECT_EQ(cache.Find(42, "beta"), nullptr);
}

// ---------------------------------------------------------------------------
// Epoch isolation: a reader never observes a half-ingested batch.

TEST(QueryServiceTest, ReadersSeeWholeBatchesOnly) {
  // path == edge, so the answer count equals the edge count: epoch k holds
  // exactly 5 * (k + 1) edges, and any other count means a reader saw a
  // torn batch.
  constexpr int kBatch = 5;
  constexpr int kBatches = 8;
  std::string edb;
  for (int i = 0; i < kBatch; ++i) {
    edb += "edge(" + std::to_string(i) + ", " + std::to_string(i + 100) +
           ").\n";
  }
  auto built =
      QueryService::FromText("path(X, Y) :- edge(X, Y).\n", edb, {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  QueryService& service = **built;

  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int b = 1; b <= kBatches; ++b) {
      std::string batch;
      for (int i = 0; i < kBatch; ++i) {
        int id = b * 1000 + i;
        batch += "edge(" + std::to_string(id) + ", " +
                 std::to_string(id + 100) + ").\n";
      }
      if (!service.Ingest(batch).ok()) {
        failed.store(true);
        return;
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      int64_t seen = -1;
      while (seen < kBatches && !failed.load()) {
        auto outcome = service.Execute("?- path(X, Y).", "");
        if (!outcome.ok()) {
          ADD_FAILURE() << outcome.status().ToString();
          failed.store(true);
          return;
        }
        EXPECT_EQ(outcome->answers.size(),
                  static_cast<size_t>(kBatch) * (outcome->epoch + 1))
            << "torn read at epoch " << outcome->epoch;
        seen = outcome->epoch;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  auto final_outcome = service.Execute("?- path(X, Y).", "");
  ASSERT_TRUE(final_outcome.ok());
  EXPECT_EQ(final_outcome->epoch, kBatches);
  EXPECT_EQ(final_outcome->answers.size(),
            static_cast<size_t>(kBatch) * (kBatches + 1));
}

// ---------------------------------------------------------------------------
// Line protocol.

TEST(ProtocolTest, QueryResponseIsFramed) {
  auto service = FlightsService();
  std::vector<std::string> out;
  EXPECT_EQ(HandleLine(*service, "QUERY pred,qrp,mg " + std::string(kFlightsQuery),
                       &out),
            ProtocolAction::kContinue);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.front().rfind("OK path=cold epoch=0 answers=", 0), 0u)
      << out.front();
  EXPECT_EQ(out.back(), "END");
  // Answers between header and END, one per line (the magic rewrite adorns
  // the query predicate, e.g. cheaporshort_bbff).
  for (size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_EQ(out[i].rfind("cheaporshort", 0), 0u) << out[i];
  }
}

TEST(ProtocolTest, IdentityStepsDash) {
  auto service = FlightsService();
  std::vector<std::string> out;
  HandleLine(*service, "QUERY - " + std::string(kFlightsQuery), &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("OK path=", 0), 0u) << out.front();
}

TEST(ProtocolTest, IngestThenQueryResumes) {
  auto service = FlightsService();
  std::vector<std::string> out;
  HandleLine(*service, "QUERY pred,qrp,mg " + std::string(kFlightsQuery),
             &out);
  out.clear();
  HandleLine(*service, "INGEST singleleg(msn, sea, 150, 80).", &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), "OK accepted=1 duplicates=0 epoch=1");
  out.clear();
  HandleLine(*service, "QUERY pred,qrp,mg " + std::string(kFlightsQuery),
             &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("OK path=resumed epoch=1", 0), 0u)
      << out.front();
}

TEST(ProtocolTest, ErrorsKeepConnectionAlive) {
  auto service = FlightsService();
  std::vector<std::string> out;
  EXPECT_EQ(HandleLine(*service, "BOGUS", &out), ProtocolAction::kContinue);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("ERR INVALID_ARGUMENT unknown command 'BOGUS'", 0),
            0u)
      << out[0];
  EXPECT_EQ(out[1], "END");

  out.clear();
  HandleLine(*service, "QUERY - ?- broken(", &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rfind("ERR ", 0), 0u) << out[0];
  EXPECT_EQ(out[1], "END");
}

TEST(ProtocolTest, StatsAndShutdown) {
  auto service = FlightsService();
  std::vector<std::string> out;
  HandleLine(*service, "PREPARE pred,qrp,mg " + std::string(kFlightsQuery),
             &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("OK fingerprint=", 0), 0u) << out.front();
  EXPECT_NE(out.front().find("cached=0"), std::string::npos);

  out.clear();
  HandleLine(*service, "STATS", &out);
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out.front(), "OK");
  EXPECT_EQ(out.back(), "END");
  bool saw_entries = false;
  for (const std::string& line : out) {
    if (line == "prepared_entries=1") saw_entries = true;
  }
  EXPECT_TRUE(saw_entries);

  out.clear();
  EXPECT_EQ(HandleLine(*service, "SHUTDOWN", &out),
            ProtocolAction::kShutdown);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK bye");
}

// ---------------------------------------------------------------------------
// WAL-backed durability: the epoch lifecycle across crash/recover edges.

/// mkdtemp'd WAL directory, removed with its known files on scope exit.
struct TempWalDir {
  std::string path;
  TempWalDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/cqlopt-svc-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path.assign(buf.data());
  }
  ~TempWalDir() {
    if (path.empty()) return;
    for (const char* name : {"/wal.log", "/snapshot.cql", "/snapshot.tmp"}) {
      ::unlink((path + name).c_str());
    }
    ::rmdir(path.c_str());
  }
};

std::unique_ptr<QueryService> DurableFlights(const std::string& wal_dir,
                                             long compact_bytes = 0) {
  ServiceOptions options;
  options.wal_dir = wal_dir;
  options.wal_compact_bytes = compact_bytes;
  return FlightsService(options);
}

TEST(WalRecoveryTest, EmptyWalRecoversToEpochZero) {
  TempWalDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto service = DurableFlights(dir.path);
  RecoverOutcome outcome;
  ASSERT_TRUE(service->Recover(&outcome).ok());
  EXPECT_EQ(outcome.epoch, 0);
  EXPECT_EQ(outcome.batches_replayed, 0);
  EXPECT_FALSE(outcome.snapshot_loaded);
  EXPECT_EQ(outcome.truncated_bytes, 0);
  EXPECT_TRUE(outcome.warning.empty());
  // A freshly recovered empty log serves exactly the constructor EDB.
  auto served = service->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->epoch, 0);
}

TEST(WalRecoveryTest, ReplayReproducesTheEpochSequence) {
  TempWalDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string pre_crash;
  {
    auto service = DurableFlights(dir.path);
    ASSERT_TRUE(service->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
    ASSERT_TRUE(service->Ingest("singleleg(sea, msn, 210, 140).\n"
                                "singleleg(den, jfk, 240, 160).\n")
                    .ok());
    EXPECT_EQ(service->epoch(), 2);
    pre_crash = service->RenderStateText();
  }  // "crash": only the WAL directory survives
  auto revived = DurableFlights(dir.path);
  RecoverOutcome outcome;
  ASSERT_TRUE(revived->Recover(&outcome).ok());
  EXPECT_EQ(outcome.epoch, 2);
  EXPECT_EQ(outcome.batches_replayed, 2);
  EXPECT_EQ(revived->RenderStateText(), pre_crash);
  ServiceStats stats = revived->Stats();
  EXPECT_TRUE(stats.wal_enabled);
  EXPECT_EQ(stats.wal_replayed_batches, 2);
}

TEST(WalRecoveryTest, RecoversSnapshotPlusTailBatches) {
  TempWalDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string pre_crash;
  {
    auto service = DurableFlights(dir.path);
    ASSERT_TRUE(service->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
    ASSERT_TRUE(service->Compact().ok());
    // Tail batches after the compaction land in the (reset) log.
    ASSERT_TRUE(service->Ingest("singleleg(sea, msn, 210, 140).\n").ok());
    ASSERT_TRUE(service->Ingest("singleleg(den, jfk, 240, 160).\n").ok());
    EXPECT_EQ(service->epoch(), 3);
    EXPECT_EQ(service->Stats().wal_compactions, 1);
    pre_crash = service->RenderStateText();
  }
  auto revived = DurableFlights(dir.path);
  RecoverOutcome outcome;
  ASSERT_TRUE(revived->Recover(&outcome).ok());
  EXPECT_TRUE(outcome.snapshot_loaded);
  EXPECT_EQ(outcome.snapshot_epoch, 1);
  EXPECT_EQ(outcome.batches_replayed, 2);
  EXPECT_EQ(outcome.epoch, 3);
  EXPECT_EQ(revived->RenderStateText(), pre_crash);
}

TEST(WalRecoveryTest, AutoCompactionTriggersPastTheThreshold) {
  TempWalDir dir;
  ASSERT_FALSE(dir.path.empty());
  // Any commit pushing wal.log past ~1 byte compacts, so every batch does.
  auto service = DurableFlights(dir.path, /*compact_bytes=*/1);
  ASSERT_TRUE(service->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  ASSERT_TRUE(service->Ingest("singleleg(sea, msn, 210, 140).\n").ok());
  EXPECT_EQ(service->Stats().wal_compactions, 2);
  std::string pre_crash = service->RenderStateText();
  service.reset();

  auto revived = DurableFlights(dir.path, /*compact_bytes=*/1);
  RecoverOutcome outcome;
  ASSERT_TRUE(revived->Recover(&outcome).ok());
  EXPECT_TRUE(outcome.snapshot_loaded);
  EXPECT_EQ(outcome.snapshot_epoch, 2);
  EXPECT_EQ(outcome.batches_replayed, 0);
  EXPECT_EQ(revived->RenderStateText(), pre_crash);
}

TEST(WalRecoveryTest, DoubleRecoverIsIdempotent) {
  TempWalDir dir;
  ASSERT_FALSE(dir.path.empty());
  {
    auto service = DurableFlights(dir.path);
    ASSERT_TRUE(service->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  }
  auto revived = DurableFlights(dir.path);
  RecoverOutcome first;
  ASSERT_TRUE(revived->Recover(&first).ok());
  EXPECT_EQ(first.epoch, 1);
  EXPECT_EQ(first.batches_replayed, 1);
  std::string state = revived->RenderStateText();

  // A second Recover must not replay again (no duplicate epochs burned).
  RecoverOutcome second;
  ASSERT_TRUE(revived->Recover(&second).ok());
  EXPECT_EQ(second.epoch, 1);
  EXPECT_EQ(second.batches_replayed, 0);
  EXPECT_EQ(revived->RenderStateText(), state);
  EXPECT_EQ(revived->epoch(), 1);
}

TEST(WalRecoveryTest, RecoverIsANoOpWithoutAWal) {
  auto service = FlightsService();
  RecoverOutcome outcome;
  ASSERT_TRUE(service->Recover(&outcome).ok());
  EXPECT_EQ(outcome.epoch, 0);
  EXPECT_EQ(outcome.batches_replayed, 0);
  EXPECT_FALSE(service->Stats().wal_enabled);
  EXPECT_EQ(service->Compact().code(), StatusCode::kInvalidArgument);
}

TEST(WalRecoveryTest, IngestsAfterRecoveryAppendToTheLog) {
  TempWalDir dir;
  ASSERT_FALSE(dir.path.empty());
  {
    auto service = DurableFlights(dir.path);
    ASSERT_TRUE(service->Ingest("singleleg(msn, sea, 150, 80).\n").ok());
  }
  {
    auto revived = DurableFlights(dir.path);
    ASSERT_TRUE(revived->Recover(nullptr).ok());
    // Replayed batches must not have been re-logged: the next recovery
    // sees exactly two records, not three.
    ASSERT_TRUE(revived->Ingest("singleleg(sea, msn, 210, 140).\n").ok());
    EXPECT_EQ(revived->epoch(), 2);
  }
  auto third = DurableFlights(dir.path);
  RecoverOutcome outcome;
  ASSERT_TRUE(third->Recover(&outcome).ok());
  EXPECT_EQ(outcome.batches_replayed, 2);
  EXPECT_EQ(outcome.epoch, 2);
}

// ---------------------------------------------------------------------------
// Replication at the protocol boundary: ASOF reads, follower write
// rejection, the REPLICATE feed framing, HEALTH, and PROMOTE (DESIGN.md
// §15). The Replicator end of these verbs is exercised in test_replica.cc;
// here the contract under test is the line framing itself.

TEST(ProtocolTest, AsOfQueryGatesOnTheEpoch) {
  auto service = FlightsService();
  std::vector<std::string> out;
  HandleLine(*service,
             std::string("QUERY pred,qrp,mg ") + kFlightsQuery + " ASOF 0",
             &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("OK path=", 0), 0u) << out.front();

  // A floor past the head is a typed UNAVAILABLE — the client retries or
  // redirects, never silently reads stale state.
  out.clear();
  HandleLine(*service,
             std::string("QUERY pred,qrp,mg ") + kFlightsQuery + " ASOF 3",
             &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("ERR UNAVAILABLE", 0), 0u) << out.front();

  // Once the head catches up, the identical line is serveable and the
  // response names the epoch that answered.
  for (int i = 0; i < 3; ++i) {
    out.clear();
    HandleLine(*service,
               "INGEST singleleg(asof" + std::to_string(i) + ", q, 90, 40).",
               &out);
    ASSERT_EQ(out.front().rfind("OK accepted=", 0), 0u) << out.front();
  }
  out.clear();
  HandleLine(*service,
             std::string("QUERY pred,qrp,mg ") + kFlightsQuery + " ASOF 3",
             &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("OK path=", 0), 0u) << out.front();
  EXPECT_NE(out.front().find(" epoch=3 "), std::string::npos) << out.front();
}

TEST(ProtocolTest, FollowerRefusesWritesUntilPromoted) {
  auto service = FlightsService();
  service->SetRole(NodeRole::kFollower);
  const char* writes[] = {
      "INGEST singleleg(x, y, 100, 50).",
      "RETRACT singleleg(msn, sea, 150, 80).",
      "TICK 25",
  };
  for (const char* line : writes) {
    std::vector<std::string> out;
    HandleLine(*service, line, &out);
    ASSERT_EQ(out.size(), 2u) << line;
    EXPECT_EQ(out.front().rfind("ERR FAILED_PRECONDITION", 0), 0u)
        << line << " -> " << out.front();
    EXPECT_NE(out.front().find("read-only follower"), std::string::npos)
        << out.front();
  }
  // Reads are never role-gated, and a bare TICK only reads the clock.
  std::vector<std::string> read;
  HandleLine(*service, std::string("QUERY pred,qrp,mg ") + kFlightsQuery,
             &read);
  ASSERT_FALSE(read.empty());
  EXPECT_EQ(read.front().rfind("OK path=", 0), 0u) << read.front();
  read.clear();
  HandleLine(*service, "TICK", &read);
  ASSERT_FALSE(read.empty());
  EXPECT_EQ(read.front().rfind("OK now_ms=", 0), 0u) << read.front();

  // PROMOTE flips the role and the same write is accepted.
  std::vector<std::string> promote;
  HandleLine(*service, "PROMOTE", &promote);
  ASSERT_FALSE(promote.empty());
  EXPECT_EQ(promote.front(), "OK role=primary epoch=0");
  std::vector<std::string> write;
  HandleLine(*service, "INGEST singleleg(x, y, 100, 50).", &write);
  ASSERT_FALSE(write.empty());
  EXPECT_EQ(write.front().rfind("OK accepted=", 0), 0u) << write.front();
}

TEST(ProtocolTest, ReplicateShipsTheFeedAndHealthReportsTheRole) {
  TempWalDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto service = DurableFlights(dir.path);

  // Bootstrap probe: base -1 can never match a generation, so the reply is
  // a full snapshot cut at the head.
  std::vector<std::string> out;
  HandleLine(*service, "REPLICATE -1 0", &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("OK base=0", 0), 0u) << out.front();
  EXPECT_NE(out.front().find(" snapshot=1"), std::string::npos) << out.front();

  // A committed batch ships as an R line — wire CRC + hex payload — whose
  // bytes decode to a well-formed WAL record and re-hash to the stated CRC.
  ASSERT_TRUE(service->Ingest("singleleg(rep, wire, 100, 50).\n").ok());
  out.clear();
  HandleLine(*service, "REPLICATE 0 0 8", &out);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.front().rfind("OK base=0 next=1 feed=1 epoch=1", 0), 0u)
      << out.front();
  ASSERT_EQ(out[1].rfind("R ", 0), 0u) << out[1];
  std::istringstream framed(out[1]);
  std::string tag, crc_hex, payload_hex;
  framed >> tag >> crc_hex >> payload_hex;
  std::string payload;
  ASSERT_TRUE(HexDecode(payload_hex, &payload));
  char expected_crc[16];
  std::snprintf(expected_crc, sizeof(expected_crc), "%08x",
                WalCrc32(payload));
  EXPECT_EQ(crc_hex, expected_crc);
  Result<WalRecord> record = DecodeWalRecord(payload);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->kind, WalRecord::Kind::kInsert);

  // Malformed coordinates are a typed INVALID_ARGUMENT naming the shape.
  out.clear();
  HandleLine(*service, "REPLICATE zero 0", &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("ERR INVALID_ARGUMENT", 0), 0u) << out.front();

  // HEALTH on a healthy primary: role/epoch/clock, no quarantine, no lag
  // fields (-1: no replicator attached).
  out.clear();
  HandleLine(*service, "HEALTH", &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().rfind("OK role=primary epoch=1", 0), 0u)
      << out.front();
  EXPECT_NE(out.front().find(" quarantined=0"), std::string::npos);
  EXPECT_NE(out.front().find(" lag=-1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Socket I/O: WriteFull against short writes and injected faults.

TEST(ServerIoTest, WriteFullSurvivesInjectedShortWrites) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "OK answers=2\na(1).\na(2).\nEND\n";
  // Force 1-byte transfers for the whole message: the loop must keep
  // pushing until every byte is out.
  failpoint::Arm(failpoint::kServerShortWrite, /*skip=*/0, /*times=*/0);
  std::thread writer([&] {
    EXPECT_TRUE(WriteFull(fds[0], payload));
    ::close(fds[0]);
  });
  std::string received;
  char chunk[64];
  ssize_t n;
  while ((n = ::read(fds[1], chunk, sizeof(chunk))) > 0) {
    received.append(chunk, static_cast<size_t>(n));
  }
  writer.join();
  failpoint::DisarmAll();
  ::close(fds[1]);
  EXPECT_EQ(received, payload);
}

TEST(ServerIoTest, WriteFullReportsAClosedPeerInsteadOfSignalling) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  // Writing into a closed peer raises EPIPE, not SIGPIPE (MSG_NOSIGNAL):
  // surviving this call IS the assertion; the false return is the protocol
  // loop's signal to drop the session.
  std::string big(1 << 20, 'x');
  EXPECT_FALSE(WriteFull(fds[0], big));
  ::close(fds[0]);
}

TEST(ProtocolTest, ServeStreamsRunsASession) {
  auto service = FlightsService();
  std::istringstream in(
      "PREPARE pred,qrp,mg " + std::string(kFlightsQuery) + "\n" +
      "QUERY pred,qrp,mg " + std::string(kFlightsQuery) + "\n" +
      "INGEST singleleg(msn, sea, 150, 80).\n" +
      "QUERY pred,qrp,mg " + std::string(kFlightsQuery) + "\n" +
      "SHUTDOWN\n" + "QUERY after shutdown must not be served\n");
  std::ostringstream out;
  ASSERT_TRUE(ServeStreams(*service, in, out).ok());
  std::string transcript = out.str();
  EXPECT_NE(transcript.find("OK fingerprint="), std::string::npos);
  EXPECT_NE(transcript.find("OK path=prepared epoch=0"), std::string::npos);
  EXPECT_NE(transcript.find("OK accepted=1"), std::string::npos);
  EXPECT_NE(transcript.find("OK path=resumed epoch=1"), std::string::npos);
  EXPECT_NE(transcript.find("OK bye"), std::string::npos);
  EXPECT_EQ(transcript.find("after shutdown"), std::string::npos);
}

TEST(ProtocolTest, PriorityVerbReportsTheClassChange) {
  auto service = FlightsService();
  std::vector<std::string> lines;
  LineOutcome outcome;
  HandleLine(*service, "PRIORITY batch", &lines, &outcome);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "OK priority=batch");
  EXPECT_EQ(lines[1], "END");
  EXPECT_TRUE(outcome.priority_changed);
  EXPECT_EQ(outcome.priority, PriorityClass::kBatch);

  lines.clear();
  outcome = {};
  HandleLine(*service, "PRIORITY urgent", &lines, &outcome);
  EXPECT_EQ(lines[0].rfind("ERR INVALID_ARGUMENT", 0), 0u) << lines[0];
  EXPECT_FALSE(outcome.priority_changed);
}

// ---------------------------------------------------------------------------
// The epoll serve loop: accept churn, TCP, pipelining, overload shedding,
// and concurrent clients against a serial replay.

/// Runs ServeLoop on a background thread and blocks until the listeners
/// are bound (so tests know the socket path / ephemeral TCP port is live).
struct TestServer {
  TestServer(QueryService& service, ServerOptions opts)
      : options(std::move(opts)) {
    std::promise<ServerEndpoints> promise;
    std::future<ServerEndpoints> future = promise.get_future();
    options.on_ready = [&promise](const ServerEndpoints& endpoints) {
      promise.set_value(endpoints);
    };
    thread = std::thread([this, &service] {
      status = ServeLoop(service, options);
    });
    ready = future.wait_for(std::chrono::seconds(20)) ==
            std::future_status::ready;
    if (ready) endpoints = future.get();
  }

  ~TestServer() {
    if (thread.joinable()) thread.join();
  }

  ServerOptions options;
  ServerEndpoints endpoints;
  bool ready = false;
  Status status = Status::OK();
  std::thread thread;
};

int ConnectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectTcp(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one END-framed response (its lines, END excluded). `buffer`
/// carries partial reads between calls on the same connection. Empty on
/// transport failure.
std::vector<std::string> ReadResponse(int fd, std::string* buffer) {
  std::vector<std::string> lines;
  char chunk[4096];
  for (;;) {
    size_t newline = buffer->find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buffer->append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer->substr(0, newline);
    buffer->erase(0, newline + 1);
    if (line == "END") return lines;
    lines.push_back(line);
  }
}

struct ServerFixtureDirs {
  TempWalDir dir;  // reused as a scratch directory for socket files
  std::string SocketPath() const { return dir.path + "/cqld.sock"; }
};

TEST(ServeLoopTest, ConnectionChurnDoesNotAccumulateState) {
  ServerFixtureDirs scratch;
  auto service = FlightsService();
  ServerOptions options;
  options.socket_path = scratch.SocketPath();
  TestServer server(*service, options);
  ASSERT_TRUE(server.ready);

  // The old thread-per-connection loop kept one dead thread per finished
  // connection until shutdown; the epoll loop must serve an arbitrary
  // churn of short-lived connections off one thread + the worker pool.
  const std::string query =
      std::string("QUERY pred,qrp,mg ") + kFlightsQuery + "\n";
  for (int i = 0; i < 50; ++i) {
    int fd = ConnectUnix(scratch.SocketPath());
    ASSERT_GE(fd, 0) << "connection " << i;
    ASSERT_TRUE(SendAll(fd, query));
    std::string buffer;
    std::vector<std::string> response = ReadResponse(fd, &buffer);
    ASSERT_FALSE(response.empty()) << "connection " << i;
    EXPECT_EQ(response.front().rfind("OK path=", 0), 0u) << response.front();
    ::close(fd);
  }

  int fd = ConnectUnix(scratch.SocketPath());
  ASSERT_GE(fd, 0);
  std::string buffer;
  ASSERT_TRUE(SendAll(fd, "STATS\n"));
  std::vector<std::string> stats = ReadResponse(fd, &buffer);
  bool saw_queries = false;
  for (const std::string& line : stats) {
    if (line == "queries=50") saw_queries = true;
  }
  EXPECT_TRUE(saw_queries);
  ASSERT_TRUE(SendAll(fd, "SHUTDOWN\n"));
  std::vector<std::string> bye = ReadResponse(fd, &buffer);
  ASSERT_FALSE(bye.empty());
  EXPECT_EQ(bye.front(), "OK bye");
  ::close(fd);
  server.thread.join();
  EXPECT_TRUE(server.status.ok()) << server.status.ToString();
}

TEST(ServeLoopTest, TcpListenerServesOnAnEphemeralPort) {
  auto service = FlightsService();
  ServerOptions options;
  options.tcp_port = 0;  // kernel-assigned; reported through on_ready
  options.listen_backlog = 8;
  TestServer server(*service, options);
  ASSERT_TRUE(server.ready);
  ASSERT_GT(server.endpoints.tcp_port, 0);

  int fd = ConnectTcp(server.endpoints.tcp_port);
  ASSERT_GE(fd, 0);
  std::string buffer;
  ASSERT_TRUE(SendAll(fd, std::string("QUERY pred,qrp,mg ") + kFlightsQuery +
                              "\nSHUTDOWN\n"));
  std::vector<std::string> response = ReadResponse(fd, &buffer);
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response.front().rfind("OK path=", 0), 0u);
  std::vector<std::string> bye = ReadResponse(fd, &buffer);
  ASSERT_FALSE(bye.empty());
  EXPECT_EQ(bye.front(), "OK bye");
  ::close(fd);
  server.thread.join();
  EXPECT_TRUE(server.status.ok()) << server.status.ToString();
}

TEST(ServeLoopTest, PipelinedRequestsFlushInRequestOrder) {
  ServerFixtureDirs scratch;
  auto service = FlightsService();
  ServerOptions options;
  options.socket_path = scratch.SocketPath();
  options.scheduler.workers = 4;
  TestServer server(*service, options);
  ASSERT_TRUE(server.ready);

  int fd = ConnectUnix(scratch.SocketPath());
  ASSERT_GE(fd, 0);
  // One write, five requests: however the worker pool interleaves them,
  // responses must come back in request order.
  ASSERT_TRUE(SendAll(
      fd, std::string("QUERY pred,qrp,mg ") + kFlightsQuery + "\n" +
              "PRIORITY interactive\n" +
              "INGEST singleleg(pipea, pipeb, 100, 50).\n" +
              "QUERY pred,qrp,mg " + kFlightsQuery + "\nSHUTDOWN\n"));
  std::string buffer;
  std::vector<std::string> first = ReadResponse(fd, &buffer);
  std::vector<std::string> second = ReadResponse(fd, &buffer);
  std::vector<std::string> third = ReadResponse(fd, &buffer);
  std::vector<std::string> fourth = ReadResponse(fd, &buffer);
  std::vector<std::string> fifth = ReadResponse(fd, &buffer);
  ASSERT_FALSE(fifth.empty());
  EXPECT_EQ(first.front().rfind("OK path=", 0), 0u) << first.front();
  EXPECT_EQ(second.front(), "OK priority=interactive");
  EXPECT_EQ(third.front().rfind("OK accepted=1", 0), 0u) << third.front();
  // Pipelined requests are admitted concurrently (so a burst can shed),
  // and the pool may interleave their execution — the guarantee is that
  // *responses* flush in request order, not that execution is serial, so
  // the second query may see epoch 0 or 1.
  EXPECT_EQ(fourth.front().rfind("OK path=", 0), 0u) << fourth.front();
  EXPECT_EQ(fifth.front(), "OK bye");
  ::close(fd);
  server.thread.join();
  EXPECT_TRUE(server.status.ok()) << server.status.ToString();
}

TEST(ServeLoopTest, OverloadShedsTypedErrorsWithoutStallingAccept) {
  failpoint::DisarmAll();
  ServerFixtureDirs scratch;
  auto service = FlightsService();
  ServerOptions options;
  options.socket_path = scratch.SocketPath();
  options.scheduler.workers = 2;
  options.scheduler.queue_depth = 4;
  TestServer server(*service, options);
  ASSERT_TRUE(server.ready);

  int a = ConnectUnix(scratch.SocketPath());
  ASSERT_GE(a, 0);
  // Freeze the workers, then burst past the admission bound: 4 requests
  // queue, the rest must shed synchronously with a typed error.
  failpoint::Arm(failpoint::kSchedulerWorkerHold, 0, 0);
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    burst += std::string("QUERY pred,qrp,mg ") + kFlightsQuery + "\n";
  }
  ASSERT_TRUE(SendAll(a, burst));
  // Give the loop time to frame and submit the whole burst.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // The accept loop must stay responsive while the pool is saturated: a
  // new client's request is refused *immediately* with RESOURCE_EXHAUSTED
  // (its response cannot be stuck behind the frozen ones).
  int b = ConnectUnix(scratch.SocketPath());
  ASSERT_GE(b, 0);
  std::string buffer_b;
  ASSERT_TRUE(
      SendAll(b, std::string("QUERY pred,qrp,mg ") + kFlightsQuery + "\n"));
  std::vector<std::string> refused = ReadResponse(b, &buffer_b);
  ASSERT_FALSE(refused.empty());
  EXPECT_EQ(refused.front().rfind("ERR RESOURCE_EXHAUSTED", 0), 0u)
      << refused.front();

  failpoint::DisarmAll();
  // Every burst request gets exactly one response, in order: the admitted
  // prefix answers OK, the overflow is typed shed — zero stalled requests.
  std::string buffer_a;
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> response = ReadResponse(a, &buffer_a);
    ASSERT_FALSE(response.empty()) << "request " << i << " unanswered";
    if (response.front().rfind("OK path=", 0) == 0) {
      EXPECT_EQ(shed, 0) << "OK after a shed: responses out of order";
      ++ok;
    } else {
      EXPECT_EQ(response.front().rfind("ERR RESOURCE_EXHAUSTED", 0), 0u)
          << response.front();
      ++shed;
    }
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(shed, 6);

  ASSERT_TRUE(SendAll(b, "SHUTDOWN\n"));
  std::vector<std::string> bye = ReadResponse(b, &buffer_b);
  ASSERT_FALSE(bye.empty());
  EXPECT_EQ(bye.front(), "OK bye");
  ::close(a);
  ::close(b);
  server.thread.join();
  EXPECT_TRUE(server.status.ok()) << server.status.ToString();
}

TEST(ServeLoopTest, DrainMidPipelineFinishesInFlightRefusesNewAndExitsOk) {
  ServerFixtureDirs scratch;
  auto service = FlightsService();
  // The SIGTERM self-pipe exactly as cqld wires it (tools/cqld.cc).
  int drain_pipe[2] = {-1, -1};
  ASSERT_EQ(::pipe2(drain_pipe, O_NONBLOCK | O_CLOEXEC), 0);
  ServerOptions options;
  options.socket_path = scratch.SocketPath();
  options.scheduler.workers = 1;
  options.scheduler.queue_depth = 256;  // the whole pipeline must admit
  options.drain_fd = drain_pipe[0];
  options.drain_timeout_ms = 30000;
  TestServer server(*service, options);
  ASSERT_TRUE(server.ready);

  // A deep pipeline of alternating unique ingests and resumed queries: one
  // worker chews through it for long enough that the drain below lands
  // squarely mid-flight.
  constexpr int kPairs = 40;
  std::string pipeline;
  for (int i = 0; i < kPairs; ++i) {
    pipeline += "INGEST singleleg(drain" + std::to_string(i) +
                ", sea, 150, 80).\n";
    pipeline += std::string("QUERY pred,qrp,mg ") + kFlightsQuery + "\n";
  }
  int fd = ConnectUnix(scratch.SocketPath());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, pipeline));
  std::string buffer;
  std::vector<std::string> first = ReadResponse(fd, &buffer);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front().rfind("OK accepted=", 0), 0u) << first.front();

  // Fire the drain. Its observable leading edge is the listener closing.
  char byte = 1;
  ASSERT_EQ(::write(drain_pipe[1], &byte, 1), 1);
  bool listener_closed = false;
  for (int i = 0; i < 1500; ++i) {
    int probe = ConnectUnix(scratch.SocketPath());
    if (probe < 0) {
      listener_closed = true;
      break;
    }
    ::close(probe);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(listener_closed);

  // A line arriving during the drain is refused with a typed UNAVAILABLE,
  // delivered after every response admitted before it — never interleaved.
  ASSERT_TRUE(
      SendAll(fd, std::string("QUERY pred,qrp,mg ") + kFlightsQuery + "\n"));
  int ok_responses = 1;  // the first, read above
  std::string refused;
  for (int i = 0; i < 2 * kPairs + 1 && refused.empty(); ++i) {
    std::vector<std::string> response = ReadResponse(fd, &buffer);
    ASSERT_FALSE(response.empty()) << "response " << i;
    if (response.front().rfind("OK ", 0) == 0u) {
      ++ok_responses;
      continue;
    }
    refused = response.front();
  }
  EXPECT_EQ(ok_responses, 2 * kPairs);
  EXPECT_EQ(refused, "ERR UNAVAILABLE server draining: request refused");

  // With everything owed flushed, the loop exits 0 on its own — the drain
  // path never needs a SHUTDOWN verb.
  ::close(fd);
  server.thread.join();
  EXPECT_TRUE(server.status.ok()) << server.status.ToString();
  ::close(drain_pipe[0]);
  ::close(drain_pipe[1]);
}

TEST(ServeLoopTest, ConcurrentClientsMatchSerialReplay) {
  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  ServerFixtureDirs scratch;
  auto service = FlightsService();
  ServerOptions options;
  options.socket_path = scratch.SocketPath();
  options.scheduler.workers = 8;
  TestServer server(*service, options);
  ASSERT_TRUE(server.ready);

  auto ingest_line = [](int client, int round) {
    std::string tag = std::to_string(client) + std::to_string(round);
    return "INGEST singleleg(sv" + tag + "a, sv" + tag + "b, " +
           std::to_string(110 + client * 10 + round) + ", " +
           std::to_string(60 + client) + ").";
  };

  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = ConnectUnix(scratch.SocketPath());
      if (fd < 0) {
        errors.fetch_add(1);
        return;
      }
      std::string buffer;
      for (int r = 0; r < kRounds; ++r) {
        for (const std::string& request :
             {ingest_line(c, r),
              std::string("QUERY pred,qrp,mg ") + kFlightsQuery}) {
          if (!SendAll(fd, request + "\n")) {
            errors.fetch_add(1);
            break;
          }
          std::vector<std::string> response = ReadResponse(fd, &buffer);
          if (response.empty() || response.front().rfind("OK", 0) != 0) {
            errors.fetch_add(1);
          }
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(errors.load(), 0);

  // Serial replay of the same (disjoint) batches in a fixed order.
  auto serial = FlightsService();
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRounds; ++r) {
      std::vector<std::string> lines;
      HandleLine(*serial, ingest_line(c, r), &lines);
      ASSERT_EQ(lines.front().rfind("OK", 0), 0u) << lines.front();
    }
  }
  auto concurrent_final = service->Execute(kFlightsQuery, "pred,qrp,mg");
  auto serial_final = serial->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(concurrent_final.ok());
  ASSERT_TRUE(serial_final.ok());
  EXPECT_EQ(concurrent_final->answers, serial_final->answers);
  EXPECT_EQ(service->epoch(), kClients * kRounds);
  EXPECT_EQ(serial->epoch(), kClients * kRounds);

  int fd = ConnectUnix(scratch.SocketPath());
  ASSERT_GE(fd, 0);
  std::string buffer;
  ASSERT_TRUE(SendAll(fd, "SHUTDOWN\n"));
  (void)ReadResponse(fd, &buffer);
  ::close(fd);
  server.thread.join();
  EXPECT_TRUE(server.status.ok()) << server.status.ToString();
}

}  // namespace
}  // namespace cqlopt
