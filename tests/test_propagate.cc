#include "transform/propagate.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "constraint/implication.h"
#include "transform/qrp_constraints.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

TEST(PropagateTest, Example41EndToEnd) {
  Program p = ParseOrDie(
      "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n"
      "r2: p1(X, Y) :- b1(X, Y).\n"
      "r3: p2(X) :- b2(X).\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto qrp = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(qrp.ok());
  auto out = PropagateQrpConstraints(p, q, qrp->constraints, {});
  ASSERT_TRUE(out.ok());
  // Three rules: q (folded), p1' (unfolded+constrained), p2' (ditto).
  ASSERT_EQ(out->rules.size(), 3u);
  PredId p1p = p.symbols->LookupPredicate("p1'");
  PredId p2p = p.symbols->LookupPredicate("p2'");
  ASSERT_NE(p1p, SymbolTable::kNoPred);
  ASSERT_NE(p2p, SymbolTable::kNoPred);
  for (const Rule& rule : out->rules) {
    if (rule.head.pred == p2p) {
      // p2'(X) :- b2(X), X <= 4.
      Conjunction expected =
          Conj({Atom({{rule.head.args[0], 1}}, -4, CmpOp::kLe)});
      EXPECT_TRUE(Equivalent(rule.constraints, expected))
          << RenderRule(rule, *p.symbols);
    }
    if (rule.head.pred == q) {
      // The query rule's body now calls the primed predicates.
      EXPECT_EQ(rule.body[0].pred, p1p);
      EXPECT_EQ(rule.body[1].pred, p2p);
    }
  }
}

TEST(PropagateTest, TriviallyTrueQrpSkipsPredicate) {
  Program p = ParseOrDie(
      "q(X) :- a(X).\n"
      "a(X) :- e(X).\n");
  PredId q = p.symbols->LookupPredicate("q");
  std::map<PredId, ConstraintSet> qrp;
  qrp[p.symbols->LookupPredicate("a")] = ConstraintSet::True();
  auto out = PropagateQrpConstraints(p, q, qrp, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rules.size(), p.rules.size());
  EXPECT_EQ(p.symbols->LookupPredicate("a'"), SymbolTable::kNoPred);
}

TEST(PropagateTest, DisjunctiveQrpSplitsRules) {
  // QRP for a: ($1 <= 0) | ($1 >= 10): a's single rule becomes two primed
  // rules; the call site splits as well when its constraints imply neither
  // disjunct.
  Program p = ParseOrDie(
      "q(X) :- a(X).\n"
      "a(X) :- e(X), X <= 0.\n"
      "a(X) :- e(X), X >= 10.\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto qrp = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(qrp.ok());
  // QRP for a is true here (q imposes nothing); force a disjunctive set.
  std::map<PredId, ConstraintSet> forced;
  ConstraintSet set = ConstraintSet::Of(Conj({Atom({{1, 1}}, 0, CmpOp::kLe)}));
  set.AddDisjunct(Conj({Atom({{1, -1}}, 10, CmpOp::kLe)}));
  forced[p.symbols->LookupPredicate("a")] = set;
  auto out = PropagateQrpConstraints(p, q, forced, {});
  ASSERT_TRUE(out.ok());
  PredId ap = p.symbols->LookupPredicate("a'");
  ASSERT_NE(ap, SymbolTable::kNoPred);
  int a_rules = 0;
  int q_rules = 0;
  for (const Rule& rule : out->rules) {
    if (rule.head.pred == ap) ++a_rules;
    if (rule.head.pred == q) ++q_rules;
  }
  // a': each original a rule matches exactly one satisfiable disjunct.
  EXPECT_EQ(a_rules, 2);
  // q: split into one copy per disjunct (its constraints imply neither).
  EXPECT_EQ(q_rules, 2);
}

TEST(PropagateTest, RecursiveRulesFoldToPrimed) {
  Program p = ParseOrDie(
      "q(X, Y) :- t(X, Y), X <= 5.\n"
      "t(X, Y) :- e(X, Y), X <= 5.\n"
      "t(X, Y) :- e(X, Z), t(Z, Y), X <= 5, Z <= 5.\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto qrp = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(qrp.ok());
  auto out = PropagateQrpConstraints(p, q, qrp->constraints, {});
  ASSERT_TRUE(out.ok());
  PredId t = p.symbols->LookupPredicate("t");
  PredId tp = p.symbols->LookupPredicate("t'");
  ASSERT_NE(tp, SymbolTable::kNoPred);
  for (const Rule& rule : out->rules) {
    EXPECT_NE(rule.head.pred, t);  // originals deleted (unreachable)
    for (const Literal& lit : rule.body) EXPECT_NE(lit.pred, t);
  }
}

TEST(PropagateTest, RenameBackRestoresNames) {
  Program p = ParseOrDie(
      "q(X) :- a(X), X <= 3.\n"
      "a(X) :- e(X).\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto qrp = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(qrp.ok());
  PropagateOptions options;
  options.rename_back = true;
  auto out = PropagateQrpConstraints(p, q, qrp->constraints, options);
  ASSERT_TRUE(out.ok());
  PredId a = p.symbols->LookupPredicate("a");
  bool a_defined = false;
  for (const Rule& rule : out->rules) {
    if (rule.head.pred == a) a_defined = true;
  }
  EXPECT_TRUE(a_defined);
}

TEST(PropagateTest, UnreachableRulesDeleted) {
  Program p = ParseOrDie(
      "q(X) :- a(X), X <= 3.\n"
      "a(X) :- e(X).\n"
      "orphan(X) :- a(X).\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto qrp = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(qrp.ok());
  auto out = PropagateQrpConstraints(p, q, qrp->constraints, {});
  ASSERT_TRUE(out.ok());
  for (const Rule& rule : out->rules) {
    EXPECT_NE(p.symbols->PredicateName(rule.head.pred), "orphan");
  }
}

TEST(PropagateTest, FalseQrpPredicateDisappears) {
  Program p = ParseOrDie(
      "q(X) :- a(X), X <= 3.\n"
      "a(X) :- e(X).\n"
      "dead(X) :- f(X).\n"
      "q(X) :- dead(X), 1 <= 0.\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto qrp = GenQrpConstraints(p, q, {});
  ASSERT_TRUE(qrp.ok());
  auto out = PropagateQrpConstraints(p, q, qrp->constraints, {});
  ASSERT_TRUE(out.ok());
  for (const Rule& rule : out->rules) {
    EXPECT_NE(p.symbols->PredicateName(rule.head.pred), "dead");
  }
}

}  // namespace
}  // namespace cqlopt
