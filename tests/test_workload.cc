#include "core/workload.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

TEST(WorkloadTest, FlightNetworkShape) {
  SymbolTable symbols;
  Database db;
  FlightNetworkSpec spec;
  spec.airports = 8;
  spec.legs = 40;
  ASSERT_TRUE(AddFlightNetwork(&symbols, spec, &db).ok());
  PredId singleleg = symbols.LookupPredicate("singleleg");
  ASSERT_NE(singleleg, SymbolTable::kNoPred);
  const Relation* rel = db.Find(singleleg);
  ASSERT_NE(rel, nullptr);
  EXPECT_LE(rel->size(), 40u);
  EXPECT_GT(rel->size(), 35u);  // duplicate draws are rare at these ranges
  for (size_t i = 0; i < rel->size(); ++i) {
    const Fact& f = rel->fact(i);
    EXPECT_TRUE(f.IsGround());
    // No self loops; times and costs within the configured ranges.
    auto src = f.constraint.GetSymbol(1);
    auto dst = f.constraint.GetSymbol(2);
    ASSERT_TRUE(src.has_value());
    ASSERT_TRUE(dst.has_value());
    EXPECT_NE(*src, *dst);
    auto time = f.constraint.GetNumericValue(3);
    auto cost = f.constraint.GetNumericValue(4);
    ASSERT_TRUE(time.has_value());
    ASSERT_TRUE(cost.has_value());
    EXPECT_GE(*time, Rational(spec.time_min));
    EXPECT_LE(*time, Rational(spec.time_max));
    EXPECT_GE(*cost, Rational(spec.cost_min));
    EXPECT_LE(*cost, Rational(spec.cost_max));
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  SymbolTable s1, s2;
  Database d1, d2;
  FlightNetworkSpec spec;
  ASSERT_TRUE(AddFlightNetwork(&s1, spec, &d1).ok());
  ASSERT_TRUE(AddFlightNetwork(&s2, spec, &d2).ok());
  PredId leg1 = s1.LookupPredicate("singleleg");
  PredId leg2 = s2.LookupPredicate("singleleg");
  const Relation* r1 = d1.Find(leg1);
  const Relation* r2 = d2.Find(leg2);
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ(r1->fact(i).ToString(s1), r2->fact(i).ToString(s2));
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  SymbolTable symbols;
  Database d1, d2;
  FlightNetworkSpec a;
  FlightNetworkSpec b;
  b.seed = a.seed + 1;
  ASSERT_TRUE(AddFlightNetwork(&symbols, a, &d1).ok());
  ASSERT_TRUE(AddFlightNetwork(&symbols, b, &d2).ok());
  PredId leg = symbols.LookupPredicate("singleleg");
  std::string s1, s2;
  const Relation* w1 = d1.Find(leg);
  const Relation* w2 = d2.Find(leg);
  for (size_t i = 0; i < w1->size(); ++i) s1 += w1->fact(i).ToString(symbols);
  for (size_t i = 0; i < w2->size(); ++i) s2 += w2->fact(i).ToString(symbols);
  EXPECT_NE(s1, s2);
}

TEST(WorkloadTest, BinaryRelationDomainRespected) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(AddBinaryRelation(&symbols, "b1", 50, 10, 3, &db).ok());
  const Relation* rel = db.Find(symbols.LookupPredicate("b1"));
  ASSERT_NE(rel, nullptr);
  // Duplicate draws collapse (the database stores sets of facts).
  EXPECT_LE(rel->size(), 50u);
  EXPECT_GT(rel->size(), 25u);
  for (size_t i = 0; i < rel->size(); ++i) {
    for (VarId pos : {1, 2}) {
      auto v = rel->fact(i).constraint.GetNumericValue(pos);
      ASSERT_TRUE(v.has_value());
      EXPECT_GE(*v, Rational(0));
      EXPECT_LT(*v, Rational(10));
    }
  }
}

TEST(WorkloadTest, UnaryRelation) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(AddUnaryRelation(&symbols, "b2", 20, 5, 4, &db).ok());
  // At most `domain` distinct unary facts survive deduplication.
  size_t stored = db.FactsFor(symbols.LookupPredicate("b2"));
  EXPECT_GT(stored, 0u);
  EXPECT_LE(stored, 5u);
}

TEST(WorkloadTest, LayeredGraphEdgesRespectLayers) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(AddLayeredGraph(&symbols, "e", 4, 3, 2, 5, &db).ok());
  const Relation* rel = db.Find(symbols.LookupPredicate("e"));
  ASSERT_NE(rel, nullptr);
  // (layers-1) * width * fanout draws, minus duplicate-collapsed edges.
  EXPECT_LE(rel->size(), 3u * 3u * 2u);
  EXPECT_GT(rel->size(), 0u);
  for (size_t i = 0; i < rel->size(); ++i) {
    auto u = rel->fact(i).constraint.GetNumericValue(1);
    auto v = rel->fact(i).constraint.GetNumericValue(2);
    ASSERT_TRUE(u.has_value() && v.has_value());
    // v is in the layer after u.
    int64_t ui, vi;
    ASSERT_TRUE(u->numerator().ToInt64(&ui));
    ASSERT_TRUE(v->numerator().ToInt64(&vi));
    EXPECT_EQ(vi / 3, ui / 3 + 1);
  }
}

}  // namespace
}  // namespace cqlopt
