#include "eval/provenance.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/seminaive.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

Database EdgeDb(SymbolTable* symbols, std::vector<std::pair<int, int>> edges) {
  Database db;
  for (auto& [u, v] : edges) {
    EXPECT_TRUE(db.AddGroundFact(symbols, "e",
                                 {Database::Value::Number(Rational(u)),
                                  Database::Value::Number(Rational(v))})
                    .ok());
  }
  return db;
}

TEST(ProvenanceTest, EdbFactIsLeaf) {
  Program p = ParseOrDie("t(X, Y) :- e(X, Y).");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}});
  auto run = Evaluate(p, edb, {});
  ASSERT_TRUE(run.ok());
  PredId e = p.symbols->LookupPredicate("e");
  auto ref = FindFactByText(run->db, e, "e(1, 2)", *p.symbols);
  ASSERT_TRUE(ref.has_value());
  auto tree = RenderDerivationTree(run->db, *ref, *p.symbols);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(*tree, "e(1, 2)\n");
  EXPECT_EQ(*DerivationTreeSize(run->db, *ref), 1);
}

TEST(ProvenanceTest, RecursiveDerivationTree) {
  Program p = ParseOrDie(
      "r1: t(X, Y) :- e(X, Y).\n"
      "r2: t(X, Y) :- e(X, Z), t(Z, Y).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}, {2, 3}});
  auto run = Evaluate(p, edb, {});
  ASSERT_TRUE(run.ok());
  PredId t = p.symbols->LookupPredicate("t");
  auto ref = FindFactByText(run->db, t, "t(1, 3)", *p.symbols);
  ASSERT_TRUE(ref.has_value());
  auto tree = RenderDerivationTree(run->db, *ref, *p.symbols);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(*tree,
            "t(1, 3)  [r2]\n"
            "|- e(1, 2)\n"
            "`- t(2, 3)  [r1]\n"
            "   `- e(2, 3)\n");
  EXPECT_EQ(*DerivationTreeSize(run->db, *ref), 4);
}

TEST(ProvenanceTest, ConstraintFactRuleIsLeafWithLabel) {
  Program p = ParseOrDie("r6: m_fib(N, 5).");
  auto run = Evaluate(p, Database(), {});
  ASSERT_TRUE(run.ok());
  PredId m = p.symbols->LookupPredicate("m_fib");
  auto ref = FindFactByText(run->db, m, "m_fib($1, 5)", *p.symbols);
  ASSERT_TRUE(ref.has_value());
  auto tree = RenderDerivationTree(run->db, *ref, *p.symbols);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(*tree, "m_fib($1, 5)  [r6]\n");
}

TEST(ProvenanceTest, ParentsInBodyLiteralOrder) {
  Program p = ParseOrDie("r: j(X, Z) :- e(X, Y), f(Y, Z).");
  Database db = EdgeDb(p.symbols.get(), {{1, 2}});
  ASSERT_TRUE(db.AddGroundFact(p.symbols.get(), "f",
                               {Database::Value::Number(Rational(2)),
                                Database::Value::Number(Rational(3))})
                  .ok());
  auto run = Evaluate(p, db, {});
  ASSERT_TRUE(run.ok());
  PredId j = p.symbols->LookupPredicate("j");
  const Relation* rel = run->db.Find(j);
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  const auto& parents = rel->parents(0);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0].pred, p.symbols->LookupPredicate("e"));
  EXPECT_EQ(parents[1].pred, p.symbols->LookupPredicate("f"));
  EXPECT_EQ(rel->rule_label(0), "r");
}

TEST(ProvenanceTest, InvalidRefIsNotFound) {
  Database db;
  auto tree = RenderDerivationTree(db, Relation::FactRef{7, 0}, SymbolTable());
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kNotFound);
}

TEST(ProvenanceTest, FindFactByTextMissing) {
  Program p = ParseOrDie("t(X, Y) :- e(X, Y).");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}});
  auto run = Evaluate(p, edb, {});
  ASSERT_TRUE(run.ok());
  PredId t = p.symbols->LookupPredicate("t");
  EXPECT_FALSE(
      FindFactByText(run->db, t, "t(9, 9)", *p.symbols).has_value());
  EXPECT_FALSE(
      FindFactByText(run->db, 999, "t(1, 2)", *p.symbols).has_value());
}

}  // namespace
}  // namespace cqlopt
