#include "constraint/linear_constraint.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

LinearConstraint Make(const std::string& op, int a1, int a2, int c) {
  // a1*$1 + a2*$2 op -c   i.e. expr = a1*$1 + a2*$2 + c.
  LinearExpr lhs;
  lhs.Add(1, Rational(a1));
  lhs.Add(2, Rational(a2));
  return LinearConstraint::Make(lhs, op, LinearExpr::Constant(Rational(-c)));
}

TEST(LinearConstraintTest, MakeNormalizesOperators) {
  // $1 >= 3  ==  -$1 + 3 <= 0.
  LinearConstraint ge =
      LinearConstraint::Make(LinearExpr::Var(1), ">=",
                             LinearExpr::Constant(Rational(3)));
  EXPECT_EQ(ge.op(), CmpOp::kLe);
  EXPECT_EQ(ge.expr().CoefficientOf(1), Rational(-1));
  LinearConstraint gt =
      LinearConstraint::Make(LinearExpr::Var(1), ">",
                             LinearExpr::Constant(Rational(3)));
  EXPECT_EQ(gt.op(), CmpOp::kLt);
}

TEST(LinearConstraintTest, CanonicalizationScalesToIntegerGcdOne) {
  // (2/3)$1 + (4/3)$2 <= 2  canonicalizes to $1 + 2$2 - 3 <= 0.
  LinearExpr e;
  e.Add(1, Rational(BigInt(2), BigInt(3)));
  e.Add(2, Rational(BigInt(4), BigInt(3)));
  e.AddConstant(Rational(-2));
  LinearConstraint c(e, CmpOp::kLe);
  EXPECT_EQ(c.expr().CoefficientOf(1), Rational(1));
  EXPECT_EQ(c.expr().CoefficientOf(2), Rational(2));
  EXPECT_EQ(c.expr().constant(), Rational(-3));
}

TEST(LinearConstraintTest, EqualityOrientationCanonical) {
  // x - y = 0 and y - x = 0 canonicalize identically.
  LinearConstraint a(LinearExpr::Var(1) - LinearExpr::Var(2), CmpOp::kEq);
  LinearConstraint b(LinearExpr::Var(2) - LinearExpr::Var(1), CmpOp::kEq);
  EXPECT_EQ(a, b);
}

TEST(LinearConstraintTest, GroundEvaluation) {
  EXPECT_TRUE(LinearConstraint(LinearExpr::Constant(Rational(-1)), CmpOp::kLt)
                  .IsTriviallyTrue());
  EXPECT_TRUE(LinearConstraint(LinearExpr::Constant(Rational(0)), CmpOp::kLe)
                  .IsTriviallyTrue());
  EXPECT_TRUE(LinearConstraint(LinearExpr::Constant(Rational(0)), CmpOp::kLt)
                  .IsTriviallyFalse());
  EXPECT_TRUE(LinearConstraint(LinearExpr::Constant(Rational(1)), CmpOp::kLe)
                  .IsTriviallyFalse());
  EXPECT_TRUE(LinearConstraint(LinearExpr::Constant(Rational(0)), CmpOp::kEq)
                  .IsTriviallyTrue());
}

TEST(LinearConstraintTest, NegationsOfInequalities) {
  LinearConstraint le = Make("<=", 1, 0, 0);  // $1 <= 0
  auto neg = le.Negations();
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_EQ(neg[0].op(), CmpOp::kLt);
  EXPECT_EQ(neg[0].expr().CoefficientOf(1), Rational(-1));  // -$1 < 0
}

TEST(LinearConstraintTest, NegationOfEqualitySplits) {
  LinearConstraint eq = Make("=", 1, -1, 0);  // $1 = $2
  auto neg = eq.Negations();
  ASSERT_EQ(neg.size(), 2u);
  EXPECT_EQ(neg[0].op(), CmpOp::kLt);
  EXPECT_EQ(neg[1].op(), CmpOp::kLt);
  EXPECT_NE(neg[0], neg[1]);
}

TEST(LinearConstraintTest, SubstituteRecanonicalizes) {
  // $1 + $2 <= 4 with $2 := 4 - $1 gives 0 <= 0: trivially true.
  LinearConstraint c = Make("<=", 1, 1, -4);
  LinearExpr repl = LinearExpr::Constant(Rational(4)) - LinearExpr::Var(1);
  LinearConstraint out = c.Substitute(2, repl);
  EXPECT_TRUE(out.IsTriviallyTrue());
}

TEST(LinearConstraintTest, OrderingIsTotalAndConsistent) {
  LinearConstraint a = Make("<=", 1, 0, 0);
  LinearConstraint b = Make("<=", 0, 1, 0);
  LinearConstraint c = Make("<", 1, 0, 0);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
  EXPECT_TRUE((a < c) != (c < a));
}

TEST(LinearConstraintTest, PrettyStringFlipsAllNegative) {
  // -$1 < 0 prints as $1 > 0.
  LinearConstraint c(-LinearExpr::Var(1), CmpOp::kLt);
  EXPECT_EQ(c.ToPrettyString(), "$1 > 0");
  LinearConstraint le(-LinearExpr::Var(1) + LinearExpr::Constant(Rational(2)),
                      CmpOp::kLe);
  EXPECT_EQ(le.ToPrettyString(), "$1 >= 2");
}

}  // namespace
}  // namespace cqlopt
