#include "ast/arg_map.h"

#include <gtest/gtest.h>

#include "constraint/implication.h"

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

// flight(S, D, T, C) with rule variables 2001..2004.
Literal FlightLiteral() { return Literal(0, {2001, 2002, 2003, 2004}); }

TEST(ArgMapTest, PtolDefinition27Example) {
  // PTOL(flight(S,D,T,C), ($3 <= 240) | ($4 <= 150)) = (T<=240) | (C<=150).
  ConstraintSet over_args = ConstraintSet::Of(
      Conj({Atom({{3, 1}}, -240, CmpOp::kLe)}));
  over_args.AddDisjunct(Conj({Atom({{4, 1}}, -150, CmpOp::kLe)}));
  ConstraintSet over_vars = Ptol(FlightLiteral(), over_args);
  ASSERT_EQ(over_vars.disjuncts().size(), 2u);
  ConstraintSet expected = ConstraintSet::Of(
      Conj({Atom({{2003, 1}}, -240, CmpOp::kLe)}));
  expected.AddDisjunct(Conj({Atom({{2004, 1}}, -150, CmpOp::kLe)}));
  EXPECT_TRUE(over_vars.EquivalentTo(expected));
}

TEST(ArgMapTest, LtopDefinition28Example) {
  // LTOP(flight(S,D,T,C), (T<=240)|(C<=150)) = ($3<=240)|($4<=150).
  ConstraintSet over_vars = ConstraintSet::Of(
      Conj({Atom({{2003, 1}}, -240, CmpOp::kLe)}));
  over_vars.AddDisjunct(Conj({Atom({{2004, 1}}, -150, CmpOp::kLe)}));
  auto over_args = Ltop(FlightLiteral(), over_vars);
  ASSERT_TRUE(over_args.ok());
  ConstraintSet expected = ConstraintSet::Of(
      Conj({Atom({{3, 1}}, -240, CmpOp::kLe)}));
  expected.AddDisjunct(Conj({Atom({{4, 1}}, -150, CmpOp::kLe)}));
  EXPECT_TRUE(over_args->EquivalentTo(expected));
}

TEST(ArgMapTest, PtolThenLtopRoundTrips) {
  Conjunction c = Conj({Atom({{1, 1}, {3, 1}}, -6, CmpOp::kLe),
                        Atom({{2, -1}}, 2, CmpOp::kLe)});
  Conjunction over_vars = PtolConjunction(FlightLiteral(), c);
  auto back = LtopConjunction(FlightLiteral(), over_vars);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(Equivalent(*back, c));
}

TEST(ArgMapTest, PtolRepeatedVariableConjoins) {
  // p(X, X) with ($1 <= 4) & ($2 >= 10) is unsatisfiable on X.
  Literal lit(1, {2001, 2001});
  Conjunction c = Conj({Atom({{1, 1}}, -4, CmpOp::kLe),
                        Atom({{2, -1}}, 10, CmpOp::kLe)});
  Conjunction out = PtolConjunction(lit, c);
  EXPECT_FALSE(out.IsSatisfiable());
}

TEST(ArgMapTest, LtopRepeatedVariableInducesPositionEquality) {
  // LTOP(p(X, X), X <= 4) must give $1 = $2 & $1 <= 4 (Definition 2.8's
  // detour through distinct variables).
  Literal lit(1, {2001, 2001});
  Conjunction c = Conj({Atom({{2001, 1}}, -4, CmpOp::kLe)});
  auto out = LtopConjunction(lit, c);
  ASSERT_TRUE(out.ok());
  Conjunction expected;
  ASSERT_TRUE(expected.AddEquality(1, 2).ok());
  ASSERT_TRUE(expected.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  EXPECT_TRUE(Equivalent(*out, expected));
}

TEST(ArgMapTest, LtopProjectsAwayAuxiliaryVariables) {
  // Constraint mentions a variable not in the literal: projected away.
  Literal lit(1, {2001});
  // 2001 <= aux, aux <= 5  =>  $1 <= 5.
  Conjunction c = Conj({Atom({{2001, 1}, {2002, -1}}, 0, CmpOp::kLe),
                        Atom({{2002, 1}}, -5, CmpOp::kLe)});
  auto out = LtopConjunction(lit, c);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->ToString(), "$1 <= 5");
}

TEST(ArgMapTest, LtopCarriesSymbols) {
  Literal lit(1, {2001, 2002});
  Conjunction c;
  ASSERT_TRUE(c.BindSymbol(2001, 5).ok());
  auto out = LtopConjunction(lit, c);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetSymbol(1), std::optional<SymbolId>(5));
  EXPECT_FALSE(out->GetSymbol(2).has_value());
}

TEST(ArgMapTest, ZeroArityLiteral) {
  Literal lit(1, {});
  Conjunction sat = Conj({Atom({{2001, 1}}, -4, CmpOp::kLe)});
  auto out = LtopConjunction(lit, sat);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsSatisfiable());
  auto out_false = LtopConjunction(lit, Conjunction::False());
  ASSERT_TRUE(out_false.ok());
  EXPECT_FALSE(out_false->IsSatisfiable());
}

}  // namespace
}  // namespace cqlopt
