// Tests for the admission-controlled fair-share scheduler (src/service/
// scheduler.h). The deterministic cases freeze the worker pool with the
// "scheduler/worker-hold" failpoint — frozen workers never dequeue, so the
// admission queue fills to exactly its bound and shed/preemption decisions
// are reproducible — then thaw and assert the stride-scheduling dequeue
// order. The concurrency cases check the subsystem's core promise: any
// interleaving of queries and ingests through the scheduler lands on a
// final state byte-identical to a serial replay, at 1, 2, and 8 workers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/protocol.h"
#include "service/scheduler.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(CQLOPT_PROGRAMS_DIR) + "/" + name;
}

const char kFlightsQuery[] = "?- cheaporshort(msn, sea, Time, Cost).";

std::unique_ptr<QueryService> FlightsService() {
  auto service = QueryService::FromText(ReadFile(ProgramPath("flights.cql")),
                                        ReadFile(ProgramPath("flights_edb.cql")),
                                        {});
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 20000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// Records task completions in execution order.
struct OrderLog {
  std::mutex mu;
  std::vector<std::string> order;

  std::function<void()> Run(std::string label) {
    return [this, label = std::move(label)] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(label);
    };
  }

  std::vector<std::string> Snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return order;
  }
};

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(SchedulerTest, PriorityClassNamesRoundTrip) {
  for (PriorityClass priority :
       {PriorityClass::kInteractive, PriorityClass::kNormal,
        PriorityClass::kBatch}) {
    PriorityClass parsed;
    ASSERT_TRUE(ParsePriorityClass(PriorityClassName(priority), &parsed));
    EXPECT_EQ(parsed, priority);
  }
  PriorityClass parsed;
  EXPECT_FALSE(ParsePriorityClass("urgent", &parsed));
  EXPECT_FALSE(ParsePriorityClass("", &parsed));
}

TEST_F(SchedulerTest, ExecutesSubmittedTasks) {
  SchedulerOptions options;
  options.workers = 2;
  options.queue_depth = 32;
  Scheduler scheduler(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    Scheduler::Task task;
    task.run = [&ran] { ran.fetch_add(1); };
    EXPECT_TRUE(scheduler.TrySubmit(std::move(task)));
  }
  ASSERT_TRUE(WaitUntil([&] { return ran.load() == 10; }));
  SchedulerStats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.admitted, 10);
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.preempted, 0);
  EXPECT_EQ(stats.priority[static_cast<int>(PriorityClass::kNormal)].submitted,
            10);
  EXPECT_GE(stats.priority[static_cast<int>(PriorityClass::kNormal)].cost, 10);
}

TEST_F(SchedulerTest, ShedsDeterministicallyAtTheAdmissionBound) {
  SchedulerOptions options;
  options.workers = 2;
  options.queue_depth = 4;
  Scheduler scheduler(options);
  // Freeze the pool: no dequeue can happen while the hold is armed, so the
  // queue holds exactly queue_depth tasks and the rest shed synchronously.
  failpoint::Arm(failpoint::kSchedulerWorkerHold, 0, 0);
  std::atomic<int> ran{0};
  std::vector<int> shed_order;
  for (int i = 0; i < 7; ++i) {
    Scheduler::Task task;
    task.run = [&ran] { ran.fetch_add(1); };
    task.shed = [&shed_order, i] { shed_order.push_back(i); };
    bool admitted = scheduler.TrySubmit(std::move(task));
    EXPECT_EQ(admitted, i < 4) << "submission " << i;
  }
  SchedulerStats frozen = scheduler.Snapshot();
  EXPECT_EQ(frozen.queued, 4);
  EXPECT_EQ(frozen.admitted, 4);
  EXPECT_EQ(frozen.shed, 3);
  EXPECT_EQ(shed_order, (std::vector<int>{4, 5, 6}));

  failpoint::DisarmAll();
  ASSERT_TRUE(WaitUntil([&] { return ran.load() == 4; }));
  SchedulerStats thawed = scheduler.Snapshot();
  EXPECT_EQ(thawed.completed, 4);
  EXPECT_EQ(thawed.shed, 3);  // thawing releases work, not refusals
}

TEST_F(SchedulerTest, PreemptsTheNewestLowerClassTask) {
  SchedulerOptions options;
  options.workers = 1;
  options.queue_depth = 2;
  Scheduler scheduler(options);
  failpoint::Arm(failpoint::kSchedulerWorkerHold, 0, 0);
  OrderLog log;
  std::atomic<bool> b1_shed{false};
  for (const char* label : {"B0", "B1"}) {
    Scheduler::Task task;
    task.priority = PriorityClass::kBatch;
    task.run = log.Run(label);
    if (std::string(label) == "B1") {
      task.shed = [&b1_shed] { b1_shed.store(true); };
    }
    ASSERT_TRUE(scheduler.TrySubmit(std::move(task)));
  }
  // Queue full of batch work; an interactive arrival evicts the *newest*
  // batch task (B1) instead of being refused.
  Scheduler::Task interactive;
  interactive.priority = PriorityClass::kInteractive;
  interactive.run = log.Run("I0");
  EXPECT_TRUE(scheduler.TrySubmit(std::move(interactive)));
  EXPECT_TRUE(b1_shed.load());
  SchedulerStats frozen = scheduler.Snapshot();
  EXPECT_EQ(frozen.preempted, 1);
  EXPECT_EQ(frozen.queued, 2);
  EXPECT_EQ(frozen.shed, 0);  // preemption is not a refusal
  EXPECT_EQ(frozen.priority[static_cast<int>(PriorityClass::kBatch)].shed, 1);

  failpoint::DisarmAll();
  ASSERT_TRUE(WaitUntil([&] { return log.Snapshot().size() == 2; }));
  // Both classes start at virtual time 0; the tie goes to the higher
  // priority, so the interactive task runs before the surviving batch one.
  EXPECT_EQ(log.Snapshot(), (std::vector<std::string>{"I0", "B0"}));
}

TEST_F(SchedulerTest, StrideScheduleInterleavesByWeight) {
  SchedulerOptions options;
  options.workers = 1;
  options.queue_depth = 32;
  // Default weights: interactive 8, batch 1 — batch gets one dequeue per
  // eight interactive ones once both queues are loaded.
  Scheduler scheduler(options);
  failpoint::Arm(failpoint::kSchedulerWorkerHold, 0, 0);
  OrderLog log;
  for (int i = 0; i < 9; ++i) {
    Scheduler::Task task;
    task.priority = PriorityClass::kInteractive;
    task.run = log.Run("I" + std::to_string(i));
    ASSERT_TRUE(scheduler.TrySubmit(std::move(task)));
  }
  for (int i = 0; i < 2; ++i) {
    Scheduler::Task task;
    task.priority = PriorityClass::kBatch;
    task.run = log.Run("B" + std::to_string(i));
    ASSERT_TRUE(scheduler.TrySubmit(std::move(task)));
  }
  failpoint::DisarmAll();
  ASSERT_TRUE(WaitUntil([&] { return log.Snapshot().size() == 11; }));
  EXPECT_EQ(log.Snapshot(),
            (std::vector<std::string>{"I0", "B0", "I1", "I2", "I3", "I4",
                                      "I5", "I6", "I7", "I8", "B1"}));
}

TEST_F(SchedulerTest, DerivedFactChargesPushAClassBehind) {
  SchedulerOptions options;
  options.workers = 1;
  options.queue_depth = 8;
  Scheduler scheduler(options);
  // A large fact bill against interactive: its virtual time jumps far
  // ahead, so the next contested dequeue goes to batch despite the weights.
  scheduler.Charge(PriorityClass::kInteractive, 1000 * kFactsPerCostUnit);
  EXPECT_EQ(
      scheduler.Snapshot().priority[static_cast<int>(PriorityClass::kInteractive)]
          .cost,
      1000);

  failpoint::Arm(failpoint::kSchedulerWorkerHold, 0, 0);
  OrderLog log;
  Scheduler::Task interactive;
  interactive.priority = PriorityClass::kInteractive;
  interactive.run = log.Run("I0");
  ASSERT_TRUE(scheduler.TrySubmit(std::move(interactive)));
  Scheduler::Task batch;
  batch.priority = PriorityClass::kBatch;
  batch.run = log.Run("B0");
  ASSERT_TRUE(scheduler.TrySubmit(std::move(batch)));
  failpoint::DisarmAll();
  ASSERT_TRUE(WaitUntil([&] { return log.Snapshot().size() == 2; }));
  EXPECT_EQ(log.Snapshot(), (std::vector<std::string>{"B0", "I0"}));
}

TEST_F(SchedulerTest, StopDrainsAdmittedWorkAndShedsNewSubmissions) {
  SchedulerOptions options;
  options.workers = 1;
  options.queue_depth = 8;
  Scheduler scheduler(options);
  failpoint::Arm(failpoint::kSchedulerWorkerHold, 0, 0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) {
    Scheduler::Task task;
    task.run = [&ran] { ran.fetch_add(1); };
    ASSERT_TRUE(scheduler.TrySubmit(std::move(task)));
  }
  failpoint::DisarmAll();
  scheduler.Stop();
  // Stop drains: every admitted task ran before the workers exited.
  EXPECT_EQ(ran.load(), 3);
  std::atomic<bool> late_shed{false};
  Scheduler::Task late;
  late.run = [&ran] { ran.fetch_add(1); };
  late.shed = [&late_shed] { late_shed.store(true); };
  EXPECT_FALSE(scheduler.TrySubmit(std::move(late)));
  EXPECT_TRUE(late_shed.load());
  EXPECT_EQ(ran.load(), 3);
}

TEST_F(SchedulerTest, AttachInjectsCountersIntoServiceStats) {
  auto service = FlightsService();
  EXPECT_FALSE(service->Stats().scheduler.attached);
  {
    SchedulerOptions options;
    options.workers = 3;
    options.queue_depth = 5;
    Scheduler scheduler(options);
    scheduler.Attach(service.get());
    ServiceStats stats = service->Stats();
    EXPECT_TRUE(stats.scheduler.attached);
    EXPECT_EQ(stats.scheduler.workers, 3);
    EXPECT_EQ(stats.scheduler.queue_limit, 5);
    // The STATS verb renders the injected counters.
    std::vector<std::string> lines;
    HandleLine(*service, "STATS", &lines);
    bool found = false;
    for (const std::string& line : lines) {
      if (line == "sched_workers=3") found = true;
    }
    EXPECT_TRUE(found);
  }
  // The scheduler detaches on destruction; stats fall back to zeros.
  EXPECT_FALSE(service->Stats().scheduler.attached);
}

// ---------------------------------------------------------------------------
// The subsystem promise: concurrent interleaved queries and ingests through
// the scheduler reach a final state byte-identical to a serial replay, at
// every worker count.

std::string IngestLine(int thread, int round) {
  std::string tag = std::to_string(thread) + std::to_string(round);
  return "INGEST singleleg(cc" + tag + "a, cc" + tag + "b, " +
         std::to_string(100 + thread * 10 + round) + ", " +
         std::to_string(50 + thread) + ").";
}

std::vector<std::string> SortedLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

class SchedulerEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_P(SchedulerEquivalenceTest, ConcurrentScheduleMatchesSerialReplay) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  auto concurrent = FlightsService();
  SchedulerOptions options;
  options.workers = GetParam();
  options.queue_depth = 256;
  std::atomic<int> completed{0};
  std::atomic<int> malformed{0};
  {
    Scheduler scheduler(options);
    scheduler.Attach(concurrent.get());
    // Submitter threads race: each interleaves disjoint ingest batches with
    // queries under a different priority class.
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r) {
          for (const std::string& line :
               {IngestLine(t, r), std::string("QUERY pred,qrp,mg ") +
                                      kFlightsQuery}) {
            Scheduler::Task task;
            task.priority = static_cast<PriorityClass>(t % kPriorityClasses);
            task.run = [&, line] {
              std::vector<std::string> lines;
              LineOutcome outcome;
              HandleLine(*concurrent, line, &lines, &outcome);
              // Every mid-run response must be well-formed: OK + END
              // framing, whatever epoch it observed.
              if (lines.empty() || lines.front().rfind("OK", 0) != 0 ||
                  lines.back() != "END") {
                malformed.fetch_add(1);
              }
              completed.fetch_add(1);
            };
            ASSERT_TRUE(scheduler.TrySubmit(std::move(task)));
          }
        }
      });
    }
    for (std::thread& thread : submitters) thread.join();
    ASSERT_TRUE(WaitUntil(
        [&] { return completed.load() == kThreads * kRounds * 2; }));
    SchedulerStats stats = scheduler.Snapshot();
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.completed, kThreads * kRounds * 2);
  }
  EXPECT_EQ(malformed.load(), 0);

  // Serial replay: the same ingest batches in a fixed order on a fresh
  // service. Batches are disjoint, so each burns exactly one epoch in any
  // order and the final EDB is interleaving-independent.
  auto serial = FlightsService();
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      std::vector<std::string> lines;
      HandleLine(*serial, IngestLine(t, r), &lines);
      ASSERT_EQ(lines.front().rfind("OK", 0), 0u) << lines.front();
    }
  }
  auto concurrent_answers = concurrent->Execute(kFlightsQuery, "pred,qrp,mg");
  auto serial_answers = serial->Execute(kFlightsQuery, "pred,qrp,mg");
  ASSERT_TRUE(concurrent_answers.ok());
  ASSERT_TRUE(serial_answers.ok());
  EXPECT_EQ(concurrent_answers->answers, serial_answers->answers);
  EXPECT_EQ(concurrent_answers->epoch, serial_answers->epoch);
  EXPECT_EQ(concurrent->epoch(), kThreads * kRounds);
  // RenderStateText lists facts in insertion order, which legitimately
  // differs across interleavings — compare the sorted fact lines.
  EXPECT_EQ(SortedLines(concurrent->RenderStateText()),
            SortedLines(serial->RenderStateText()));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SchedulerEquivalenceTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "workers" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cqlopt
