// Tests for the write-ahead log (src/service/wal.h): record framing and
// checksums, torn-tail truncation, atomic snapshot replacement, and the
// injected WAL fault sites. The durability contract under test is the one
// QueryService::Recover relies on: ReadAll returns exactly the payloads of
// records whose append fully completed, and never invents or reorders data.

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/loader.h"
#include "service/query_service.h"
#include "service/wal.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

/// mkdtemp'd scratch directory, removed with its known files on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/cqlopt-wal-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path.assign(buf.data());
  }
  ~TempDir() {
    if (path.empty()) return;
    for (const char* name : {"/wal.log", "/snapshot.cql", "/snapshot.tmp"}) {
      ::unlink((path + name).c_str());
    }
    ::rmdir(path.c_str());
  }
};

std::unique_ptr<Wal> OpenWal(const std::string& dir) {
  auto wal = Wal::Open(dir);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return std::move(*wal);
}

long FileSize(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return -1;
  off_t size = ::lseek(fd, 0, SEEK_END);
  ::close(fd);
  return static_cast<long>(size);
}

TEST(WalTest, AppendReadAllRoundtrips) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  const std::vector<std::string> payloads = {
      "p(1).\n", "", "q(2, 3).\nq(4, 5).\n"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(wal->Append(payload).ok());
  }
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->payloads, payloads);
  EXPECT_EQ(read->truncated_bytes, 0);
  EXPECT_TRUE(read->warning.empty());

  // A fresh handle on the same directory (the recovery path) sees the same.
  wal.reset();
  auto reopened = OpenWal(dir.path);
  auto again = reopened->ReadAll();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->payloads, payloads);
}

TEST(WalTest, TornTailIsTruncatedOnce) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("a(1).\n").ok());
  ASSERT_TRUE(wal->Append("b(2).\n").ok());
  const long intact_size = FileSize(wal->log_path());

  // Simulate a crash mid-append: garbage that parses as a torn header.
  int fd = ::open(wal->log_path().c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "\x06\x00", 2), 2);
  ::close(fd);

  wal.reset();
  auto recovered = OpenWal(dir.path);
  auto read = recovered->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->payloads.size(), 2u);
  EXPECT_EQ(read->payloads[0], "a(1).\n");
  EXPECT_EQ(read->truncated_bytes, 2);
  EXPECT_NE(read->warning.find("dropped 2 trailing byte(s)"),
            std::string::npos)
      << read->warning;
  EXPECT_EQ(FileSize(recovered->log_path()), intact_size);

  // The truncation is persistent: a second pass is clean.
  auto clean = recovered->ReadAll();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->truncated_bytes, 0);
  EXPECT_EQ(clean->payloads.size(), 2u);

  // And appends after recovery land where the torn record was cut away.
  ASSERT_TRUE(recovered->Append("c(3).\n").ok());
  auto grown = recovered->ReadAll();
  ASSERT_TRUE(grown.ok());
  ASSERT_EQ(grown->payloads.size(), 3u);
  EXPECT_EQ(grown->payloads[2], "c(3).\n");
}

TEST(WalTest, ChecksumMismatchDropsTheTailRecord) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("good(1).\n").ok());
  const long before_last = FileSize(wal->log_path());
  ASSERT_TRUE(wal->Append("flipped(2).\n").ok());

  // Flip one payload byte of the last record.
  int fd = ::open(wal->log_path().c_str(), O_WRONLY);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, "X", 1, before_last + 8), 1);
  ::close(fd);

  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "good(1).\n");
  EXPECT_GT(read->truncated_bytes, 0);
  EXPECT_NE(read->warning.find("checksum mismatch"), std::string::npos)
      << read->warning;
}

TEST(WalTest, HeaderShorterThanMagicReopensAsAnEmptyLog) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  // A crash while writing the initial 8-byte magic leaves a shorter file;
  // nothing was ever committed, so Open must restart it, not brick it.
  std::string path = dir.path + "/wal.log";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "CQL", 3), 3);
  ::close(fd);

  auto wal = OpenWal(dir.path);
  ASSERT_NE(wal, nullptr);
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->payloads.empty());
  EXPECT_EQ(read->truncated_bytes, 0);
  ASSERT_TRUE(wal->Append("revived(1).\n").ok());
  auto again = wal->ReadAll();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->payloads.size(), 1u);
  EXPECT_EQ(again->payloads[0], "revived(1).\n");
}

TEST(WalTest, AppendsAreRejectedAfterATornWriteUntilReadAll) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("kept(1).\n").ok());
  failpoint::Arm(failpoint::kWalShortWrite);
  Status torn = wal->Append("lost(2).\n");
  failpoint::DisarmAll();
  ASSERT_FALSE(torn.ok());

  // The handle is poisoned: a record acknowledged after the torn bytes
  // would be silently discarded by recovery, so Append must refuse.
  Status refused = wal->Append("after(3).\n");
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("rejects appends"), std::string::npos)
      << refused.message();

  // ReadAll truncates the torn tail and re-opens the handle for appends.
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_GT(read->truncated_bytes, 0);
  ASSERT_TRUE(wal->Append("after(3).\n").ok());
  auto again = wal->ReadAll();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->payloads.size(), 2u);
  EXPECT_EQ(again->payloads[1], "after(3).\n");
}

TEST(WalTest, ShortWriteFailpointLeavesATornRecord) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("kept(1).\n").ok());
  failpoint::Arm(failpoint::kWalShortWrite);
  Status torn = wal->Append("lost(2).\n");
  failpoint::DisarmAll();
  ASSERT_FALSE(torn.ok());
  EXPECT_NE(torn.message().find("injected torn write"), std::string::npos);

  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "kept(1).\n");
  EXPECT_GT(read->truncated_bytes, 0);
}

TEST(WalTest, FsyncFailpointKeepsTheRecordIntact) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  failpoint::Arm(failpoint::kWalFsync);
  Status failed = wal->Append("written(1).\n");
  failpoint::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("injected fsync failure"),
            std::string::npos);

  // The bytes did reach the file (only the durability barrier "failed"), so
  // recovery legitimately surfaces the batch — the documented contract for
  // an error from Append.
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "written(1).\n");
  EXPECT_EQ(read->truncated_bytes, 0);
}

TEST(WalTest, SnapshotRoundtripsAndReplacesAtomically) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  bool found = true;
  WalSnapshot snapshot;
  ASSERT_TRUE(wal->ReadSnapshot(&found, &snapshot).ok());
  EXPECT_FALSE(found);

  ASSERT_TRUE(wal->WriteSnapshot({3, 0, {}, "a(1).\n"}).ok());
  ASSERT_TRUE(wal->ReadSnapshot(&found, &snapshot).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(snapshot.epoch, 3);
  EXPECT_EQ(snapshot.statements, "a(1).\n");

  ASSERT_TRUE(wal->WriteSnapshot({7, 0, {}, "a(1).\nb(2).\n"}).ok());
  ASSERT_TRUE(wal->ReadSnapshot(&found, &snapshot).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(snapshot.epoch, 7);
  EXPECT_EQ(snapshot.statements, "a(1).\nb(2).\n");
  // The temp file never survives a completed replace.
  EXPECT_EQ(FileSize(dir.path + "/snapshot.tmp"), -1);
}

TEST(WalTest, CorruptSnapshotIsAnErrorNotAMiss) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->WriteSnapshot({2, 0, {}, "a(1).\n"}).ok());
  int fd = ::open(wal->snapshot_path().c_str(), O_WRONLY);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, "Z", 1, 20), 1);  // inside the payload
  ::close(fd);

  bool found = false;
  WalSnapshot snapshot;
  Status read = wal->ReadSnapshot(&found, &snapshot);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.message().find("checksum"), std::string::npos)
      << read.ToString();
}

TEST(WalTest, ResetEmptiesTheLog) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("a(1).\n").ok());
  ASSERT_TRUE(wal->Append("b(2).\n").ok());
  EXPECT_GT(wal->log_bytes(), 8);
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->log_bytes(), 8);  // just the magic header
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->payloads.empty());
  // The log still appends fine after a reset (O_APPEND tracks the new end).
  ASSERT_TRUE(wal->Append("c(3).\n").ok());
  auto grown = wal->ReadAll();
  ASSERT_TRUE(grown.ok());
  ASSERT_EQ(grown->payloads.size(), 1u);
  EXPECT_EQ(grown->payloads[0], "c(3).\n");
}

TEST(WalTest, OpenRejectsAForeignFile) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string path = dir.path + "/wal.log";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "not a log at all", 16), 16);
  ::close(fd);
  auto wal = Wal::Open(dir.path);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("not a CQLWAL1 log"),
            std::string::npos);
}

TEST(WalRecordTest, MixedInsertRetractRecordsRoundtripThroughTheLog) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  const std::vector<WalRecord> records = {
      {WalRecord::Kind::kInsert, 0, 0, "a(1).\n"},
      {WalRecord::Kind::kInsertTtl, 40, 100, "b(2).\n"},
      {WalRecord::Kind::kRetract, 0, 0, "a(1).\n"},
      {WalRecord::Kind::kExpire, 140, 0, "b(2).\n"},
      {WalRecord::Kind::kTick, 200, 0, ""},
  };
  for (const WalRecord& record : records) {
    ASSERT_TRUE(wal->Append(EncodeWalRecord(record)).ok());
  }
  // Recovery path: a fresh handle reads the payloads back and every one
  // decodes to the record that was committed, fields intact.
  wal.reset();
  auto reopened = OpenWal(dir.path);
  auto read = reopened->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->payloads.size(), records.size());
  EXPECT_EQ(read->truncated_bytes, 0);
  for (size_t i = 0; i < records.size(); ++i) {
    auto decoded = DecodeWalRecord(read->payloads[i]);
    ASSERT_TRUE(decoded.ok()) << "record " << i << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, records[i].kind) << "record " << i;
    EXPECT_EQ(decoded->now_ms, records[i].now_ms) << "record " << i;
    EXPECT_EQ(decoded->ttl_ms, records[i].ttl_ms) << "record " << i;
    EXPECT_EQ(decoded->statements, records[i].statements) << "record " << i;
  }
  // Plain inserts keep the legacy encoding: the payload IS the bare text,
  // so insert-only logs stay byte-compatible with pre-§14 readers.
  EXPECT_EQ(read->payloads[0], "a(1).\n");
}

TEST(WalRecordTest, LegacyInsertOnlyLogDecodesAsInsertRecords) {
  // A log written by a pre-§14 cqld holds bare statement text; every
  // payload must decode as a kInsert with the text untouched (including
  // the empty batch).
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  const std::vector<std::string> payloads = {"p(1).\n", "",
                                             "q(2, 3).\nq(4, 5).\n"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(wal->Append(payload).ok());
  }
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    auto decoded = DecodeWalRecord(read->payloads[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->kind, WalRecord::Kind::kInsert);
    EXPECT_EQ(decoded->statements, payloads[i]);
    EXPECT_EQ(decoded->now_ms, 0);
    EXPECT_EQ(decoded->ttl_ms, 0);
  }
}

TEST(WalRecordTest, UnknownBatchKindByteFailsReadAllNamingTheOffset) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("fine(1).\n").ok());
  // 0x06 is inside the reserved control range but unassigned — the
  // signature of a log written by a newer cqld. The record is durable and
  // checksum-valid, so ReadAll must fail loudly, NOT truncate it away.
  ASSERT_TRUE(wal->Append(std::string("\x06", 1) + "future-data").ok());
  const long size_before = FileSize(wal->log_path());
  auto read = wal->ReadAll();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("unknown batch-kind byte 0x06"),
            std::string::npos)
      << read.status().ToString();
  EXPECT_NE(read.status().message().find("at offset"), std::string::npos)
      << read.status().ToString();
  EXPECT_EQ(FileSize(wal->log_path()), size_before);
}

TEST(WalRecordTest, TruncatedKindedRecordHeaderIsATypedDecodeError) {
  // A kinded payload cut short of its fixed fields passed its checksum, so
  // it is a decode error naming the kind — never silently dropped data.
  auto short_ttl = DecodeWalRecord(std::string("\x04", 1) + "abc");
  ASSERT_FALSE(short_ttl.ok());
  EXPECT_EQ(short_ttl.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(short_ttl.status().message().find("insert-ttl"),
            std::string::npos)
      << short_ttl.status().ToString();
  auto short_tick = DecodeWalRecord(std::string("\x05", 1));
  ASSERT_FALSE(short_tick.ok());
  EXPECT_NE(short_tick.status().message().find("tick"), std::string::npos);
  auto unknown = DecodeWalRecord(std::string("\x07", 1) + "x");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown batch-kind byte 0x07"),
            std::string::npos)
      << unknown.status().ToString();
}

TEST(WalSnapshotTest, V2RoundtripsClockAndDeadlines) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  WalSnapshot written;
  written.epoch = 5;
  written.now_ms = 150;
  written.deadlines = {{200, "a(1).\n"}, {240, "b(2).\n"}};
  written.statements = "c(3).\n";
  ASSERT_TRUE(wal->WriteSnapshot(written).ok());
  bool found = false;
  WalSnapshot read;
  ASSERT_TRUE(wal->ReadSnapshot(&found, &read).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(read.epoch, written.epoch);
  EXPECT_EQ(read.now_ms, written.now_ms);
  EXPECT_EQ(read.deadlines, written.deadlines);
  EXPECT_EQ(read.statements, written.statements);
}

TEST(WalSnapshotTest, LegacyV1SnapshotIsStillReadable) {
  // A CQLSNAP1 file written by a pre-§14 cqld: magic, u32 len, u32 crc32,
  // u64 epoch, statements. It must load with clock 0 and no deadlines.
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string payload;
  const uint64_t epoch = 7;
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>((epoch >> (8 * i)) & 0xFFu));
  }
  payload += "a(1).\nb(2).\n";
  auto crc32 = [](const std::string& data) {
    uint32_t crc = 0xFFFFFFFFu;
    for (char ch : data) {
      crc ^= static_cast<unsigned char>(ch);
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
      }
    }
    return crc ^ 0xFFFFFFFFu;
  };
  std::string file = "CQLSNAP1";
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    file.push_back(static_cast<char>((len >> (8 * i)) & 0xFFu));
  }
  for (int i = 0; i < 4; ++i) {
    file.push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
  }
  file += payload;
  std::string path = dir.path + "/snapshot.cql";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, file.data(), file.size()),
            static_cast<ssize_t>(file.size()));
  ::close(fd);

  auto wal = OpenWal(dir.path);
  bool found = false;
  WalSnapshot snapshot;
  Status read = wal->ReadSnapshot(&found, &snapshot);
  ASSERT_TRUE(read.ok()) << read.ToString();
  ASSERT_TRUE(found);
  EXPECT_EQ(snapshot.epoch, 7);
  EXPECT_EQ(snapshot.now_ms, 0);
  EXPECT_TRUE(snapshot.deadlines.empty());
  EXPECT_EQ(snapshot.statements, "a(1).\nb(2).\n");
}

// ---------------------------------------------------------------------------
// Log identity: the byte sequence a follower's feed coordinates index into.

TEST(WalIdentityTest, ReopenedLogIsByteIdenticalWithTheSameOffsets) {
  // Replication coordinates (base_epoch, index) survive a primary restart
  // only because the log's identity survives: a reopened handle must see
  // exactly the payload bytes, order, and byte offsets the dying handle
  // acknowledged. One record per batch kind, binary control bytes included.
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  WalRecord retract;
  retract.kind = WalRecord::Kind::kRetract;
  retract.statements = "p(a).\n";
  WalRecord ttl;
  ttl.kind = WalRecord::Kind::kInsertTtl;
  ttl.now_ms = 5;
  ttl.ttl_ms = 100;
  ttl.statements = "q(b).\n";
  WalRecord tick;
  tick.kind = WalRecord::Kind::kTick;
  tick.now_ms = 40;
  std::vector<std::string> payloads = {
      "p(a).\n",  // legacy bare-insert encoding
      EncodeWalRecord(retract),
      EncodeWalRecord(ttl),
      EncodeWalRecord(tick),
  };
  long expected_bytes = 8;  // magic header
  for (const std::string& payload : payloads) {
    Status appended = wal->Append(payload);
    ASSERT_TRUE(appended.ok()) << appended.ToString();
    expected_bytes += 8 + static_cast<long>(payload.size());  // [len][crc]
    EXPECT_EQ(wal->log_bytes(), expected_bytes);
  }
  auto first = wal->ReadAll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->payloads, payloads);
  wal.reset();

  auto reopened = OpenWal(dir.path);
  EXPECT_EQ(reopened->log_bytes(), expected_bytes);
  EXPECT_EQ(FileSize(dir.path + "/wal.log"), expected_bytes);
  auto second = reopened->ReadAll();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->payloads, payloads);
  EXPECT_EQ(second->truncated_bytes, 0);
  EXPECT_TRUE(second->warning.empty());

  // A round through decode/encode preserves every payload byte-for-byte —
  // the feed ships these bytes verbatim, so re-encoding must be identity.
  for (const std::string& payload : second->payloads) {
    Result<WalRecord> record = DecodeWalRecord(payload);
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    EXPECT_EQ(EncodeWalRecord(*record), payload);
  }
}

// ---------------------------------------------------------------------------
// Compaction boundaries: a replication reader parked in the pre-compaction
// log, and feed coordinates across a crash that straddles the boundary.

std::unique_ptr<QueryService> TinyDurableService(const std::string& wal_dir) {
  ServiceOptions options;
  options.wal_dir = wal_dir;
  auto service = QueryService::FromText(
      "reach(X, Y) :- edge(X, Y).\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z).\n",
      "edge(a, b).\n", options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

TEST(WalFeedTest, ReaderInThePreCompactionLogRenegotiatesCleanly) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto service = TinyDurableService(dir.path);
  ASSERT_TRUE(service->Ingest("edge(b, c).\n").ok());
  ASSERT_TRUE(service->Ingest("edge(c, d).\n").ok());
  ASSERT_TRUE(service->Ingest("edge(d, e).\n").ok());

  // A reader parked mid-log on the virgin generation (base 0, index 1).
  ReplicationBatch mid;
  ASSERT_TRUE(service->FetchReplication(0, 1, 1, &mid).ok());
  EXPECT_FALSE(mid.snapshot);
  ASSERT_EQ(mid.records.size(), 1u);
  EXPECT_EQ(mid.next_index, 2u);
  EXPECT_EQ(mid.feed_size, 3u);

  // Compaction retires that generation. The parked coordinates must not be
  // served stale records or an error loop — the fetch renegotiates with a
  // full snapshot positioned at the new generation's head.
  ASSERT_TRUE(service->Compact().ok());
  const int64_t generation = service->epoch();
  ReplicationBatch reneg;
  ASSERT_TRUE(service->FetchReplication(0, 2, 8, &reneg).ok());
  EXPECT_TRUE(reneg.snapshot);
  EXPECT_EQ(reneg.base_epoch, generation);
  EXPECT_EQ(reneg.snap.epoch, generation);
  EXPECT_EQ(reneg.next_index, reneg.feed_size);

  // New commits land in the new generation; a crash+recover across the
  // boundary must rebuild the identical feed, keeping the renegotiated
  // coordinates valid.
  ASSERT_TRUE(service->Ingest("edge(e, f).\n").ok());
  ReplicationBatch before_crash;
  ASSERT_TRUE(service->FetchReplication(generation, 0, 8, &before_crash).ok());
  ASSERT_FALSE(before_crash.snapshot);
  service.reset();

  auto recovered = TinyDurableService(dir.path);
  RecoverOutcome outcome;
  ASSERT_TRUE(recovered->Recover(&outcome).ok());
  EXPECT_TRUE(outcome.snapshot_loaded);
  EXPECT_EQ(outcome.batches_replayed, 1);
  ReplicationBatch after_crash;
  ASSERT_TRUE(recovered->FetchReplication(generation, 0, 8, &after_crash).ok());
  ASSERT_FALSE(after_crash.snapshot);
  EXPECT_EQ(after_crash.records, before_crash.records);
  EXPECT_EQ(after_crash.feed_size, before_crash.feed_size);
  EXPECT_EQ(after_crash.state_crc, before_crash.state_crc);
}

TEST(WalTest, RenderedFactStatementsReparseToTheSameFacts) {
  // The WAL payload invariant: RenderFactStatement output is loader syntax,
  // and re-parsing it reproduces the facts — including non-ground
  // constraint facts, which Fact::ToString cannot round-trip.
  auto symbols = std::make_shared<SymbolTable>();
  Database original;
  ASSERT_TRUE(LoadDatabaseText("leg(msn, ord, 50, 80).\n"
                               "cap(X) :- X <= 3.\n"
                               "band(X, Y) :- X >= 1, Y = 2.\n",
                               symbols, &original)
                  .ok());
  std::string rendered = RenderDatabaseText(original, *symbols);
  Database reparsed;
  auto loaded = LoadDatabaseText(rendered, symbols, &reparsed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString() << "\n" << rendered;
  EXPECT_EQ(*loaded, 3);
  EXPECT_EQ(RenderDatabaseText(reparsed, *symbols), rendered);
}

}  // namespace
}  // namespace cqlopt
