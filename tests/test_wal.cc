// Tests for the write-ahead log (src/service/wal.h): record framing and
// checksums, torn-tail truncation, atomic snapshot replacement, and the
// injected WAL fault sites. The durability contract under test is the one
// QueryService::Recover relies on: ReadAll returns exactly the payloads of
// records whose append fully completed, and never invents or reorders data.

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/loader.h"
#include "service/wal.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

/// mkdtemp'd scratch directory, removed with its known files on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/cqlopt-wal-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path.assign(buf.data());
  }
  ~TempDir() {
    if (path.empty()) return;
    for (const char* name : {"/wal.log", "/snapshot.cql", "/snapshot.tmp"}) {
      ::unlink((path + name).c_str());
    }
    ::rmdir(path.c_str());
  }
};

std::unique_ptr<Wal> OpenWal(const std::string& dir) {
  auto wal = Wal::Open(dir);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return std::move(*wal);
}

long FileSize(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return -1;
  off_t size = ::lseek(fd, 0, SEEK_END);
  ::close(fd);
  return static_cast<long>(size);
}

TEST(WalTest, AppendReadAllRoundtrips) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  const std::vector<std::string> payloads = {
      "p(1).\n", "", "q(2, 3).\nq(4, 5).\n"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(wal->Append(payload).ok());
  }
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->payloads, payloads);
  EXPECT_EQ(read->truncated_bytes, 0);
  EXPECT_TRUE(read->warning.empty());

  // A fresh handle on the same directory (the recovery path) sees the same.
  wal.reset();
  auto reopened = OpenWal(dir.path);
  auto again = reopened->ReadAll();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->payloads, payloads);
}

TEST(WalTest, TornTailIsTruncatedOnce) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("a(1).\n").ok());
  ASSERT_TRUE(wal->Append("b(2).\n").ok());
  const long intact_size = FileSize(wal->log_path());

  // Simulate a crash mid-append: garbage that parses as a torn header.
  int fd = ::open(wal->log_path().c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "\x06\x00", 2), 2);
  ::close(fd);

  wal.reset();
  auto recovered = OpenWal(dir.path);
  auto read = recovered->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->payloads.size(), 2u);
  EXPECT_EQ(read->payloads[0], "a(1).\n");
  EXPECT_EQ(read->truncated_bytes, 2);
  EXPECT_NE(read->warning.find("dropped 2 trailing byte(s)"),
            std::string::npos)
      << read->warning;
  EXPECT_EQ(FileSize(recovered->log_path()), intact_size);

  // The truncation is persistent: a second pass is clean.
  auto clean = recovered->ReadAll();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->truncated_bytes, 0);
  EXPECT_EQ(clean->payloads.size(), 2u);

  // And appends after recovery land where the torn record was cut away.
  ASSERT_TRUE(recovered->Append("c(3).\n").ok());
  auto grown = recovered->ReadAll();
  ASSERT_TRUE(grown.ok());
  ASSERT_EQ(grown->payloads.size(), 3u);
  EXPECT_EQ(grown->payloads[2], "c(3).\n");
}

TEST(WalTest, ChecksumMismatchDropsTheTailRecord) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("good(1).\n").ok());
  const long before_last = FileSize(wal->log_path());
  ASSERT_TRUE(wal->Append("flipped(2).\n").ok());

  // Flip one payload byte of the last record.
  int fd = ::open(wal->log_path().c_str(), O_WRONLY);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, "X", 1, before_last + 8), 1);
  ::close(fd);

  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "good(1).\n");
  EXPECT_GT(read->truncated_bytes, 0);
  EXPECT_NE(read->warning.find("checksum mismatch"), std::string::npos)
      << read->warning;
}

TEST(WalTest, HeaderShorterThanMagicReopensAsAnEmptyLog) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  // A crash while writing the initial 8-byte magic leaves a shorter file;
  // nothing was ever committed, so Open must restart it, not brick it.
  std::string path = dir.path + "/wal.log";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "CQL", 3), 3);
  ::close(fd);

  auto wal = OpenWal(dir.path);
  ASSERT_NE(wal, nullptr);
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->payloads.empty());
  EXPECT_EQ(read->truncated_bytes, 0);
  ASSERT_TRUE(wal->Append("revived(1).\n").ok());
  auto again = wal->ReadAll();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->payloads.size(), 1u);
  EXPECT_EQ(again->payloads[0], "revived(1).\n");
}

TEST(WalTest, AppendsAreRejectedAfterATornWriteUntilReadAll) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("kept(1).\n").ok());
  failpoint::Arm(failpoint::kWalShortWrite);
  Status torn = wal->Append("lost(2).\n");
  failpoint::DisarmAll();
  ASSERT_FALSE(torn.ok());

  // The handle is poisoned: a record acknowledged after the torn bytes
  // would be silently discarded by recovery, so Append must refuse.
  Status refused = wal->Append("after(3).\n");
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("rejects appends"), std::string::npos)
      << refused.message();

  // ReadAll truncates the torn tail and re-opens the handle for appends.
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_GT(read->truncated_bytes, 0);
  ASSERT_TRUE(wal->Append("after(3).\n").ok());
  auto again = wal->ReadAll();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->payloads.size(), 2u);
  EXPECT_EQ(again->payloads[1], "after(3).\n");
}

TEST(WalTest, ShortWriteFailpointLeavesATornRecord) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("kept(1).\n").ok());
  failpoint::Arm(failpoint::kWalShortWrite);
  Status torn = wal->Append("lost(2).\n");
  failpoint::DisarmAll();
  ASSERT_FALSE(torn.ok());
  EXPECT_NE(torn.message().find("injected torn write"), std::string::npos);

  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "kept(1).\n");
  EXPECT_GT(read->truncated_bytes, 0);
}

TEST(WalTest, FsyncFailpointKeepsTheRecordIntact) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  failpoint::Arm(failpoint::kWalFsync);
  Status failed = wal->Append("written(1).\n");
  failpoint::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("injected fsync failure"),
            std::string::npos);

  // The bytes did reach the file (only the durability barrier "failed"), so
  // recovery legitimately surfaces the batch — the documented contract for
  // an error from Append.
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "written(1).\n");
  EXPECT_EQ(read->truncated_bytes, 0);
}

TEST(WalTest, SnapshotRoundtripsAndReplacesAtomically) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  bool found = true;
  WalSnapshot snapshot;
  ASSERT_TRUE(wal->ReadSnapshot(&found, &snapshot).ok());
  EXPECT_FALSE(found);

  ASSERT_TRUE(wal->WriteSnapshot({3, 0, {}, "a(1).\n"}).ok());
  ASSERT_TRUE(wal->ReadSnapshot(&found, &snapshot).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(snapshot.epoch, 3);
  EXPECT_EQ(snapshot.statements, "a(1).\n");

  ASSERT_TRUE(wal->WriteSnapshot({7, 0, {}, "a(1).\nb(2).\n"}).ok());
  ASSERT_TRUE(wal->ReadSnapshot(&found, &snapshot).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(snapshot.epoch, 7);
  EXPECT_EQ(snapshot.statements, "a(1).\nb(2).\n");
  // The temp file never survives a completed replace.
  EXPECT_EQ(FileSize(dir.path + "/snapshot.tmp"), -1);
}

TEST(WalTest, CorruptSnapshotIsAnErrorNotAMiss) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->WriteSnapshot({2, 0, {}, "a(1).\n"}).ok());
  int fd = ::open(wal->snapshot_path().c_str(), O_WRONLY);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, "Z", 1, 20), 1);  // inside the payload
  ::close(fd);

  bool found = false;
  WalSnapshot snapshot;
  Status read = wal->ReadSnapshot(&found, &snapshot);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.message().find("checksum"), std::string::npos)
      << read.ToString();
}

TEST(WalTest, ResetEmptiesTheLog) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("a(1).\n").ok());
  ASSERT_TRUE(wal->Append("b(2).\n").ok());
  EXPECT_GT(wal->log_bytes(), 8);
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->log_bytes(), 8);  // just the magic header
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->payloads.empty());
  // The log still appends fine after a reset (O_APPEND tracks the new end).
  ASSERT_TRUE(wal->Append("c(3).\n").ok());
  auto grown = wal->ReadAll();
  ASSERT_TRUE(grown.ok());
  ASSERT_EQ(grown->payloads.size(), 1u);
  EXPECT_EQ(grown->payloads[0], "c(3).\n");
}

TEST(WalTest, OpenRejectsAForeignFile) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string path = dir.path + "/wal.log";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "not a log at all", 16), 16);
  ::close(fd);
  auto wal = Wal::Open(dir.path);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("not a CQLWAL1 log"),
            std::string::npos);
}

TEST(WalRecordTest, MixedInsertRetractRecordsRoundtripThroughTheLog) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  const std::vector<WalRecord> records = {
      {WalRecord::Kind::kInsert, 0, 0, "a(1).\n"},
      {WalRecord::Kind::kInsertTtl, 40, 100, "b(2).\n"},
      {WalRecord::Kind::kRetract, 0, 0, "a(1).\n"},
      {WalRecord::Kind::kExpire, 140, 0, "b(2).\n"},
      {WalRecord::Kind::kTick, 200, 0, ""},
  };
  for (const WalRecord& record : records) {
    ASSERT_TRUE(wal->Append(EncodeWalRecord(record)).ok());
  }
  // Recovery path: a fresh handle reads the payloads back and every one
  // decodes to the record that was committed, fields intact.
  wal.reset();
  auto reopened = OpenWal(dir.path);
  auto read = reopened->ReadAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->payloads.size(), records.size());
  EXPECT_EQ(read->truncated_bytes, 0);
  for (size_t i = 0; i < records.size(); ++i) {
    auto decoded = DecodeWalRecord(read->payloads[i]);
    ASSERT_TRUE(decoded.ok()) << "record " << i << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, records[i].kind) << "record " << i;
    EXPECT_EQ(decoded->now_ms, records[i].now_ms) << "record " << i;
    EXPECT_EQ(decoded->ttl_ms, records[i].ttl_ms) << "record " << i;
    EXPECT_EQ(decoded->statements, records[i].statements) << "record " << i;
  }
  // Plain inserts keep the legacy encoding: the payload IS the bare text,
  // so insert-only logs stay byte-compatible with pre-§14 readers.
  EXPECT_EQ(read->payloads[0], "a(1).\n");
}

TEST(WalRecordTest, LegacyInsertOnlyLogDecodesAsInsertRecords) {
  // A log written by a pre-§14 cqld holds bare statement text; every
  // payload must decode as a kInsert with the text untouched (including
  // the empty batch).
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  const std::vector<std::string> payloads = {"p(1).\n", "",
                                             "q(2, 3).\nq(4, 5).\n"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(wal->Append(payload).ok());
  }
  auto read = wal->ReadAll();
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    auto decoded = DecodeWalRecord(read->payloads[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->kind, WalRecord::Kind::kInsert);
    EXPECT_EQ(decoded->statements, payloads[i]);
    EXPECT_EQ(decoded->now_ms, 0);
    EXPECT_EQ(decoded->ttl_ms, 0);
  }
}

TEST(WalRecordTest, UnknownBatchKindByteFailsReadAllNamingTheOffset) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  ASSERT_TRUE(wal->Append("fine(1).\n").ok());
  // 0x06 is inside the reserved control range but unassigned — the
  // signature of a log written by a newer cqld. The record is durable and
  // checksum-valid, so ReadAll must fail loudly, NOT truncate it away.
  ASSERT_TRUE(wal->Append(std::string("\x06", 1) + "future-data").ok());
  const long size_before = FileSize(wal->log_path());
  auto read = wal->ReadAll();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("unknown batch-kind byte 0x06"),
            std::string::npos)
      << read.status().ToString();
  EXPECT_NE(read.status().message().find("at offset"), std::string::npos)
      << read.status().ToString();
  EXPECT_EQ(FileSize(wal->log_path()), size_before);
}

TEST(WalRecordTest, TruncatedKindedRecordHeaderIsATypedDecodeError) {
  // A kinded payload cut short of its fixed fields passed its checksum, so
  // it is a decode error naming the kind — never silently dropped data.
  auto short_ttl = DecodeWalRecord(std::string("\x04", 1) + "abc");
  ASSERT_FALSE(short_ttl.ok());
  EXPECT_EQ(short_ttl.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(short_ttl.status().message().find("insert-ttl"),
            std::string::npos)
      << short_ttl.status().ToString();
  auto short_tick = DecodeWalRecord(std::string("\x05", 1));
  ASSERT_FALSE(short_tick.ok());
  EXPECT_NE(short_tick.status().message().find("tick"), std::string::npos);
  auto unknown = DecodeWalRecord(std::string("\x07", 1) + "x");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown batch-kind byte 0x07"),
            std::string::npos)
      << unknown.status().ToString();
}

TEST(WalSnapshotTest, V2RoundtripsClockAndDeadlines) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto wal = OpenWal(dir.path);
  WalSnapshot written;
  written.epoch = 5;
  written.now_ms = 150;
  written.deadlines = {{200, "a(1).\n"}, {240, "b(2).\n"}};
  written.statements = "c(3).\n";
  ASSERT_TRUE(wal->WriteSnapshot(written).ok());
  bool found = false;
  WalSnapshot read;
  ASSERT_TRUE(wal->ReadSnapshot(&found, &read).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(read.epoch, written.epoch);
  EXPECT_EQ(read.now_ms, written.now_ms);
  EXPECT_EQ(read.deadlines, written.deadlines);
  EXPECT_EQ(read.statements, written.statements);
}

TEST(WalSnapshotTest, LegacyV1SnapshotIsStillReadable) {
  // A CQLSNAP1 file written by a pre-§14 cqld: magic, u32 len, u32 crc32,
  // u64 epoch, statements. It must load with clock 0 and no deadlines.
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string payload;
  const uint64_t epoch = 7;
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>((epoch >> (8 * i)) & 0xFFu));
  }
  payload += "a(1).\nb(2).\n";
  auto crc32 = [](const std::string& data) {
    uint32_t crc = 0xFFFFFFFFu;
    for (char ch : data) {
      crc ^= static_cast<unsigned char>(ch);
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
      }
    }
    return crc ^ 0xFFFFFFFFu;
  };
  std::string file = "CQLSNAP1";
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    file.push_back(static_cast<char>((len >> (8 * i)) & 0xFFu));
  }
  for (int i = 0; i < 4; ++i) {
    file.push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
  }
  file += payload;
  std::string path = dir.path + "/snapshot.cql";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, file.data(), file.size()),
            static_cast<ssize_t>(file.size()));
  ::close(fd);

  auto wal = OpenWal(dir.path);
  bool found = false;
  WalSnapshot snapshot;
  Status read = wal->ReadSnapshot(&found, &snapshot);
  ASSERT_TRUE(read.ok()) << read.ToString();
  ASSERT_TRUE(found);
  EXPECT_EQ(snapshot.epoch, 7);
  EXPECT_EQ(snapshot.now_ms, 0);
  EXPECT_TRUE(snapshot.deadlines.empty());
  EXPECT_EQ(snapshot.statements, "a(1).\nb(2).\n");
}

TEST(WalTest, RenderedFactStatementsReparseToTheSameFacts) {
  // The WAL payload invariant: RenderFactStatement output is loader syntax,
  // and re-parsing it reproduces the facts — including non-ground
  // constraint facts, which Fact::ToString cannot round-trip.
  auto symbols = std::make_shared<SymbolTable>();
  Database original;
  ASSERT_TRUE(LoadDatabaseText("leg(msn, ord, 50, 80).\n"
                               "cap(X) :- X <= 3.\n"
                               "band(X, Y) :- X >= 1, Y = 2.\n",
                               symbols, &original)
                  .ok());
  std::string rendered = RenderDatabaseText(original, *symbols);
  Database reparsed;
  auto loaded = LoadDatabaseText(rendered, symbols, &reparsed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString() << "\n" << rendered;
  EXPECT_EQ(*loaded, 3);
  EXPECT_EQ(RenderDatabaseText(reparsed, *symbols), rendered);
}

}  // namespace
}  // namespace cqlopt
