#include "transform/qrp_constraints.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

const ConstraintSet& Of(const Program& p, const InferenceResult& r,
                        const std::string& pred) {
  return r.constraints.at(p.symbols->LookupPredicate(pred));
}

TEST(QrpConstraintsTest, Example41MinimumQrpConstraints) {
  Program p = ParseOrDie(
      "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n"
      "r2: p1(X, Y) :- b1(X, Y).\n"
      "r3: p2(X) :- b2(X).\n");
  auto result = GenQrpConstraints(p, p.symbols->LookupPredicate("q"), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  // Minimum QRP for p1 is ($1+$2 <= 6) & ($1 >= 2); for p2 it is $1 <= 4 —
  // the semantic inference Balbin's C transformation cannot make.
  ConstraintSet expected_p1 = ConstraintSet::Of(
      Conj({Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe),
            Atom({{1, -1}}, 2, CmpOp::kLe)}));
  EXPECT_TRUE(Of(p, *result, "p1").EquivalentTo(expected_p1));
  ConstraintSet expected_p2 =
      ConstraintSet::Of(Conj({Atom({{1, 1}}, -4, CmpOp::kLe)}));
  EXPECT_TRUE(Of(p, *result, "p2").EquivalentTo(expected_p2));
  // Database predicates inherit the same selections (index pushdown,
  // Section 4.6).
  EXPECT_TRUE(Of(p, *result, "b2").EquivalentTo(expected_p2));
  // The query predicate keeps `true`.
  EXPECT_TRUE(Of(p, *result, "q").IsTriviallyTrue());
}

TEST(QrpConstraintsTest, Example42WithoutPredStepLosesConstraint) {
  // Example 4.2: without propagating the predicate constraint $2 <= $1
  // first, the QRP fixpoint for `a` widens to true.
  Program p = ParseOrDie(
      "r1: q(X, Y) :- a(X, Y), X <= 10.\n"
      "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
      "r3: a(X, Y) :- a(X, Z), a(Z, Y).\n");
  auto result = GenQrpConstraints(p, p.symbols->LookupPredicate("q"), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_TRUE(Of(p, *result, "a").IsTriviallyTrue())
      << RenderConstraintSet(Of(p, *result, "a"), *p.symbols, DollarNames());
}

TEST(QrpConstraintsTest, Example51WithPredConstraintsGetsMinimum) {
  // Program P1 of Examples 4.2/5.1 — the predicate constraint $2 <= $1 made
  // explicit in the rules. QRP for `a` becomes ($1<=10 & $2<=$1), and the
  // procedure terminates in two iterations.
  Program p = ParseOrDie(
      "r1: q(X, Y) :- a(X, Y), X <= 10, Y <= X.\n"
      "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
      "r3: a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.\n");
  auto result = GenQrpConstraints(p, p.symbols->LookupPredicate("q"), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  ConstraintSet expected = ConstraintSet::Of(
      Conj({Atom({{1, 1}}, -10, CmpOp::kLe),
            Atom({{2, 1}, {1, -1}}, 0, CmpOp::kLe)}));
  EXPECT_TRUE(Of(p, *result, "a").EquivalentTo(expected))
      << RenderConstraintSet(Of(p, *result, "a"), *p.symbols, DollarNames());
  // Example 5.1's observation: far below the combinatorial bound.
  EXPECT_LE(result->iterations, 4);
}

TEST(QrpConstraintsTest, FlightQrpIsDisjunction) {
  Program p = ParseOrDie(
      "r0: q1(S, D, T, C) :- cheaporshort(S, D, T, C).\n"
      "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n"
      "r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n"
      "r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.\n"
      "r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, "
      "C2), T = T1 + T2 + 30, C = C1 + C2.\n");
  auto result = GenQrpConstraints(p, p.symbols->LookupPredicate("q1"), {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->converged);
  // WITHOUT predicate constraints pre-propagated, the recursive rule r4
  // destroys the selection: projecting T <= 240 & T = T1 + T2 + 30 onto T1
  // gives `true` because T2 is unbounded below. flight's QRP widens to
  // true — this is exactly why Constraint_rewrite runs
  // Gen_Prop_predicate_constraints first (Sections 4.4–4.5); the
  // with-pred-constraints variant is checked in test_constraint_rewrite.
  EXPECT_TRUE(Of(p, *result, "flight").IsTriviallyTrue())
      << RenderConstraintSet(Of(p, *result, "flight"), *p.symbols,
                             DollarNames());
  // cheaporshort still gets `true` (it is the query wrapper's target).
  EXPECT_TRUE(Of(p, *result, "cheaporshort").IsTriviallyTrue());
}

TEST(QrpConstraintsTest, UnusedPredicateStaysFalse) {
  Program p = ParseOrDie(
      "q(X) :- a(X).\n"
      "a(X) :- e(X).\n"
      "orphan(X) :- f(X).\n");
  auto result = GenQrpConstraints(p, p.symbols->LookupPredicate("q"), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Of(p, *result, "orphan").is_false());
  EXPECT_TRUE(Of(p, *result, "f").is_false());
}

TEST(QrpConstraintsTest, CapWidensToTrue) {
  // A program whose QRP constraint keeps shifting: q calls p with an
  // ever-decreasing bound — the disjunct universe is infinite.
  Program p = ParseOrDie(
      "q(X) :- p(X), X <= 100.\n"
      "p(X) :- p(Y), Y = X + 1.\n"
      "p(X) :- e(X).\n");
  InferenceOptions options;
  options.max_iterations = 4;
  options.max_disjuncts = 4;
  auto result = GenQrpConstraints(p, p.symbols->LookupPredicate("q"), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_TRUE(Of(p, *result, "p").IsTriviallyTrue());
}

}  // namespace
}  // namespace cqlopt
