#include "constraint/constraint_set.h"

#include <gtest/gtest.h>

#include "constraint/implication.h"

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

Conjunction Le(VarId v, int bound) {
  return Conj({Atom({{v, 1}}, -bound, CmpOp::kLe)});
}
Conjunction Ge(VarId v, int bound) {
  return Conj({Atom({{v, -1}}, bound, CmpOp::kLe)});
}

TEST(ConstraintSetTest, DefaultIsFalse) {
  ConstraintSet s;
  EXPECT_TRUE(s.is_false());
  EXPECT_FALSE(s.IsSatisfiable());
  EXPECT_EQ(s.ToString(), "false");
}

TEST(ConstraintSetTest, TrueIsTriviallyTrue) {
  EXPECT_TRUE(ConstraintSet::True().IsTriviallyTrue());
  EXPECT_TRUE(ConstraintSet::True().IsSatisfiable());
  EXPECT_FALSE(ConstraintSet::Of(Le(1, 5)).IsTriviallyTrue());
}

TEST(ConstraintSetTest, AddDisjunctRejectsUnsatisfiable) {
  ConstraintSet s;
  EXPECT_FALSE(s.AddDisjunct(Conjunction::False()));
  EXPECT_TRUE(s.is_false());
}

TEST(ConstraintSetTest, AddDisjunctRejectsImplied) {
  // {x <= 5} already covers x <= 3.
  ConstraintSet s = ConstraintSet::Of(Le(1, 5));
  EXPECT_FALSE(s.AddDisjunct(Le(1, 3)));
  EXPECT_EQ(s.disjuncts().size(), 1u);
}

TEST(ConstraintSetTest, AddDisjunctDropsNowRedundant) {
  // Adding x <= 5 to {x <= 3} replaces the weaker disjunct.
  ConstraintSet s = ConstraintSet::Of(Le(1, 3));
  EXPECT_TRUE(s.AddDisjunct(Le(1, 5)));
  ASSERT_EQ(s.disjuncts().size(), 1u);
  EXPECT_TRUE(Equivalent(s.disjuncts()[0], Le(1, 5)));
}

TEST(ConstraintSetTest, AddDisjunctCoveredByUnionStillAdds) {
  // x <= 3 v x >= 3 covers x = 3, but no single disjunct does, and
  // AddDisjunct prunes with the full-disjunction test.
  ConstraintSet s = ConstraintSet::Of(Le(1, 3));
  s.AddDisjunct(Ge(1, 3));
  Conjunction eq = Conj({Atom({{1, 1}}, -3, CmpOp::kEq)});
  EXPECT_FALSE(s.AddDisjunct(eq));
}

TEST(ConstraintSetTest, UnionWithReportsChange) {
  ConstraintSet a = ConstraintSet::Of(Le(1, 3));
  ConstraintSet b = ConstraintSet::Of(Le(1, 2));
  EXPECT_FALSE(a.UnionWith(b));  // implied, no change
  ConstraintSet c = ConstraintSet::Of(Ge(2, 7));
  EXPECT_TRUE(a.UnionWith(c));
  EXPECT_EQ(a.disjuncts().size(), 2u);
}

TEST(ConstraintSetTest, AndDistributesAndPrunes) {
  // (x<=3 v x>=7) & (x>=0) = (0<=x<=3) v (x>=7).
  ConstraintSet a = ConstraintSet::Of(Le(1, 3));
  a.AddDisjunct(Ge(1, 7));
  ConstraintSet b = ConstraintSet::Of(Ge(1, 0));
  auto product = ConstraintSet::And(a, b);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->disjuncts().size(), 2u);
  // (x<=3) & (x>=7) would be dropped:
  ConstraintSet c = ConstraintSet::Of(Ge(1, 7));
  auto empty = ConstraintSet::And(ConstraintSet::Of(Le(1, 3)), c);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->is_false());
}

TEST(ConstraintSetTest, ImpliesIsDefinition23) {
  // (x<=2 v x<=3) implies (x<=5); not conversely.
  ConstraintSet a = ConstraintSet::Of(Le(1, 2));
  a.AddDisjunct(Le(1, 3));
  ConstraintSet b = ConstraintSet::Of(Le(1, 5));
  EXPECT_TRUE(a.Implies(b));
  EXPECT_FALSE(b.Implies(a));
  EXPECT_TRUE(a.Implies(ConstraintSet::True()));
  EXPECT_TRUE(ConstraintSet::False().Implies(a));
}

TEST(ConstraintSetTest, EquivalentToCatchesReorderings) {
  ConstraintSet a = ConstraintSet::Of(Le(1, 3));
  a.AddDisjunct(Ge(1, 7));
  ConstraintSet b = ConstraintSet::Of(Ge(1, 7));
  b.AddDisjunct(Le(1, 3));
  EXPECT_TRUE(a.EquivalentTo(b));
}

TEST(ConstraintSetTest, ProjectEachDisjunct) {
  // (x+y<=6 & x>=2) v (y>=9), projected on y: (y<=4) v (y>=9).
  Conjunction d1 = Conj({Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe),
                         Atom({{1, -1}}, 2, CmpOp::kLe)});
  ConstraintSet s = ConstraintSet::Of(d1);
  s.AddDisjunct(Ge(2, 9));
  auto projected = s.Project({2});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->disjuncts().size(), 2u);
  ConstraintSet expected = ConstraintSet::Of(Le(2, 4));
  expected.AddDisjunct(Ge(2, 9));
  EXPECT_TRUE(projected->EquivalentTo(expected));
}

TEST(ConstraintSetTest, RenameAppliesToAllDisjuncts) {
  ConstraintSet s = ConstraintSet::Of(Le(1, 3));
  s.AddDisjunct(Ge(1, 7));
  ConstraintSet renamed = s.Rename({{1, 9}});
  for (const Conjunction& d : renamed.disjuncts()) {
    for (VarId v : d.Vars()) EXPECT_EQ(v, 9);
  }
}

TEST(ConstraintSetTest, SimplifyDropsRedundantDisjunctsAndAtoms) {
  ConstraintSet s;
  Conjunction redundant = Conj({Atom({{1, 1}}, -3, CmpOp::kLe),
                                Atom({{1, 1}}, -10, CmpOp::kLe)});
  // Bypass AddDisjunct's pruning by building disjuncts with overlap.
  s.AddDisjunct(redundant);
  s.Simplify();
  ASSERT_EQ(s.disjuncts().size(), 1u);
  EXPECT_EQ(s.disjuncts()[0].linear().size(), 1u);
}

}  // namespace
}  // namespace cqlopt
