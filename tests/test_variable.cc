#include "constraint/variable.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

TEST(VarAllocatorTest, FreshIsMonotone) {
  VarAllocator alloc(2000);
  VarId a = alloc.Fresh();
  VarId b = alloc.Fresh();
  EXPECT_EQ(a, 2000);
  EXPECT_EQ(b, 2001);
}

TEST(VarAllocatorTest, FreshBlockReservesRange) {
  VarAllocator alloc(3000);
  VarId first = alloc.FreshBlock(5);
  EXPECT_EQ(first, 3000);
  EXPECT_EQ(alloc.Fresh(), 3005);
}

TEST(VarAllocatorTest, DefaultFloorAboveArgumentPositions) {
  VarAllocator alloc;
  // Argument positions use ids 1..arity; fresh rule variables must never
  // collide with them.
  EXPECT_GE(alloc.Fresh(), 1024);
}

TEST(VarNameTest, PositionsRenderAsDollars) {
  EXPECT_EQ(VarName(1), "$1");
  EXPECT_EQ(VarName(1023), "$1023");
  EXPECT_EQ(VarName(1024), "v1024");
  EXPECT_EQ(VarName(0), "v0");
  EXPECT_EQ(VarName(-1), "v-1");
}

TEST(VarUnionTest, MergesSortedSets) {
  std::vector<VarId> a = {1, 3, 5};
  std::vector<VarId> b = {2, 3, 6};
  EXPECT_EQ(VarUnion(a, b), (std::vector<VarId>{1, 2, 3, 5, 6}));
  EXPECT_EQ(VarUnion({}, b), b);
  EXPECT_EQ(VarUnion(a, {}), a);
  EXPECT_EQ(VarUnion({}, {}), std::vector<VarId>{});
}

}  // namespace
}  // namespace cqlopt
