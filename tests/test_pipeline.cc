#include "transform/pipeline.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "eval/seminaive.h"

namespace cqlopt {
namespace {

struct Parsed {
  Program program;
  Query query;
};

Parsed ParseWithQuery(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queries.size(), 1u);
  return Parsed{parsed->program, parsed->queries[0]};
}

TEST(PipelineTest, ParseStepsRoundTrip) {
  auto steps = ParseSteps("pred,qrp,mg");
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 3u);
  EXPECT_EQ(StepsName(*steps), "pred,qrp,mg");
  auto spaced = ParseSteps(" mg , qrp ");
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(StepsName(*spaced), "mg,qrp");
  EXPECT_TRUE(ParseSteps("balbin").ok());
  EXPECT_FALSE(ParseSteps("bogus").ok());
  EXPECT_EQ(StepsName({}), "(identity)");
}

TEST(PipelineTest, MagicTwiceRejected) {
  Parsed in = ParseWithQuery("t(X) :- e(X). ?- t(1).");
  auto steps = ParseSteps("mg,mg");
  ASSERT_TRUE(steps.ok());
  auto result = ApplyPipeline(in.program, in.query, *steps, {});
  EXPECT_FALSE(result.ok());
}

// The Example 7.1 program: qrp-then-magic beats magic-then-qrp.
const char* kExample71 =
    "r1: q(X, Y) :- a1(X, Y), X <= 4.\n"
    "r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).\n"
    "r3: a2(X, Y) :- b2(X, Y).\n"
    "r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n"
    "?- q(X, Y).\n";

// The Example 7.2 program: magic-then-qrp beats qrp-then-magic.
const char* kExample72 =
    "r1: q(X, Y) :- a1(X, Y).\n"
    "r2: a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).\n"
    "r3: a2(X, Y) :- b2(X, Y).\n"
    "r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n"
    "?- q(1, Y).\n";

Database Example7Db(SymbolTable* symbols, uint64_t seed) {
  Database db;
  EXPECT_TRUE(AddBinaryRelation(symbols, "b1", 25, 12, seed, &db).ok());
  EXPECT_TRUE(AddBinaryRelation(symbols, "b2", 25, 12, seed + 1, &db).ok());
  return db;
}

TEST(PipelineTest, AllSequencesQueryEquivalent) {
  // Property: every transformation sequence preserves the query answers.
  for (const char* source : {kExample71, kExample72}) {
    Parsed in = ParseWithQuery(source);
    Database db = Example7Db(in.program.symbols.get(), 99);
    auto baseline_run = Evaluate(in.program, db, {});
    ASSERT_TRUE(baseline_run.ok());
    auto baseline = QueryAnswers(*baseline_run, in.query);
    ASSERT_TRUE(baseline.ok());
    for (const char* spec :
         {"qrp", "pred,qrp", "mg", "qrp,mg", "mg,qrp", "pred,qrp,mg",
          "balbin", "balbin,mg"}) {
      auto steps = ParseSteps(spec);
      ASSERT_TRUE(steps.ok());
      auto rewritten = ApplyPipeline(in.program, in.query, *steps, {});
      ASSERT_TRUE(rewritten.ok()) << spec;
      auto run = Evaluate(rewritten->program, db, {});
      ASSERT_TRUE(run.ok()) << spec;
      auto answers = QueryAnswers(*run, rewritten->query);
      ASSERT_TRUE(answers.ok()) << spec;
      EXPECT_TRUE(SameAnswers(*baseline, *answers))
          << source << " under " << spec;
    }
  }
}

size_t TotalFacts(const Parsed& in, const Database& db, const char* spec) {
  auto steps = ParseSteps(spec);
  EXPECT_TRUE(steps.ok());
  auto rewritten = ApplyPipeline(in.program, in.query, *steps, {});
  EXPECT_TRUE(rewritten.ok()) << spec;
  auto run = Evaluate(rewritten->program, db, {});
  EXPECT_TRUE(run.ok()) << spec;
  // Count derived facts only (exclude the EDB).
  return run->db.TotalFacts() - db.TotalFacts();
}

TEST(PipelineTest, Example71QrpFirstWins) {
  // Theorem 7.2's regime: P^{qrp,mg} computes a subset of P^{mg,qrp}.
  Parsed in = ParseWithQuery(kExample71);
  Database db = Example7Db(in.program.symbols.get(), 7);
  size_t qrp_mg = TotalFacts(in, db, "qrp,mg");
  size_t mg_qrp = TotalFacts(in, db, "mg,qrp");
  EXPECT_LE(qrp_mg, mg_qrp);
}

TEST(PipelineTest, Example72MagicFirstWins) {
  // Example 7.2: the selection sits below the query constant; applying
  // magic first lets qrp see the magic predicate's constraints.
  Parsed in = ParseWithQuery(kExample72);
  Database db = Example7Db(in.program.symbols.get(), 8);
  size_t qrp_mg = TotalFacts(in, db, "qrp,mg");
  size_t mg_qrp = TotalFacts(in, db, "mg,qrp");
  EXPECT_LE(mg_qrp, qrp_mg);
}

TEST(PipelineTest, OptimalSequenceNeverWorse) {
  // Theorem 7.10: pred,qrp,mg computes a subset of the facts of every
  // other sequence (magic applied once).
  for (const char* source : {kExample71, kExample72}) {
    Parsed in = ParseWithQuery(source);
    Database db = Example7Db(in.program.symbols.get(), 21);
    size_t best = TotalFacts(in, db, "pred,qrp,mg");
    for (const char* spec : {"mg", "qrp,mg", "mg,qrp", "mg,pred,qrp"}) {
      EXPECT_LE(best, TotalFacts(in, db, spec)) << source << " vs " << spec;
    }
  }
}

TEST(PipelineTest, GmtStepPreservesAnswers) {
  // The gmt step (Section 6.2) as a pipeline member, alone and after pred:
  // same answers as the unspecialized program on Example 6.1.
  Parsed in = ParseWithQuery(
      "p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).\n"
      "p(X, Y) :- u(X, Y).\n"
      "q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).\n"
      "?- X > 10, p(X, Y).\n");
  Database db;
  SymbolTable* symbols = in.program.symbols.get();
  EXPECT_TRUE(AddBinaryRelation(symbols, "u", 15, 30, 3, &db).ok());
  EXPECT_TRUE(AddBinaryRelation(symbols, "q1", 15, 30, 4, &db).ok());
  EXPECT_TRUE(AddBinaryRelation(symbols, "q2", 15, 30, 5, &db).ok());
  auto baseline_run = Evaluate(in.program, db, {});
  ASSERT_TRUE(baseline_run.ok());
  auto baseline = QueryAnswers(*baseline_run, in.query);
  ASSERT_TRUE(baseline.ok());
  for (const char* spec : {"gmt", "pred,gmt"}) {
    auto steps = ParseSteps(spec);
    ASSERT_TRUE(steps.ok());
    auto rewritten = ApplyPipeline(in.program, in.query, *steps, {});
    ASSERT_TRUE(rewritten.ok()) << spec;
    auto run = Evaluate(rewritten->program, db, {});
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->stats.all_ground) << spec;
    auto answers = QueryAnswers(*run, rewritten->query);
    ASSERT_TRUE(answers.ok());
    EXPECT_TRUE(SameAnswers(*baseline, *answers)) << spec;
  }
  // gmt counts as the single magic application.
  auto steps = ParseSteps("gmt,mg");
  ASSERT_TRUE(steps.ok());
  EXPECT_FALSE(ApplyPipeline(in.program, in.query, *steps, {}).ok());
}

TEST(PipelineTest, ExampleD1MagicRuleCarriesSelectionOnlyInQrpFirst) {
  // Example D.1's structural difference: in P^{qrp,mg} the magic rule for
  // a2 carries X <= 4 (the QRP constraint propagated into a1's rule before
  // magic); in P^{mg,qrp} it does not.
  Parsed in = ParseWithQuery(kExample71);
  auto count_magic_inequalities = [&](const char* spec) {
    auto steps = ParseSteps(spec);
    EXPECT_TRUE(steps.ok());
    auto rewritten = ApplyPipeline(in.program, in.query, *steps, {});
    EXPECT_TRUE(rewritten.ok());
    int n = 0;
    for (const Rule& rule : rewritten->program.rules) {
      const std::string& head =
          in.program.symbols->PredicateName(rule.head.pred);
      if (head.rfind("m_a2", 0) != 0) continue;
      for (const LinearConstraint& atom : rule.constraints.linear()) {
        if (atom.op() != CmpOp::kEq) ++n;
      }
    }
    return n;
  };
  EXPECT_GT(count_magic_inequalities("qrp,mg"),
            count_magic_inequalities("mg,qrp"));
}

TEST(PipelineTest, ExampleD2QrpAfterMagicConstrainsMagicRule) {
  // Example D.2's structural difference: only in P^{mg,qrp} does the rule
  // defining m_a1 carry X <= 4.
  Parsed in = ParseWithQuery(kExample72);
  auto m_a1_rule_inequalities = [&](const char* spec) {
    auto steps = ParseSteps(spec);
    EXPECT_TRUE(steps.ok());
    auto rewritten = ApplyPipeline(in.program, in.query, *steps, {});
    EXPECT_TRUE(rewritten.ok());
    int n = 0;
    for (const Rule& rule : rewritten->program.rules) {
      const std::string& head =
          in.program.symbols->PredicateName(rule.head.pred);
      if (head.rfind("m_a1", 0) != 0) continue;
      if (rule.body.empty()) continue;  // skip seeds
      for (const LinearConstraint& atom : rule.constraints.linear()) {
        if (atom.op() != CmpOp::kEq) ++n;
      }
    }
    return n;
  };
  EXPECT_GT(m_a1_rule_inequalities("mg,qrp"),
            m_a1_rule_inequalities("qrp,mg"));
}

TEST(PipelineTest, RedundantConsecutiveStepsStable) {
  // Theorems 7.4/7.5: consecutive applications of the same rewriting are
  // redundant — same computed facts.
  Parsed in = ParseWithQuery(kExample71);
  Database db = Example7Db(in.program.symbols.get(), 5);
  EXPECT_EQ(TotalFacts(in, db, "pred,pred"), TotalFacts(in, db, "pred"));
  EXPECT_EQ(TotalFacts(in, db, "qrp,qrp"), TotalFacts(in, db, "qrp"));
}

}  // namespace
}  // namespace cqlopt
