#include "eval/validate.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/loader.h"
#include "eval/seminaive.h"
#include "transform/pipeline.h"

namespace cqlopt {
namespace {

Program Parse(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed->program);
}

TEST(ValidateProgram, AcceptsWellFormedPrograms) {
  Program program = Parse(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y), X >= 0.\n"
      "q(X) :- t(X, Y), Y <= 4.\n");
  EXPECT_TRUE(ValidateProgram(program).ok());
}

TEST(ValidateProgram, AcceptsConstraintFacts) {
  // Body-free constraint facts bind their head variables through the
  // constraint store, not through body literals.
  Program program = Parse("bound(X) :- X >= 0, X <= 7.\n");
  EXPECT_TRUE(ValidateProgram(program).ok());
}

TEST(ValidateProgram, RejectsUnboundHeadVariable) {
  Program program = Parse("p(X, Y) :- e(X).\n");
  Status status = ValidateProgram(program);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unbound"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("Y"), std::string::npos)
      << status.ToString();
}

TEST(ValidateProgram, ConstraintBindingCountsAsBound) {
  // A head variable mentioned only in the constraint part is bound: the
  // rule derives a (possibly non-ground) constraint fact over it.
  Program program = Parse("p(X, Y) :- e(X), Y <= 3.\n");
  EXPECT_TRUE(ValidateProgram(program).ok());
}

TEST(ValidateProgram, RejectsConstraintOnlyRecursion) {
  Program program = Parse(
      "p(X) :- p(X), X >= 0.\n"
      "q(X) :- p(X), X <= 4.\n");
  Status status = ValidateProgram(program);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("no exit rule"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("p"), std::string::npos)
      << status.ToString();
}

TEST(ValidateProgram, RejectsMutualRecursionWithoutExit) {
  Program program = Parse(
      "a(X) :- b(X), X >= 0.\n"
      "b(X) :- a(X), X <= 9.\n");
  Status status = ValidateProgram(program);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("no exit rule"), std::string::npos)
      << status.ToString();
}

TEST(ValidateProgram, ExitRuleGroundsRecursion) {
  Program program = Parse(
      "p(X) :- e(X).\n"
      "p(X) :- p(Y), X - Y = 1, X <= 9.\n");
  EXPECT_TRUE(ValidateProgram(program).ok());
}

TEST(ValidateProgram, OptionsRelaxFreeHeadVars) {
  // The magic rewrite legitimately emits head positions bound nowhere in
  // the rule (unbound adornment positions); the engine path validates
  // with this check off.
  Program program = Parse("m_fib(G, X) :- m_fib(N, H), N - G = 1, N >= 1.\n"
                          "m_fib(X, Y) :- e(X, Y).\n");
  ValidateOptions relaxed;
  relaxed.reject_free_head_vars = false;
  EXPECT_TRUE(ValidateProgram(program, relaxed).ok());
}

TEST(ValidateProgram, OptionsRelaxConstraintOnlyRecursion) {
  Program program = Parse("p(X) :- p(X), X >= 0.\n");
  ValidateOptions relaxed;
  relaxed.reject_constraint_only_recursion = false;
  EXPECT_TRUE(ValidateProgram(program, relaxed).ok());
}

TEST(EvaluatePreflight, CleanStatusInsteadOfBadFixpoint) {
  // Evaluate rejects constraint-only recursion up front with a clean
  // Status (no assertion, no silent empty fixpoint).
  Program program = Parse(
      "p(X) :- p(X), X >= 0.\n"
      "q(X) :- p(X), X <= 4.\n");
  Database db;
  auto run = Evaluate(program, db, {});
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().ToString().find("no exit rule"), std::string::npos)
      << run.status().ToString();
}

TEST(EvaluatePreflight, AcceptsMagicStyleFreeHeadPositions) {
  // The engine path must keep accepting magic-rewrite output, which
  // contains free head positions for unbound adornment arguments.
  auto parsed = ParseProgram(
      "fib(N, F) :- N = 0, F = 0.\n"
      "fib(N, F) :- N = 1, F = 1.\n"
      "fib(N, F) :- fib(N1, F1), fib(N2, F2), N - N1 = 1, N - N2 = 2,\n"
      "             F - F1 - F2 = 0, N >= 2, N <= 8.\n"
      "?- fib(N, F), N = 6.\n");
  ASSERT_TRUE(parsed.ok());
  auto steps = ParseSteps("mg");
  ASSERT_TRUE(steps.ok());
  auto rewritten = ApplyPipeline(parsed->program, parsed->queries[0], *steps,
                                 {});
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  Database db;
  auto run = Evaluate(rewritten->program, db, {});
  EXPECT_TRUE(run.ok()) << run.status().ToString();
}

TEST(PipelinePrune, BalbinVacuousComponentIsPruned) {
  // Regression for a fuzz-found interplay (cqlfuzz seed
  // 3511415465901126993): the balbin C-transformation can prove every
  // exit rule of a recursive component dead under the query's pushed
  // selections, leaving a primed component whose only rules are in-SCC —
  // constraint-only recursion that the engine pre-flight rejects.
  // ApplyPipeline now prunes such underivable shells, so its output must
  // always pass the engine pre-flight.
  auto parsed = ParseProgram(
      "g2: p1(X4, X3, X3) :- e0(X3), X4 = 0.\n"
      "g3: p1(X4, X4, X2) :- p1(X4, X2, X4).\n"
      "g5: p2(X4, X1, X1) :- p1(X1, X2, X4), -X1 + X6 <= 0, X1 = 4.\n"
      "?- p2(A, B, C).\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto steps = ParseSteps("balbin");
  ASSERT_TRUE(steps.ok());
  auto rewritten = ApplyPipeline(parsed->program, parsed->queries[0], *steps,
                                 {});
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  ValidateOptions engine;
  engine.reject_free_head_vars = false;
  EXPECT_TRUE(ValidateProgram(rewritten->program, engine).ok());
  Database db;
  auto loaded = LoadDatabaseText("e0(3). e0(4).\n",
                                 rewritten->program.symbols, &db);
  ASSERT_TRUE(loaded.ok());
  auto run = Evaluate(rewritten->program, db, {});
  EXPECT_TRUE(run.ok()) << run.status().ToString();
}

}  // namespace
}  // namespace cqlopt
