#include "transform/constraint_rewrite.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "core/equivalence.h"
#include "eval/seminaive.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

const char* kFlights =
    "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n"
    "r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n"
    "r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.\n"
    "r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), "
    "T = T1 + T2 + 30, C = C1 + C2.\n";

TEST(ConstraintRewriteTest, Example43FlightQrpIsMinimum) {
  Program p = ParseOrDie(kFlights);
  PredId cheap = p.symbols->LookupPredicate("cheaporshort");
  auto result = ConstraintRewrite(p, cheap, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->predicate_converged);
  EXPECT_TRUE(result->qrp_converged);
  // flight's minimum QRP constraint (Example 4.3):
  //   ($3>0 & $3<=240 & $4>0) | ($3>0 & $4>0 & $4<=150).
  PredId flight = p.symbols->LookupPredicate("flight");
  ConstraintSet expected = ConstraintSet::Of(
      Conj({Atom({{3, -1}}, 0, CmpOp::kLt), Atom({{3, 1}}, -240, CmpOp::kLe),
            Atom({{4, -1}}, 0, CmpOp::kLt)}));
  expected.AddDisjunct(
      Conj({Atom({{3, -1}}, 0, CmpOp::kLt), Atom({{4, -1}}, 0, CmpOp::kLt),
            Atom({{4, 1}}, -150, CmpOp::kLe)}));
  EXPECT_TRUE(result->qrp_constraints.at(flight).EquivalentTo(expected))
      << RenderConstraintSet(result->qrp_constraints.at(flight), *p.symbols,
                             DollarNames());
}

TEST(ConstraintRewriteTest, Example43NoIrrelevantFlightFactsComputed) {
  Program p = ParseOrDie(kFlights);
  PredId cheap = p.symbols->LookupPredicate("cheaporshort");
  auto result = ConstraintRewrite(p, cheap, {});
  ASSERT_TRUE(result.ok());
  Database db;
  auto leg = [&](const char* s, const char* d, int t, int c) {
    ASSERT_TRUE(db.AddGroundFact(p.symbols.get(), "singleleg",
                                 {Database::Value::Symbol(s),
                                  Database::Value::Symbol(d),
                                  Database::Value::Number(Rational(t)),
                                  Database::Value::Number(Rational(c))})
                    .ok());
  };
  // A leg that is both too long and too expensive: irrelevant.
  leg("a", "b", 300, 200);
  leg("b", "c", 100, 100);
  leg("a", "c", 100, 100);
  auto run = Evaluate(result->program, db, {});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.all_ground);
  PredId flightp = p.symbols->LookupPredicate("flight'");
  const Relation* rel = run->db.Find(
      flightp == SymbolTable::kNoPred
          ? p.symbols->LookupPredicate("flight")
          : flightp);
  ASSERT_NE(rel, nullptr);
  // No flight' fact with Time > 240 AND Cost > 150 may appear.
  for (size_t i = 0; i < rel->size(); ++i) {
    Conjunction bad = rel->fact(i).constraint;
    ASSERT_TRUE(bad.AddLinear(Atom({{3, -1}}, 240, CmpOp::kLt)).ok());
    ASSERT_TRUE(bad.AddLinear(Atom({{4, -1}}, 150, CmpOp::kLt)).ok());
    EXPECT_FALSE(bad.IsSatisfiable())
        << rel->fact(i).ToString(*p.symbols);
  }
}

TEST(ConstraintRewriteTest, QueryEquivalenceOnEdb) {
  Program p = ParseOrDie(kFlights);
  PredId cheap = p.symbols->LookupPredicate("cheaporshort");
  auto result = ConstraintRewrite(p, cheap, {});
  ASSERT_TRUE(result.ok());
  Database db;
  auto leg = [&](const char* s, const char* d, int t, int c) {
    ASSERT_TRUE(db.AddGroundFact(p.symbols.get(), "singleleg",
                                 {Database::Value::Symbol(s),
                                  Database::Value::Symbol(d),
                                  Database::Value::Number(Rational(t)),
                                  Database::Value::Number(Rational(c))})
                    .ok());
  };
  leg("a", "b", 50, 60);
  leg("b", "c", 100, 70);
  leg("a", "c", 500, 100);
  leg("c", "d", 400, 400);
  auto before = Evaluate(p, db, {});
  auto after = Evaluate(result->program, db, {});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  Query all;
  all.literal = Literal(cheap, {2001, 2002, 2003, 2004});
  auto a1 = QueryAnswers(*before, all);
  auto a2 = QueryAnswers(*after, all);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(SameAnswers(*a1, *a2));
  // And the rewritten program computed no more facts than the original.
  EXPECT_LE(after->db.TotalFacts(), before->db.TotalFacts());
}

TEST(ConstraintRewriteTest, Example42PredThenQrpGetsMinimum) {
  // Example 4.2: pred step infers $2 <= $1 for a; with it propagated, the
  // QRP step reaches the minimum ($1 <= 10 & $2 <= $1).
  Program p = ParseOrDie(
      "r1: q(X, Y) :- a(X, Y), X <= 10.\n"
      "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
      "r3: a(X, Y) :- a(X, Z), a(Z, Y).\n");
  PredId q = p.symbols->LookupPredicate("q");
  auto result = ConstraintRewrite(p, q, {});
  ASSERT_TRUE(result.ok());
  PredId a = p.symbols->LookupPredicate("a");
  ConstraintSet expected = ConstraintSet::Of(
      Conj({Atom({{1, 1}}, -10, CmpOp::kLe),
            Atom({{2, 1}, {1, -1}}, 0, CmpOp::kLe)}));
  EXPECT_TRUE(result->qrp_constraints.at(a).EquivalentTo(expected))
      << RenderConstraintSet(result->qrp_constraints.at(a), *p.symbols,
                             DollarNames());
}

TEST(ConstraintRewriteTest, Example42QrpOnlyMisses) {
  // The same program without the pred step: QRP for a widens to true —
  // the paper's motivation for combining the two procedures.
  Program p = ParseOrDie(
      "r1: q(X, Y) :- a(X, Y), X <= 10.\n"
      "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
      "r3: a(X, Y) :- a(X, Z), a(Z, Y).\n");
  PredId q = p.symbols->LookupPredicate("q");
  ConstraintRewriteOptions options;
  options.apply_predicate_constraints = false;
  auto result = ConstraintRewrite(p, q, options);
  ASSERT_TRUE(result.ok());
  PredId a = p.symbols->LookupPredicate("a");
  EXPECT_TRUE(result->qrp_constraints.at(a).IsTriviallyTrue());
}

TEST(ConstraintRewriteTest, UnknownQueryArityRejected) {
  Program p = ParseOrDie("q(X) :- e(X).");
  auto result = ConstraintRewrite(p, 12345, {});
  EXPECT_FALSE(result.ok());
}

TEST(ConstraintRewriteTest, GroundFactsStayGround) {
  // Theorem 4.4 / 4.6 empirical check on the flights program.
  Program p = ParseOrDie(kFlights);
  PredId cheap = p.symbols->LookupPredicate("cheaporshort");
  auto result = ConstraintRewrite(p, cheap, {});
  ASSERT_TRUE(result.ok());
  Database db;
  ASSERT_TRUE(db.AddGroundFact(p.symbols.get(), "singleleg",
                               {Database::Value::Symbol("a"),
                                Database::Value::Symbol("b"),
                                Database::Value::Number(Rational(50)),
                                Database::Value::Number(Rational(60))})
                  .ok());
  auto run = Evaluate(result->program, db, {});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.all_ground);
  EXPECT_TRUE(run->stats.reached_fixpoint);
}

}  // namespace
}  // namespace cqlopt
