// Tests for the constraint fingerprints and the process-wide decision
// cache: fingerprint determinism and order-insensitivity, hit/miss/evict
// accounting, the disable switch, and — the property everything rests on —
// that evaluation with the cache is observably identical to evaluation
// without it.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "constraint/decision_cache.h"
#include "constraint/fingerprint.h"
#include "constraint/fourier_motzkin.h"
#include "constraint/implication.h"
#include "constraint/interval.h"
#include "core/workload.h"
#include "eval/seminaive.h"
#include "testing/generator.h"
#include "testing/properties.h"

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

TEST(FingerprintTest, DeterministicPerAtom) {
  LinearConstraint a = Atom({{1, 1}, {2, -1}}, 3, CmpOp::kLe);
  LinearConstraint b = Atom({{1, 1}, {2, -1}}, 3, CmpOp::kLe);
  EXPECT_EQ(fp::FingerprintOf(a), fp::FingerprintOf(b));
}

TEST(FingerprintTest, DistinguishesCloseAtoms) {
  LinearConstraint base = Atom({{1, 1}}, 3, CmpOp::kLe);
  // One field off in each direction must change the fingerprint.
  EXPECT_NE(fp::FingerprintOf(base),
            fp::FingerprintOf(Atom({{1, 1}}, 4, CmpOp::kLe)));
  EXPECT_NE(fp::FingerprintOf(base),
            fp::FingerprintOf(Atom({{1, 2}}, 3, CmpOp::kLe)));
  EXPECT_NE(fp::FingerprintOf(base),
            fp::FingerprintOf(Atom({{2, 1}}, 3, CmpOp::kLe)));
  EXPECT_NE(fp::FingerprintOf(base),
            fp::FingerprintOf(Atom({{1, 1}}, 3, CmpOp::kLt)));
}

TEST(FingerprintTest, VectorOrderInsensitive) {
  LinearConstraint a = Atom({{1, 1}}, -4, CmpOp::kLe);
  LinearConstraint b = Atom({{2, 1}, {1, -1}}, 0, CmpOp::kLt);
  LinearConstraint c = Atom({{3, 2}}, 7, CmpOp::kEq);
  uint64_t fwd = fp::FingerprintOf(std::vector<LinearConstraint>{a, b, c});
  uint64_t rev = fp::FingerprintOf(std::vector<LinearConstraint>{c, b, a});
  uint64_t mid = fp::FingerprintOf(std::vector<LinearConstraint>{b, a, c});
  EXPECT_EQ(fwd, rev);
  EXPECT_EQ(fwd, mid);
  // ...but not content-insensitive.
  EXPECT_NE(fwd, fp::FingerprintOf(std::vector<LinearConstraint>{a, b}));
  EXPECT_NE(fwd, fp::FingerprintOf(std::vector<LinearConstraint>{a, b, b}));
}

TEST(FingerprintTest, ConjunctionCoversAllStores) {
  Conjunction base;
  ASSERT_TRUE(base.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  uint64_t h = fp::FingerprintOf(base);

  Conjunction with_eq = base;
  ASSERT_TRUE(with_eq.AddEquality(2, 3).ok());
  EXPECT_NE(h, fp::FingerprintOf(with_eq));

  Conjunction with_sym = base;
  ASSERT_TRUE(with_sym.BindSymbol(2, 7).ok());
  EXPECT_NE(h, fp::FingerprintOf(with_sym));

  // Same content built in a different insertion order fingerprints equally
  // (both stores are kept canonical).
  Conjunction x;
  ASSERT_TRUE(x.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  ASSERT_TRUE(x.AddLinear(Atom({{2, 1}}, -9, CmpOp::kLe)).ok());
  Conjunction y;
  ASSERT_TRUE(y.AddLinear(Atom({{2, 1}}, -9, CmpOp::kLe)).ok());
  ASSERT_TRUE(y.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  EXPECT_EQ(fp::FingerprintOf(x), fp::FingerprintOf(y));
}

TEST(DecisionCacheTest, StoreLookupAndCounters) {
  DecisionCache& cache = DecisionCache::Instance();
  cache.Clear();
  DecisionCache::Counters before = cache.Snapshot();
  // A key no fingerprint will produce in this test binary's other cases.
  uint64_t key = fp::Mix(0x1234567890abcdefull, 42);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Store(key, true);
  auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  DecisionCache::Counters after = cache.Snapshot();
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_GE(after.entries, 1);
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(key).has_value());
}

TEST(DecisionCacheTest, DisablerTurnsLookupsOff) {
  DecisionCache& cache = DecisionCache::Instance();
  cache.Clear();
  uint64_t key = fp::Mix(0xfeedfacecafebeefull, 7);
  cache.Store(key, false);
  ASSERT_TRUE(cache.Lookup(key).has_value());
  DecisionCache::Counters mid = cache.Snapshot();
  {
    DecisionCacheDisabler off;
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.Lookup(key).has_value());
    cache.Store(fp::Mix(key, 1), true);
    EXPECT_FALSE(cache.Lookup(fp::Mix(key, 1)).has_value());
  }
  EXPECT_TRUE(cache.enabled());
  // Disabled traffic is not counted.
  DecisionCache::Counters end = cache.Snapshot();
  EXPECT_EQ(end.hits, mid.hits);
  EXPECT_EQ(end.misses, mid.misses);
  ASSERT_TRUE(cache.Lookup(key).has_value());
  cache.Clear();
}

TEST(DecisionCacheTest, FullShardEvictsWholesale) {
  DecisionCache& cache = DecisionCache::Instance();
  cache.Clear();
  DecisionCache::Counters before = cache.Snapshot();
  // Overfill every shard: distinct well-mixed keys, > capacity in total.
  size_t total = static_cast<size_t>(DecisionCache::kShardCount) *
                     DecisionCache::kMaxEntriesPerShard +
                 DecisionCache::kMaxEntriesPerShard;
  uint64_t key = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < total; ++i) {
    key = fp::Mix(key, i);
    cache.Store(key, (i & 1) != 0);
  }
  DecisionCache::Counters after = cache.Snapshot();
  EXPECT_GT(after.evictions - before.evictions, 0);
  EXPECT_LE(after.entries, static_cast<long>(
                               static_cast<size_t>(DecisionCache::kShardCount) *
                               DecisionCache::kMaxEntriesPerShard));
  cache.Clear();
}

TEST(DecisionCacheTest, MemoizedDecisionsMatchFreshOnes) {
  // Decide once with the cache cold, once with it warm, once with it
  // disabled: all three must agree, for satisfiable and unsatisfiable
  // inputs of each entry point.
  std::vector<LinearConstraint> sat = {Atom({{1, 1}}, -4, CmpOp::kLe),
                                       Atom({{1, -1}}, 0, CmpOp::kLe)};
  std::vector<LinearConstraint> unsat = {Atom({{1, 1}}, -4, CmpOp::kLe),
                                         Atom({{1, -1}}, 5, CmpOp::kLe)};
  LinearConstraint goal = Atom({{1, 1}}, -10, CmpOp::kLe);
  Conjunction narrow;
  ASSERT_TRUE(narrow.AddLinear(Atom({{1, 1}}, -2, CmpOp::kLe)).ok());
  ASSERT_TRUE(narrow.AddLinear(Atom({{1, -1}}, 0, CmpOp::kLe)).ok());
  Conjunction wide;
  ASSERT_TRUE(wide.AddLinear(Atom({{1, 1}}, -10, CmpOp::kLe)).ok());

  DecisionCache::Instance().Clear();
  for (int round = 0; round < 2; ++round) {
    EXPECT_TRUE(fm::IsSatisfiable(sat));
    EXPECT_FALSE(fm::IsSatisfiable(unsat));
    EXPECT_TRUE(fm::ImpliesAtom(sat, goal));
    EXPECT_TRUE(Implies(narrow, wide));
    EXPECT_FALSE(Implies(wide, narrow));
  }
  {
    DecisionCacheDisabler off;
    EXPECT_TRUE(fm::IsSatisfiable(sat));
    EXPECT_FALSE(fm::IsSatisfiable(unsat));
    EXPECT_TRUE(fm::ImpliesAtom(sat, goal));
    EXPECT_TRUE(Implies(narrow, wide));
    EXPECT_FALSE(Implies(wide, narrow));
  }
}

/// The end-to-end equivalence the memoization must preserve: a full
/// stratified evaluation with the cache on computes byte-identical results
/// to one with the cache off, and the warm second run actually hits.
TEST(DecisionCacheTest, EvaluationUnchangedByCache) {
  auto parsed = ParseProgram(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "s(X) :- t(X, Y), X >= 2, Y <= 9.\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& program = parsed->program;
  Database db;
  ASSERT_TRUE(
      AddLayeredGraph(program.symbols.get(), "e", 4, 3, 2, 11, &db).ok());

  EvalOptions options;
  options.strategy = EvalStrategy::kStratified;
  options.subsumption = SubsumptionMode::kSingleFact;
  options.record_trace = true;
  // This test pins pure cache accounting (hit counts across cold/warm
  // runs); the interval prepass would divert the easy decisions away from
  // the cache, so it is held off here. PrepassCacheInteractionTest covers
  // the combined regime.
  options.prepass = false;

  EvalResult uncached;
  {
    DecisionCacheDisabler off;
    auto run = Evaluate(program, db, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    uncached = std::move(*run);
    EXPECT_EQ(uncached.stats.cache_hits, 0);
    EXPECT_EQ(uncached.stats.cache_misses, 0);
  }

  DecisionCache::Instance().Clear();
  auto cold = Evaluate(program, db, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = Evaluate(program, db, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  for (const EvalResult* run : {&*cold, &*warm}) {
    EXPECT_EQ(RenderTrace(uncached.trace), RenderTrace(run->trace));
    EXPECT_EQ(uncached.stats.derivations, run->stats.derivations);
    EXPECT_EQ(uncached.stats.inserted, run->stats.inserted);
    EXPECT_EQ(uncached.stats.subsumed, run->stats.subsumed);
    EXPECT_EQ(uncached.stats.duplicates, run->stats.duplicates);
    EXPECT_EQ(uncached.stats.iterations, run->stats.iterations);
    for (const auto& [pred, rel] : uncached.db.relations()) {
      const Relation* other = run->db.Find(pred);
      ASSERT_NE(other, nullptr);
      ASSERT_EQ(rel.size(), other->size());
      for (size_t i = 0; i < rel.size(); ++i) {
        EXPECT_EQ(rel.fact(i).Key(), other->fact(i).Key());
        EXPECT_EQ(rel.birth(i), other->birth(i));
      }
    }
  }

  // The subsumption probes repeat identical implication queries, so even
  // the cold run must hit; the warm run re-asks everything.
  EXPECT_GT(cold->stats.cache_hits, 0);
  EXPECT_GT(warm->stats.cache_hits, cold->stats.cache_hits);
}

TEST(DecisionCacheTest, CapacityOneThrashMatchesCacheOff) {
  // Capacity 1 per shard makes nearly every Store evict the shard's only
  // entry — the pathological thrash regime. Even there the cache must stay
  // an invisible memo: the evaluation's stored facts, birth rounds, and
  // derivation stats are byte-identical to a cache-off run.
  auto parsed = ParseProgram(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "s(X) :- t(X, Y), X >= 2, Y <= 9.\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& program = parsed->program;
  Database db;
  ASSERT_TRUE(
      AddLayeredGraph(program.symbols.get(), "e", 4, 3, 2, 11, &db).ok());

  EvalOptions options;
  options.strategy = EvalStrategy::kStratified;
  options.subsumption = SubsumptionMode::kSingleFact;
  // Pure cache-thrash accounting: keep the prepass out so every decision
  // flows through the capacity-1 cache (see EvaluationUnchangedByCache).
  options.prepass = false;

  auto fingerprint = [](const EvalResult& r) {
    std::string out;
    for (const auto& [pred, rel] : r.db.relations()) {
      out += std::to_string(pred);
      out += '{';
      for (size_t i = 0; i < rel.size(); ++i) {
        out += rel.fact(i).Key();
        out += '@';
        out += std::to_string(rel.birth(i));
        out += ';';
      }
      out += '}';
    }
    return out;
  };

  EvalResult uncached;
  {
    DecisionCacheDisabler off;
    auto run = Evaluate(program, db, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    uncached = std::move(*run);
  }

  DecisionCache::Counters before;
  EvalResult thrashed;
  {
    DecisionCacheCapacityOverride tiny(1);
    before = DecisionCache::Instance().Snapshot();
    auto run = Evaluate(program, db, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    thrashed = std::move(*run);
    // The override must actually bite: the run stores more distinct
    // decisions than one per shard, so evictions happen.
    DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
    EXPECT_GT(after.evictions - before.evictions, 0);
  }

  EXPECT_EQ(fingerprint(uncached), fingerprint(thrashed));
  EXPECT_EQ(uncached.stats.derivations, thrashed.stats.derivations);
  EXPECT_EQ(uncached.stats.inserted, thrashed.stats.inserted);
  EXPECT_EQ(uncached.stats.subsumed, thrashed.stats.subsumed);
  EXPECT_EQ(uncached.stats.iterations, thrashed.stats.iterations);
}

TEST(PrepassCacheInteractionTest, ConclusiveDecisionsNeverTouchTheCache) {
  // A prepass-conclusive decision must not pollute the cache: no lookup
  // (no hit/miss counted) and no fill (no entry stored). x >= 1 && x <= 0
  // is conclusively UNSAT by bound propagation; x >= 2 => x >= 0 is
  // conclusively implied.
  DecisionCache::Instance().Clear();
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();

  EXPECT_FALSE(prepass::IsSatisfiable({
      Atom({{1, -1}}, 1, CmpOp::kLe),
      Atom({{1, 1}}, 0, CmpOp::kLe),
  }));
  EXPECT_TRUE(prepass::ImpliesAtom({Atom({{1, -1}}, 2, CmpOp::kLe)},
                                   Atom({{1, -1}}, 0, CmpOp::kLe)));

  DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.entries, 0);
  prepass::Counters pre_after = prepass::Snapshot();
  EXPECT_EQ(pre_after.unsat, pre_before.unsat + 1);
  EXPECT_EQ(pre_after.implied, pre_before.implied + 1);
  EXPECT_EQ(pre_after.fallback, pre_before.fallback);
}

TEST(PrepassCacheInteractionTest, InconclusiveProbesFallThroughToTheCache) {
  // x <= y - 1 && y <= x - 1 defeats interval propagation (the bounds walk
  // down forever), so the wrapper must count a fallback and let the exact
  // cached tier decide — filling the cache exactly as before the prepass
  // existed.
  std::vector<LinearConstraint> divergent = {
      Atom({{1, 1}, {2, -1}}, 1, CmpOp::kLe),
      Atom({{2, 1}, {1, -1}}, 1, CmpOp::kLe),
  };
  DecisionCache::Instance().Clear();
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();

  EXPECT_FALSE(prepass::IsSatisfiable(divergent));  // FM decides: UNSAT

  DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_after = prepass::Snapshot();
  EXPECT_EQ(pre_after.fallback, pre_before.fallback + 1);
  EXPECT_GT(after.misses, before.misses);
  EXPECT_GT(after.entries, 0);

  // Re-asking hits the cache (the prepass stays inconclusive, so the memo
  // serves the repeat exactly as it always did).
  EXPECT_FALSE(prepass::IsSatisfiable(divergent));
  DecisionCache::Counters again = DecisionCache::Instance().Snapshot();
  EXPECT_GT(again.hits, after.hits);
}

TEST(PrepassCacheInteractionTest, HitAccountingConsistentUnderBothArms) {
  // With the prepass short-circuiting the easy queries, the cache sees
  // only the hard remainder: the prepass-on arm must record no more
  // lookups than the prepass-off arm, while facts, births, and derivation
  // stats stay byte-identical. (Lookups = hits + misses; conclusive
  // decisions subtract from that total, never add.)
  auto parsed = ParseProgram(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "s(X) :- t(X, Y), X >= 2, Y <= 9.\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& program = parsed->program;
  Database db;
  ASSERT_TRUE(
      AddLayeredGraph(program.symbols.get(), "e", 4, 3, 2, 11, &db).ok());

  EvalOptions options;
  options.strategy = EvalStrategy::kStratified;
  options.subsumption = SubsumptionMode::kSingleFact;
  options.record_trace = true;

  DecisionCache::Instance().Clear();
  options.prepass = true;
  auto on = Evaluate(program, db, options);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  DecisionCache::Instance().Clear();
  options.prepass = false;
  auto off = Evaluate(program, db, options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // Byte-identical evaluation either way.
  EXPECT_EQ(RenderTrace(on->trace), RenderTrace(off->trace));
  EXPECT_EQ(on->stats.derivations, off->stats.derivations);
  EXPECT_EQ(on->stats.inserted, off->stats.inserted);
  EXPECT_EQ(on->stats.subsumed, off->stats.subsumed);
  EXPECT_EQ(on->stats.iterations, off->stats.iterations);
  for (const auto& [pred, rel] : on->db.relations()) {
    const Relation* other = off->db.Find(pred);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(rel.size(), other->size());
    for (size_t i = 0; i < rel.size(); ++i) {
      EXPECT_EQ(rel.fact(i).Key(), other->fact(i).Key());
      EXPECT_EQ(rel.birth(i), other->birth(i));
    }
  }

  // Counter semantics: the on arm took the fast tier at least once, the
  // off arm never did, and the on arm asked the cache no more often.
  EXPECT_GT(on->stats.prepass_conclusive, 0);
  EXPECT_EQ(off->stats.prepass_conclusive, 0);
  EXPECT_EQ(off->stats.prepass_fallback, 0);
  EXPECT_LE(on->stats.cache_hits + on->stats.cache_misses,
            off->stats.cache_hits + off->stats.cache_misses);
}

TEST(DecisionCacheTest, FuzzPropertyHoldsUnderCapacityOneThrash) {
  // strategy_confluence internally pins byte-identical storage across
  // naive / semi-naive / stratified / 2- and 8-thread runs; executing it
  // under a capacity-1 cache exercises that guarantee while every shard
  // evicts on virtually every insert.
  cqlopt::testing::FuzzCase c = cqlopt::testing::GenerateCase(
      cqlopt::testing::Rng::DeriveSeed(42, 7), {});
  const cqlopt::testing::PropertyInfo* confluence =
      cqlopt::testing::FindProperty("strategy_confluence");
  ASSERT_NE(confluence, nullptr);
  DecisionCache::Counters before;
  {
    // Prepass held off for the same reason as the thrash test above: the
    // assertion is that the *cache* evicts, which needs the decisions to
    // actually reach it.
    prepass::PrepassDisabler no_prepass;
    DecisionCacheCapacityOverride tiny(1);
    before = DecisionCache::Instance().Snapshot();
    cqlopt::testing::PropertyOutcome outcome = confluence->fn(c, {});
    EXPECT_TRUE(outcome.ok) << outcome.message;
    EXPECT_FALSE(outcome.skipped) << outcome.message;
    DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
    EXPECT_GT(after.evictions - before.evictions, 0);
  }
}

}  // namespace
}  // namespace cqlopt
