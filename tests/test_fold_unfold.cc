#include "transform/fold_unfold.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "ast/normalize.h"
#include "constraint/implication.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

TEST(FoldUnfoldTest, MakeDefinitionShape) {
  VarAllocator alloc(5000);
  Conjunction over_args;
  ASSERT_TRUE(over_args.AddLinear(Atom({{1, 1}}, -4, CmpOp::kLe)).ok());
  Rule def = MakeDefinition(/*new_pred=*/9, /*base_pred=*/3, /*arity=*/2,
                            over_args, &alloc, "d1");
  EXPECT_EQ(def.head.pred, 9);
  ASSERT_EQ(def.body.size(), 1u);
  EXPECT_EQ(def.body[0].pred, 3);
  EXPECT_EQ(def.head.args, def.body[0].args);
  // $1 <= 4 became a constraint on the first head variable.
  Conjunction expected;
  ASSERT_TRUE(
      expected.AddLinear(Atom({{def.head.args[0], 1}}, -4, CmpOp::kLe)).ok());
  EXPECT_TRUE(Equivalent(def.constraints, expected));
}

TEST(FoldUnfoldTest, UnfoldReplacesLiteralByDefinitions) {
  Program p = ParseOrDie(
      "r1: q(X) :- a(X), X <= 9.\n"
      "r2: a(X) :- b(X), X >= 1.\n"
      "r3: a(X) :- c(X, Y), Y <= 0.\n");
  VarAllocator alloc = MakeAllocator(p);
  auto unfolded = UnfoldLiteral(p, p.rules[0], 0, &alloc);
  ASSERT_TRUE(unfolded.ok());
  ASSERT_EQ(unfolded->size(), 2u);
  // Each resolvent keeps the caller's constraint and gains the callee's.
  for (const Rule& r : *unfolded) {
    EXPECT_EQ(r.head.pred, p.rules[0].head.pred);
    EXPECT_GE(r.constraints.linear().size(), 2u);
    for (const Literal& lit : r.body) {
      EXPECT_NE(lit.pred, p.rules[0].body[0].pred);  // no more 'a'
    }
  }
}

TEST(FoldUnfoldTest, UnfoldDropsUnsatisfiableResolvents) {
  Program p = ParseOrDie(
      "r1: q(X) :- a(X), X <= 0.\n"
      "r2: a(X) :- b(X), X >= 1.\n");
  VarAllocator alloc = MakeAllocator(p);
  auto unfolded = UnfoldLiteral(p, p.rules[0], 0, &alloc);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_TRUE(unfolded->empty());
}

TEST(FoldUnfoldTest, UnfoldRepeatedHeadVarInducesEquality) {
  Program p = ParseOrDie(
      "r1: q(X, Y) :- a(X, Y).\n"
      "r2: a(Z, Z) :- b(Z).\n");
  VarAllocator alloc = MakeAllocator(p);
  auto unfolded = UnfoldLiteral(p, p.rules[0], 0, &alloc);
  ASSERT_TRUE(unfolded.ok());
  ASSERT_EQ(unfolded->size(), 1u);
  const Rule& r = (*unfolded)[0];
  // q's X and Y must now be equated.
  EXPECT_EQ(r.constraints.Find(r.head.args[0]),
            r.constraints.Find(r.head.args[1]));
}

TEST(FoldUnfoldTest, UnfoldIndexOutOfRange) {
  Program p = ParseOrDie("q(X) :- a(X).");
  VarAllocator alloc = MakeAllocator(p);
  EXPECT_FALSE(UnfoldLiteral(p, p.rules[0], 5, &alloc).ok());
}

TEST(FoldUnfoldTest, FoldRequiresImpliedConstraints) {
  Program p = ParseOrDie(
      "r1: q(X) :- p1(X), X <= 3.\n"
      "r2: q(X) :- p1(X), X <= 9.\n"
      "d:  p1x(X) :- p1(X), X <= 4.\n");
  // Fold p1 by the definition p1x(X) :- X <= 4, p1(X):
  // succeeds in r1 (X<=3 implies X<=4), fails in r2.
  const Rule& def = p.rules[2];
  auto folded1 = TryFold(p.rules[0], def, 0);
  ASSERT_TRUE(folded1.has_value());
  EXPECT_EQ(folded1->body[0].pred, def.head.pred);
  auto folded2 = TryFold(p.rules[1], def, 0);
  EXPECT_FALSE(folded2.has_value());
}

TEST(FoldUnfoldTest, FoldAnchorSelectsOccurrence) {
  Program p = ParseOrDie(
      "r1: q(X, Y) :- p1(X), p1(Y), X <= 4, Y >= 100.\n"
      "d:  p1x(X) :- p1(X), X <= 4.\n");
  const Rule& def = p.rules[1];
  // Anchored at occurrence 0 (X): folds; at occurrence 1 (Y): must not.
  auto fold0 = TryFold(p.rules[0], def, 0);
  ASSERT_TRUE(fold0.has_value());
  EXPECT_EQ(fold0->body[0].pred, def.head.pred);
  EXPECT_NE(fold0->body[1].pred, def.head.pred);
  auto fold1 = TryFold(p.rules[0], def, 1);
  EXPECT_FALSE(fold1.has_value());
}

TEST(FoldUnfoldTest, MultiLiteralFoldMatchesSubset) {
  // GMT-style definition with two body literals.
  Program p = ParseOrDie(
      "r:  p(X, Y) :- m_p(X), g(X, U, V), h(V, Y), U > 10.\n"
      "d:  s(X, V) :- m_p(X), g(X, U, V), U > 10.\n");
  auto folded = TryFold(p.rules[0], p.rules[1], -1);
  ASSERT_TRUE(folded.has_value());
  ASSERT_EQ(folded->body.size(), 2u);
  EXPECT_EQ(folded->body[0].pred, p.rules[1].head.pred);
  EXPECT_EQ(folded->body[1].pred, p.rules[0].body[2].pred);
  // The absorbed constraint U > 10 over the dangling variable is projected
  // away.
  EXPECT_TRUE(Equivalent(folded->constraints, Conjunction::True()));
}

TEST(FoldUnfoldTest, FoldPreservesSemanticsUnderUnfold) {
  // fold then unfold returns an equivalent rule set: sanity check the
  // round trip on a small example by structural containment.
  Program p = ParseOrDie(
      "r1: q(X) :- p1(X), X <= 3.\n"
      "d:  p1x(X) :- p1(X), X <= 4.\n"
      "u:  p1(X) :- b(X).\n");
  auto folded = TryFold(p.rules[0], p.rules[1], 0);
  ASSERT_TRUE(folded.has_value());
  // Unfold p1x back through its definition.
  Program defs(p.symbols);
  defs.rules.push_back(p.rules[1]);
  VarAllocator alloc = MakeAllocator(p);
  auto unfolded = UnfoldLiteral(defs, *folded, 0, &alloc);
  ASSERT_TRUE(unfolded.ok());
  ASSERT_EQ(unfolded->size(), 1u);
  // Same head and same single p1 literal; constraints equivalent to the
  // original (X <= 3 & X <= 4 == X <= 3).
  const Rule& back = (*unfolded)[0];
  EXPECT_EQ(back.head.pred, p.rules[0].head.pred);
  ASSERT_EQ(back.body.size(), 1u);
  EXPECT_EQ(back.body[0].pred, p.symbols->LookupPredicate("p1"));
  Conjunction expected;
  ASSERT_TRUE(
      expected.AddLinear(Atom({{back.head.args[0], 1}}, -3, CmpOp::kLe)).ok());
  EXPECT_TRUE(Equivalent(back.constraints, expected));
}

TEST(FoldUnfoldTest, FoldFailsWhenHeadVarUnbound) {
  // Definition head mentions a variable that the matched body literals do
  // not determine — fold must refuse.
  Program p = ParseOrDie(
      "r:  q(X) :- a(X).\n"
      "d:  s(X, Y) :- a(X).\n");  // Y unbound in def body
  EXPECT_FALSE(TryFold(p.rules[0], p.rules[1], -1).has_value());
}

}  // namespace
}  // namespace cqlopt
