#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "constraint/interval.h"
#include "testing/corpus.h"
#include "testing/properties.h"

namespace cqlopt {
namespace {

using testing::CorpusCase;
using testing::FindProperty;
using testing::FuzzOptions;
using testing::ListCorpusFiles;
using testing::LoadCorpusFile;
using testing::PlantedBug;
using testing::PropertyInfo;
using testing::PropertyOutcome;

/// Replays every minimized repro in tests/fuzz_corpus/. Files with a
/// `% bug:` header are harness self-checks: the named property must still
/// FAIL under the planted bug (the differential oracle keeps catching it).
/// Plain files are fixed engine bugs: the property must hold, forever.
/// Each repro is replayed under both decision-procedure arms — interval
/// prepass enabled and disabled — since the corpus verdicts must be
/// independent of which tier answered the constraint queries.
TEST(FuzzCorpus, ReplaysEveryRepro) {
  auto files = ListCorpusFiles(CQLOPT_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  ASSERT_FALSE(files->empty())
      << "no .cql repro files in " << CQLOPT_FUZZ_CORPUS_DIR;
  for (const std::string& path : *files) {
    SCOPED_TRACE(path);
    auto loaded = LoadCorpusFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const PropertyInfo* property = FindProperty(loaded->property);
    ASSERT_NE(property, nullptr)
        << "unknown property " << loaded->property;
    for (bool prepass_on : {true, false}) {
      SCOPED_TRACE(prepass_on ? "prepass=on" : "prepass=off");
      std::optional<prepass::PrepassDisabler> prepass_off;
      if (!prepass_on) prepass_off.emplace();
      FuzzOptions fuzz;
      fuzz.bug = loaded->bug;
      PropertyOutcome outcome = property->fn(loaded->c, fuzz);
      EXPECT_FALSE(outcome.skipped)
          << "repro skipped instead of checked: " << outcome.message;
      if (loaded->bug != PlantedBug::kNone) {
        EXPECT_FALSE(outcome.ok)
            << "planted-bug repro no longer fails; the self-check harness "
               "has lost its teeth";
      } else {
        EXPECT_TRUE(outcome.ok) << outcome.message;
      }
    }
  }
}

/// Corpus round-trip: loading a file and re-rendering it reproduces the
/// same case (modulo variable-name canonicalization handled by the
/// renderer), so repros stay stable under load/save cycles.
TEST(FuzzCorpus, LoadedCasesRoundTrip) {
  auto files = ListCorpusFiles(CQLOPT_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  for (const std::string& path : *files) {
    SCOPED_TRACE(path);
    auto loaded = LoadCorpusFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::string rerendered = ::testing::TempDir() + "/roundtrip.cql";
    ASSERT_TRUE(testing::WriteCorpusFile(rerendered, loaded->c,
                                         loaded->property, loaded->bug,
                                         loaded->note)
                    .ok());
    auto again = LoadCorpusFile(rerendered);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->property, loaded->property);
    EXPECT_EQ(again->bug, loaded->bug);
    EXPECT_EQ(again->c.seed, loaded->c.seed);
    EXPECT_EQ(again->c.program.rules.size(), loaded->c.program.rules.size());
    EXPECT_EQ(again->c.edb.size(), loaded->c.edb.size());
  }
}

}  // namespace
}  // namespace cqlopt
