#include "eval/loader.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/seminaive.h"

namespace cqlopt {
namespace {

TEST(LoaderTest, LoadsGroundFacts) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  auto loaded = LoadDatabaseText(
      "singleleg(msn, ord, 50, 80).\n"
      "singleleg(ord, sea, 150, 90).\n"
      "b1(3, 7).\n",
      symbols, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3);
  EXPECT_EQ(db.TotalFacts(), 3u);
  EXPECT_TRUE(db.AllGround());
  PredId singleleg = symbols->LookupPredicate("singleleg");
  ASSERT_NE(singleleg, SymbolTable::kNoPred);
  EXPECT_EQ(db.FactsFor(singleleg), 2u);
  const Relation* rel = db.Find(singleleg);
  EXPECT_EQ(rel->fact(0).ToString(*symbols),
            "singleleg(msn, ord, 50, 80)");
  EXPECT_EQ(rel->birth(0), -1);
}

TEST(LoaderTest, LoadsConstraintFacts) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  auto loaded = LoadDatabaseText("bound(X) :- X <= 4, X >= 0.\n", symbols, &db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_FALSE(db.AllGround());
}

TEST(LoaderTest, RejectsRulesWithBodies) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  auto loaded = LoadDatabaseText("q(X) :- e(X).\n", symbols, &db);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoaderTest, RejectsQueries) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  auto loaded = LoadDatabaseText("e(1, 2).\n?- e(X, Y).\n", symbols, &db);
  EXPECT_FALSE(loaded.ok());
}

TEST(LoaderTest, RejectsUnsatisfiableFacts) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  auto loaded =
      LoadDatabaseText("bad(X) :- X <= 0, X >= 1.\n", symbols, &db);
  EXPECT_FALSE(loaded.ok());
}

TEST(LoaderTest, LoadedDatabaseEvaluates) {
  auto parsed = ParseProgram("t(X, Z) :- e(X, Y), e(Y, Z).\n");
  ASSERT_TRUE(parsed.ok());
  Program& program = parsed->program;
  Database db;
  auto loaded = LoadDatabaseText("e(1, 2).\ne(2, 3).\n", program.symbols, &db);
  ASSERT_TRUE(loaded.ok());
  auto run = Evaluate(program, db, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->db.FactsFor(program.symbols->LookupPredicate("t")), 1u);
}

TEST(LoaderTest, ErrorsCiteLineAndStatement) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  // The offending statement is on line 3 (line 2 is blank); the error must
  // cite the 1-based line and render the statement back.
  auto loaded = LoadDatabaseText("e(1, 2).\n\nq(X) :- r(X).\ne(3, 4).\n",
                                 symbols, &db);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(loaded.status().message(),
            "database text line 3: rule has a body; only facts are allowed: "
            "q(X) :- r(X).");
}

TEST(LoaderTest, UnsatisfiableFactErrorIsPositional) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  auto loaded = LoadDatabaseText("ok(1).\nbad(X) :- X <= 0, X >= 1.\n",
                                 symbols, &db);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("database text line 2"),
            std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("fact is unsatisfiable"),
            std::string::npos);
}

TEST(LoaderTest, QueryErrorIsPositional) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db;
  auto loaded =
      LoadDatabaseText("e(1, 2).\n?- e(X, Y).\n", symbols, &db);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("database text line 2"),
            std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("queries are not allowed"),
            std::string::npos);
}

TEST(LoaderTest, SharedSymbolTableAlignsIds) {
  // Facts loaded after the program parse must reuse the same predicate ids.
  auto parsed = ParseProgram("q(X) :- e(X).\n");
  ASSERT_TRUE(parsed.ok());
  PredId e_before = parsed->program.symbols->LookupPredicate("e");
  Database db;
  auto loaded = LoadDatabaseText("e(5).\n", parsed->program.symbols, &db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(db.FactsFor(e_before), 1u);
}

}  // namespace
}  // namespace cqlopt
