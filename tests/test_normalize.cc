#include "ast/normalize.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace cqlopt {
namespace {

TEST(NormalizeTest, MakeAllocatorAboveProgramVars) {
  auto parsed = ParseProgram("q(X, Y) :- e(X, Y).");
  ASSERT_TRUE(parsed.ok());
  VarAllocator alloc = MakeAllocator(parsed->program);
  VarId fresh = alloc.Fresh();
  EXPECT_GT(fresh, parsed->program.MaxVar());
}

TEST(NormalizeTest, BridgeRuleShape) {
  VarAllocator alloc(5000);
  Rule bridge = MakeBridgeRule(7, 3, 2, &alloc, "q1");
  EXPECT_EQ(bridge.head.pred, 7);
  EXPECT_EQ(bridge.head.arity(), 2);
  ASSERT_EQ(bridge.body.size(), 1u);
  EXPECT_EQ(bridge.body[0].pred, 3);
  EXPECT_EQ(bridge.head.args, bridge.body[0].args);
  EXPECT_TRUE(bridge.constraints.IsSatisfiable());
  EXPECT_EQ(bridge.label, "q1");
}

TEST(NormalizeTest, RenameQueryApartPreservesSemantics) {
  auto parsed = ParseProgram("e(1, 2). ?- e(X, Y), X <= 3.");
  ASSERT_TRUE(parsed.ok());
  VarAllocator alloc(9000);
  Query renamed = RenameQueryApart(parsed->queries[0], &alloc);
  for (VarId v : renamed.literal.args) EXPECT_GE(v, 9000);
  EXPECT_EQ(renamed.constraints.linear().size(),
            parsed->queries[0].constraints.linear().size());
}

TEST(NormalizeTest, RangeRestrictedSimpleRules) {
  auto parsed = ParseProgram(
      "q(X, Y) :- e(X, Y).\n"
      "p(X) :- e(X, Y), X <= 4.\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(IsRangeRestricted(parsed->program));
}

TEST(NormalizeTest, HeadVarWithoutBodyOccurrenceNotRangeRestricted) {
  auto parsed = ParseProgram("q(X, Y) :- e(X), Y >= 3.");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(IsRangeRestricted(parsed->program));
}

TEST(NormalizeTest, ArithmeticDeterminationCountsAsRestricted) {
  // T = T1 + T2 + 30 grounds T once T1, T2 are ground (paper's r4).
  auto parsed = ParseProgram(
      "f(S, D, T) :- f(S, D1, T1), f(D1, D, T2), T = T1 + T2 + 30.");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(IsRangeRestricted(parsed->program));
}

TEST(NormalizeTest, ConstantHeadArgIsGround) {
  auto parsed = ParseProgram("fib(0, 1).");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(IsRangeRestricted(parsed->program));
}

TEST(NormalizeTest, UnboundedConstraintFactNotRangeRestricted) {
  // m_fib(N, 5). leaves N free: a genuine constraint fact.
  auto parsed = ParseProgram("m_fib(N, 5).");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(IsRangeRestricted(parsed->program));
}

TEST(NormalizeTest, SymbolBoundHeadArgIsGround) {
  auto parsed = ParseProgram("hub(madison).");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(IsRangeRestricted(parsed->program));
}

TEST(NormalizeTest, RuleCanonicalKeyAlphaEquivalence) {
  auto a = ParseProgram("q(X, Y) :- e(X, Y), X <= 4.");
  auto b = ParseProgram("q(U, V) :- e(U, V), U <= 4.");
  ASSERT_TRUE(a.ok() && b.ok());
  // Different var ids and names, same structure: keys must match when the
  // predicates are interned identically.
  auto shared = ParseProgram(
      "q(X, Y) :- e(X, Y), X <= 4.\n"
      "q(U, V) :- e(U, V), U <= 4.\n");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(RuleCanonicalKey(shared->program.rules[0]),
            RuleCanonicalKey(shared->program.rules[1]));
}

TEST(NormalizeTest, RuleCanonicalKeyDistinguishesConstraints) {
  auto shared = ParseProgram(
      "q(X, Y) :- e(X, Y), X <= 4.\n"
      "q(U, V) :- e(U, V), U <= 5.\n");
  ASSERT_TRUE(shared.ok());
  EXPECT_NE(RuleCanonicalKey(shared->program.rules[0]),
            RuleCanonicalKey(shared->program.rules[1]));
}

TEST(NormalizeTest, DeduplicateRulesRemovesCopies) {
  auto shared = ParseProgram(
      "q(X, Y) :- e(X, Y), X <= 4.\n"
      "q(U, V) :- e(U, V), U <= 4.\n"
      "q(A, B) :- f(A, B).\n");
  ASSERT_TRUE(shared.ok());
  Program program = shared->program;
  EXPECT_EQ(DeduplicateRules(&program), 1);
  EXPECT_EQ(program.rules.size(), 2u);
}

}  // namespace
}  // namespace cqlopt
