#include "constraint/fourier_motzkin.h"

#include <random>

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

TEST(FourierMotzkinTest, EmptySystemSatisfiable) {
  EXPECT_TRUE(fm::IsSatisfiable({}));
}

TEST(FourierMotzkinTest, SimpleBoundsSatisfiable) {
  // 1 <= x <= 3.
  EXPECT_TRUE(fm::IsSatisfiable({Atom({{1, 1}}, -3, CmpOp::kLe),
                                 Atom({{1, -1}}, 1, CmpOp::kLe)}));
}

TEST(FourierMotzkinTest, ContradictoryBoundsUnsatisfiable) {
  // x <= 1 and x >= 3.
  EXPECT_FALSE(fm::IsSatisfiable({Atom({{1, 1}}, -1, CmpOp::kLe),
                                  Atom({{1, -1}}, 3, CmpOp::kLe)}));
}

TEST(FourierMotzkinTest, StrictnessMatters) {
  // x <= 2 and x >= 2 is satisfiable; x < 2 and x >= 2 is not.
  EXPECT_TRUE(fm::IsSatisfiable({Atom({{1, 1}}, -2, CmpOp::kLe),
                                 Atom({{1, -1}}, 2, CmpOp::kLe)}));
  EXPECT_FALSE(fm::IsSatisfiable({Atom({{1, 1}}, -2, CmpOp::kLt),
                                  Atom({{1, -1}}, 2, CmpOp::kLe)}));
}

TEST(FourierMotzkinTest, EqualityChainPropagates) {
  // x = y, y = z, x >= 5, z < 5 is unsat.
  EXPECT_FALSE(fm::IsSatisfiable(
      {Atom({{1, 1}, {2, -1}}, 0, CmpOp::kEq),
       Atom({{2, 1}, {3, -1}}, 0, CmpOp::kEq), Atom({{1, -1}}, 5, CmpOp::kLe),
       Atom({{3, 1}}, -5, CmpOp::kLt)}));
}

TEST(FourierMotzkinTest, TransitiveCombination) {
  // x <= y, y <= z, z <= x - 1 is unsat (strict cycle).
  EXPECT_FALSE(fm::IsSatisfiable({Atom({{1, 1}, {2, -1}}, 0, CmpOp::kLe),
                                  Atom({{2, 1}, {3, -1}}, 0, CmpOp::kLe),
                                  Atom({{3, 1}, {1, -1}}, 1, CmpOp::kLe)}));
  // Without the -1 it is satisfiable (all equal).
  EXPECT_TRUE(fm::IsSatisfiable({Atom({{1, 1}, {2, -1}}, 0, CmpOp::kLe),
                                 Atom({{2, 1}, {3, -1}}, 0, CmpOp::kLe),
                                 Atom({{3, 1}, {1, -1}}, 0, CmpOp::kLe)}));
}

TEST(FourierMotzkinTest, EliminationProjectsExactly) {
  // The paper's Example 4.1 implication: (X + Y <= 6) & (X >= 2) projected
  // onto Y gives Y <= 4.
  std::vector<LinearConstraint> sys = {Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe),
                                       Atom({{1, -1}}, 2, CmpOp::kLe)};
  auto projected = fm::Eliminate(sys, {1});
  ASSERT_EQ(projected.size(), 1u);
  EXPECT_EQ(projected[0], Atom({{2, 1}}, -4, CmpOp::kLe));
}

TEST(FourierMotzkinTest, EliminationOfUnboundedVarDropsConstraint) {
  // exists x: x + y <= 6 is true for all y.
  auto projected =
      fm::Eliminate({Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe)}, {1});
  EXPECT_TRUE(projected.empty());
}

TEST(FourierMotzkinTest, EliminationPreservesUnsatisfiability) {
  auto projected = fm::Eliminate({Atom({{1, 1}}, -1, CmpOp::kLe),
                                  Atom({{1, -1}}, 3, CmpOp::kLe)},
                                 {1});
  ASSERT_FALSE(projected.empty());
  bool has_false = false;
  for (const auto& c : projected) has_false = has_false || c.IsTriviallyFalse();
  EXPECT_TRUE(has_false);
}

TEST(FourierMotzkinTest, EqualityUsedForGaussianElimination) {
  // x = 2y + 1, x <= 5, y >= 3 unsat (x would be >= 7).
  EXPECT_FALSE(fm::IsSatisfiable({Atom({{1, 1}, {2, -2}}, -1, CmpOp::kEq),
                                  Atom({{1, 1}}, -5, CmpOp::kLe),
                                  Atom({{2, -1}}, 3, CmpOp::kLe)}));
}

TEST(FourierMotzkinTest, ImpliesAtomBasic) {
  std::vector<LinearConstraint> sys = {Atom({{1, 1}, {2, 1}}, -6, CmpOp::kLe),
                                       Atom({{1, -1}}, 2, CmpOp::kLe)};
  EXPECT_TRUE(fm::ImpliesAtom(sys, Atom({{2, 1}}, -4, CmpOp::kLe)));   // Y<=4
  EXPECT_FALSE(fm::ImpliesAtom(sys, Atom({{2, 1}}, -3, CmpOp::kLe)));  // Y<=3
  EXPECT_TRUE(fm::ImpliesAtom(sys, Atom({{2, 1}}, -5, CmpOp::kLt)));   // Y<5
}

TEST(FourierMotzkinTest, ImpliesAtomEquality) {
  // x <= 3 and x >= 3 imply x = 3.
  std::vector<LinearConstraint> sys = {Atom({{1, 1}}, -3, CmpOp::kLe),
                                       Atom({{1, -1}}, 3, CmpOp::kLe)};
  EXPECT_TRUE(fm::ImpliesAtom(sys, Atom({{1, 1}}, -3, CmpOp::kEq)));
}

TEST(FourierMotzkinTest, RemoveRedundantDropsImpliedAtoms) {
  // {x <= 2, x <= 5, x < 7} reduces to {x <= 2}.
  auto reduced = fm::RemoveRedundant({Atom({{1, 1}}, -2, CmpOp::kLe),
                                      Atom({{1, 1}}, -5, CmpOp::kLe),
                                      Atom({{1, 1}}, -7, CmpOp::kLt)});
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0], Atom({{1, 1}}, -2, CmpOp::kLe));
}

TEST(FourierMotzkinTest, RemoveRedundantUnsatisfiableCollapses) {
  auto reduced = fm::RemoveRedundant({Atom({{1, 1}}, -1, CmpOp::kLe),
                                      Atom({{1, -1}}, 2, CmpOp::kLe)});
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_TRUE(reduced[0].IsTriviallyFalse());
}

/// Property sweep: projection must be solution-preserving. We sample random
/// small systems, eliminate one variable, and check that satisfiability of
/// the projection matches satisfiability of the original (FM is exact over
/// the rationals).
class FmProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(FmProjectionProperty, ProjectionPreservesSatisfiability) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  std::uniform_int_distribution<int> coeff(-3, 3);
  std::uniform_int_distribution<int> constant(-10, 10);
  std::uniform_int_distribution<int> op_pick(0, 2);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<LinearConstraint> sys;
    for (int i = 0; i < 6; ++i) {
      LinearExpr e;
      for (VarId v = 1; v <= 3; ++v) e.Add(v, Rational(coeff(rng)));
      e.AddConstant(Rational(constant(rng)));
      CmpOp op = op_pick(rng) == 0   ? CmpOp::kEq
                 : op_pick(rng) == 1 ? CmpOp::kLt
                                     : CmpOp::kLe;
      sys.emplace_back(e, op);
    }
    bool before = fm::IsSatisfiable(sys);
    auto projected = fm::Eliminate(sys, {2});
    bool after = fm::IsSatisfiable(projected);
    EXPECT_EQ(before, after);
    // The projection must not mention the eliminated variable.
    for (const auto& c : projected) {
      EXPECT_TRUE(c.expr().CoefficientOf(2).is_zero());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmProjectionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cqlopt
