#include "transform/predicate_constraints.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "constraint/implication.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

ConstraintSet SetOf(const std::string& rendered_expect, const Program& p,
                    const InferenceResult& result, const std::string& pred) {
  PredId id = p.symbols->LookupPredicate(pred);
  EXPECT_NE(id, SymbolTable::kNoPred) << pred;
  auto it = result.constraints.find(id);
  EXPECT_NE(it, result.constraints.end()) << pred;
  (void)rendered_expect;
  return it->second;
}

LinearConstraint Atom(std::vector<std::pair<VarId, int>> terms, int constant,
                      CmpOp op) {
  LinearExpr e;
  for (auto& [v, c] : terms) e.Add(v, Rational(c));
  e.AddConstant(Rational(constant));
  return LinearConstraint(e, op);
}

Conjunction Conj(std::vector<LinearConstraint> atoms) {
  Conjunction c;
  for (auto& a : atoms) EXPECT_TRUE(c.AddLinear(a).ok());
  return c;
}

TEST(PredicateConstraintsTest, FlightExampleMinimumConstraints) {
  // Section 4.4 on Example 1.1: flight's minimum predicate constraint is
  // ($3 > 0) & ($4 > 0); cheaporshort's is the two-disjunct set.
  Program p = ParseOrDie(
      "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n"
      "r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n"
      "r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.\n"
      "r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, "
      "C2), T = T1 + T2 + 30, C = C1 + C2.\n");
  auto result = GenPredicateConstraints(p, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  ConstraintSet flight = SetOf("", p, *result, "flight");
  ConstraintSet expected_flight = ConstraintSet::Of(
      Conj({Atom({{3, -1}}, 0, CmpOp::kLt), Atom({{4, -1}}, 0, CmpOp::kLt)}));
  EXPECT_TRUE(flight.EquivalentTo(expected_flight))
      << RenderConstraintSet(flight, *p.symbols, DollarNames());

  ConstraintSet cheap = SetOf("", p, *result, "cheaporshort");
  ConstraintSet expected_cheap = ConstraintSet::Of(
      Conj({Atom({{3, -1}}, 0, CmpOp::kLt), Atom({{3, 1}}, -240, CmpOp::kLe),
            Atom({{4, -1}}, 0, CmpOp::kLt)}));
  expected_cheap.AddDisjunct(
      Conj({Atom({{3, -1}}, 0, CmpOp::kLt), Atom({{4, -1}}, 0, CmpOp::kLt),
            Atom({{4, 1}}, -150, CmpOp::kLe)}));
  EXPECT_TRUE(cheap.EquivalentTo(expected_cheap))
      << RenderConstraintSet(cheap, *p.symbols, DollarNames());
}

TEST(PredicateConstraintsTest, Example42RecursivePreservation) {
  // Example 4.2: every a fact satisfies $2 <= $1.
  Program p = ParseOrDie(
      "r1: q(X, Y) :- a(X, Y), X <= 10.\n"
      "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
      "r3: a(X, Y) :- a(X, Z), a(Z, Y).\n");
  auto result = GenPredicateConstraints(p, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  ConstraintSet a = SetOf("", p, *result, "a");
  ConstraintSet expected =
      ConstraintSet::Of(Conj({Atom({{2, 1}, {1, -1}}, 0, CmpOp::kLe)}));
  EXPECT_TRUE(a.EquivalentTo(expected))
      << RenderConstraintSet(a, *p.symbols, DollarNames());
}

TEST(PredicateConstraintsTest, EdbConstraintsFlowThrough) {
  Program p = ParseOrDie("q(X) :- e(X).\n");
  PredId e = p.symbols->LookupPredicate("e");
  std::map<PredId, ConstraintSet> edb;
  edb[e] = ConstraintSet::Of(Conj({Atom({{1, 1}}, -9, CmpOp::kLe)}));
  auto result = GenPredicateConstraints(p, edb, {});
  ASSERT_TRUE(result.ok());
  ConstraintSet q = SetOf("", p, *result, "q");
  EXPECT_TRUE(q.EquivalentTo(edb[e]));
}

TEST(PredicateConstraintsTest, UnreachableDerivedStaysFalse) {
  // A derived predicate defined only from another derived predicate with
  // no base case has the empty model: minimum predicate constraint false.
  Program p = ParseOrDie("loop(X) :- loop(X).\n");
  auto result = GenPredicateConstraints(p, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_TRUE(SetOf("", p, *result, "loop").is_false());
}

TEST(PredicateConstraintsTest, FibDivergesAndWidensToTrue) {
  // Theorem 3.1 territory: fib's minimum predicate constraint has no finite
  // representation; the procedure must cap and widen to `true`.
  Program p = ParseOrDie(
      "fib(0, 1).\n"
      "fib(1, 1).\n"
      "fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n");
  InferenceOptions options;
  options.max_iterations = 8;
  options.max_disjuncts = 8;
  auto result = GenPredicateConstraints(p, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_TRUE(SetOf("", p, *result, "fib").IsTriviallyTrue());
}

TEST(PredicateConstraintsTest, PropagationAddsBodyConstraints) {
  Program p = ParseOrDie(
      "r1: q(T) :- flight(T), T <= 240.\n"
      "r3: flight(T) :- singleleg(T), T > 0.\n"
      "r4: flight(T) :- flight(T1), flight(T2), T = T1 + T2 + 30.\n");
  InferenceResult inference;
  auto out = PropagatePredicateConstraints(p, {}, {}, &inference);
  ASSERT_TRUE(out.ok());
  // The recursive rule's body flight occurrences now carry T1 > 0, T2 > 0.
  bool found = false;
  for (const Rule& rule : out->rules) {
    if (rule.body.size() == 2) {
      Conjunction lower;
      ASSERT_TRUE(
          lower.AddLinear(Atom({{rule.body[0].args[0], -1}}, 0, CmpOp::kLt))
              .ok());
      // Check rule constraints imply body-arg > 0.
      found = true;
      EXPECT_TRUE(Implies(rule.constraints, lower))
          << RenderRule(rule, *p.symbols);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PredicateConstraintsTest, PropagationCreatesCopiesPerDisjunct) {
  // Two-disjunct predicate constraint on a body literal doubles the rule
  // (footnote 4).
  Program p = ParseOrDie(
      "a(X) :- b(X), X <= 0.\n"
      "a(X) :- b(X), X >= 10.\n"
      "use(X) :- a(X).\n");
  auto out = PropagatePredicateConstraints(p, {}, {}, nullptr);
  ASSERT_TRUE(out.ok());
  int use_rules = 0;
  PredId use = p.symbols->LookupPredicate("use");
  for (const Rule& rule : out->rules) {
    if (rule.head.pred == use) ++use_rules;
  }
  EXPECT_EQ(use_rules, 2);
}

TEST(PredicateConstraintsTest, GivenConstraintsPropagated) {
  // The Table 2 mechanism: caller-supplied fib: $2 >= 1.
  Program p = ParseOrDie(
      "r3: fib(N, X) :- fib(N - 1, X1), fib(N - 2, X2), N > 1, "
      "X = X1 + X2.\n");
  PredId fib = p.symbols->LookupPredicate("fib");
  std::map<PredId, ConstraintSet> given;
  given[fib] = ConstraintSet::Of(Conj({Atom({{2, -1}}, 1, CmpOp::kLe)}));
  auto out = PropagateGivenConstraints(p, given);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rules.size(), 1u);
  const Rule& rule = out->rules[0];
  // X1 >= 1 and X2 >= 1 must now be implied by the rule constraints.
  for (const Literal& lit : rule.body) {
    Conjunction ge1;
    ASSERT_TRUE(
        ge1.AddLinear(Atom({{lit.args[1], -1}}, 1, CmpOp::kLe)).ok());
    EXPECT_TRUE(Implies(rule.constraints, ge1));
  }
}

TEST(PredicateConstraintsTest, BodyPredicateWithFalseConstraintDropsRule) {
  Program p = ParseOrDie(
      "dead(X) :- dead(X).\n"
      "q(X) :- dead(X).\n"
      "q(X) :- e(X).\n");
  auto out = PropagatePredicateConstraints(p, {}, {}, nullptr);
  ASSERT_TRUE(out.ok());
  PredId q = p.symbols->LookupPredicate("q");
  int q_rules = 0;
  for (const Rule& rule : out->rules) {
    if (rule.head.pred == q) ++q_rules;
  }
  EXPECT_EQ(q_rules, 1);  // the dead-body rule vanished
}

}  // namespace
}  // namespace cqlopt
