#include "eval/seminaive.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/rule_application.h"

namespace cqlopt {
namespace {

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

Database EdgeDb(SymbolTable* symbols,
                std::vector<std::pair<int, int>> edges) {
  Database db;
  for (auto& [u, v] : edges) {
    EXPECT_TRUE(db.AddGroundFact(symbols, "e",
                                 {Database::Value::Number(Rational(u)),
                                  Database::Value::Number(Rational(v))})
                    .ok());
  }
  return db;
}

TEST(EvalTest, TransitiveClosure) {
  Program p = ParseOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}, {2, 3}, {3, 4}});
  auto result = Evaluate(p, edb, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.reached_fixpoint);
  EXPECT_TRUE(result->stats.all_ground);
  PredId t = p.symbols->LookupPredicate("t");
  EXPECT_EQ(result->db.FactsFor(t), 6u);  // all pairs i < j
}

TEST(EvalTest, ConstraintSelectionPrunesJoin) {
  Program p = ParseOrDie("t(X, Y) :- e(X, Y), X <= 1.\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}, {2, 3}});
  auto result = Evaluate(p, edb, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.FactsFor(p.symbols->LookupPredicate("t")), 1u);
}

TEST(EvalTest, BodyFreeRulesFireOnceAtIterationZero) {
  Program p = ParseOrDie("fact(1, 2).\n fact(3, 4).\n");
  EvalOptions options;
  options.record_trace = true;
  auto result = Evaluate(p, Database(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.FactsFor(p.symbols->LookupPredicate("fact")), 2u);
  ASSERT_GE(result->trace.size(), 1u);
  EXPECT_EQ(result->trace[0].size(), 2u);
  EXPECT_TRUE(result->stats.reached_fixpoint);
  // The constraint facts must not re-derive in iteration 1.
  if (result->trace.size() > 1) {
    EXPECT_TRUE(result->trace[1].empty());
  }
}

TEST(EvalTest, ArithmeticInHeads) {
  Program p = ParseOrDie("succ(X, X + 1) :- e(X, Y).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}});
  auto result = Evaluate(p, edb, {});
  ASSERT_TRUE(result.ok());
  const Relation* rel =
      result->db.Find(p.symbols->LookupPredicate("succ"));
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->fact(0).ToString(*p.symbols), "succ(1, 2)");
}

TEST(EvalTest, JoinOnSharedVariable) {
  Program p = ParseOrDie("j(X, Z) :- e(X, Y), e(Y, Z).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}, {2, 3}, {2, 5}, {7, 8}});
  auto result = Evaluate(p, edb, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.FactsFor(p.symbols->LookupPredicate("j")), 2u);
}

TEST(EvalTest, RepeatedVariableInLiteralIsSelfJoin) {
  Program p = ParseOrDie("loop(X) :- e(X, X).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 1}, {1, 2}, {3, 3}});
  auto result = Evaluate(p, edb, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.FactsFor(p.symbols->LookupPredicate("loop")), 2u);
}

TEST(EvalTest, SymbolJoins) {
  Program p = ParseOrDie("conn(X, Z) :- leg(X, Y), leg(Y, Z).\n");
  Database db;
  auto add = [&](const char* a, const char* b) {
    ASSERT_TRUE(db.AddGroundFact(p.symbols.get(), "leg",
                                 {Database::Value::Symbol(a),
                                  Database::Value::Symbol(b)})
                    .ok());
  };
  add("msn", "ord");
  add("ord", "sea");
  add("sfo", "lax");
  auto result = Evaluate(p, db, {});
  ASSERT_TRUE(result.ok());
  const Relation* rel = result->db.Find(p.symbols->LookupPredicate("conn"));
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->fact(0).ToString(*p.symbols), "conn(msn, sea)");
}

TEST(EvalTest, NonterminatingProgramHitsCap) {
  Program p = ParseOrDie(
      "nat(0).\n"
      "nat(X + 1) :- nat(X).\n");
  EvalOptions options;
  options.max_iterations = 12;
  auto result = Evaluate(p, Database(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.reached_fixpoint);
  EXPECT_EQ(result->stats.iterations, 12);
  EXPECT_EQ(result->db.FactsFor(p.symbols->LookupPredicate("nat")), 12u);
}

TEST(EvalTest, ConstraintFactsComputedWhenUnbound) {
  // p(X; X <= 4) style derivation: head var bounded but not fixed.
  Program p = ParseOrDie("small(X) :- X <= 4, X >= 0.  q(X) :- small(X).");
  auto result = Evaluate(p, Database(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.all_ground);
  EXPECT_EQ(result->db.FactsFor(p.symbols->LookupPredicate("q")), 1u);
}

TEST(EvalTest, SemiNaiveNoRederivationFromOldFactsOnly) {
  Program p = ParseOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}, {2, 3}});
  EvalOptions options;
  options.record_trace = true;
  auto result = Evaluate(p, edb, options);
  ASSERT_TRUE(result.ok());
  // Derivation counts: iteration 0 derives t(1,2), t(2,3); iteration 1
  // derives t(1,3) (plus re-derivations through delta); once stable, the
  // final iteration derives nothing.
  EXPECT_TRUE(result->trace.back().empty());
  long inserted = result->stats.inserted;
  EXPECT_EQ(inserted, 3);
}

TEST(EvalTest, SubsumptionWithinIterationPrefersGeneralFact) {
  // Both p-rules fire in the same iteration; the specific fact must be
  // discarded in favour of the more general one regardless of order
  // (Table 1 iteration 3 behaviour).
  Program p = ParseOrDie(
      "p(X) :- e(X, Y), X = 4.\n"
      "p(X) :- e(Z, Y), X >= 0.\n");
  Database edb = EdgeDb(p.symbols.get(), {{4, 1}});
  EvalOptions options;
  options.record_trace = true;
  auto result = Evaluate(p, edb, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.FactsFor(p.symbols->LookupPredicate("p")), 1u);
  EXPECT_EQ(result->stats.subsumed, 1);
  // The kept fact is the general one.
  const Relation* rel = result->db.Find(p.symbols->LookupPredicate("p"));
  EXPECT_FALSE(rel->fact(0).IsGround());
}

TEST(EvalTest, NaiveAndSemiNaiveAgree) {
  Program p = ParseOrDie(
      "t(X, Y) :- e(X, Y), X <= 8.\n"
      "t(X, Y) :- e(X, Z), t(Z, Y), Z >= 0.\n");
  Database edb =
      EdgeDb(p.symbols.get(), {{1, 2}, {2, 3}, {3, 4}, {4, 2}, {9, 1}});
  EvalOptions semi;
  EvalOptions naive;
  naive.strategy = EvalStrategy::kNaive;
  auto a = Evaluate(p, edb, semi);
  auto b = Evaluate(p, edb, naive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  PredId t = p.symbols->LookupPredicate("t");
  EXPECT_EQ(a->db.FactsFor(t), b->db.FactsFor(t));
  EXPECT_TRUE(a->stats.reached_fixpoint);
  EXPECT_TRUE(b->stats.reached_fixpoint);
  // Naive makes strictly more (redundant) derivations.
  EXPECT_GT(b->stats.derivations, a->stats.derivations);
  // Same fact sets, entry by entry (keys are canonical).
  std::set<std::string> keys_a;
  std::set<std::string> keys_b;
  const Relation* ra = a->db.Find(t);
  const Relation* rb = b->db.Find(t);
  for (size_t i = 0; i < ra->size(); ++i) keys_a.insert(ra->fact(i).Key());
  for (size_t i = 0; i < rb->size(); ++i) keys_b.insert(rb->fact(i).Key());
  EXPECT_EQ(keys_a, keys_b);
}

TEST(EvalTest, SetImplicationSubsumptionTighter) {
  // Two overlapping interval facts plus one covered by their union: the
  // set mode stores two facts, the single mode three.
  Program p = ParseOrDie(
      "iv(X) :- lo(Y), X >= 0, X <= 6.\n"
      "iv(X) :- lo(Y), X >= 4, X <= 10.\n"
      "cover(X) :- iv(X).\n"
      "probe(X) :- lo(Y), X >= 2, X <= 8.\n"
      "iv(X) :- probe(X).\n");
  Database edb;
  ASSERT_TRUE(edb.AddGroundFact(p.symbols.get(), "lo",
                                {Database::Value::Number(Rational(0))})
                  .ok());
  EvalOptions single;
  EvalOptions set_mode;
  set_mode.subsumption = SubsumptionMode::kSetImplication;
  auto a = Evaluate(p, edb, single);
  auto b = Evaluate(p, edb, set_mode);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  PredId iv = p.symbols->LookupPredicate("iv");
  EXPECT_GT(a->db.FactsFor(iv), b->db.FactsFor(iv));
  // Ground answer sets coincide regardless of the mode.
  PredId cover = p.symbols->LookupPredicate("cover");
  EXPECT_GE(a->db.FactsFor(cover), b->db.FactsFor(cover));
}

TEST(EvalTest, TraceRendering) {
  Program p = ParseOrDie("r9: f(1).\n");
  EvalOptions options;
  options.record_trace = true;
  auto result = Evaluate(p, Database(), options);
  ASSERT_TRUE(result.ok());
  std::string trace = RenderTrace(result->trace);
  EXPECT_NE(trace.find("iteration 0: {r9:f(1)}"), std::string::npos) << trace;
}

// --- Emit-visibility contract (rule_application.h) ----------------------
//
// An emit callback may insert into the database immediately; entry storage
// is append-only, so mid-application inserts land at indexes >= the
// per-literal size snapshot AND carry birth > max_birth. Either guard alone
// keeps them out of the in-flight application, so a streaming emit derives
// exactly what a buffered emit does.

/// e(2,3), e(1,2) (in that insertion order) and t(3,4): processing e(2,3)
/// first derives t(2,4); whether e(1,2) then sees that new t fact is
/// exactly what the contract governs.
Database ChainDb(Program* p) {
  Database db;
  auto add = [&](const char* pred, int a, int b) {
    EXPECT_TRUE(db.AddGroundFact(p->symbols.get(), pred,
                                 {Database::Value::Number(Rational(a)),
                                  Database::Value::Number(Rational(b))})
                    .ok());
  };
  add("e", 2, 3);
  add("e", 1, 2);
  add("t", 3, 4);
  return db;
}

TEST(EvalTest, StreamingEmitInsertsInvisibleWithinApplication) {
  for (bool use_index : {false, true}) {
    SCOPED_TRACE(use_index ? "index" : "scan");
    Program p = ParseOrDie("t(X, Y) :- e(X, Z), t(Z, Y).\n");
    // Buffered oracle: collect derivations without touching the database.
    Database db = ChainDb(&p);
    std::vector<std::string> buffered;
    auto collect = [&](Fact fact,
                       const std::vector<Relation::FactRef>&) -> Status {
      buffered.push_back(fact.ToString(*p.symbols));
      return Status::OK();
    };
    ASSERT_TRUE(ApplyRule(p.rules[0], db, /*max_birth=*/-1,
                          /*require_delta=*/false, collect, use_index)
                    .ok());
    // Streaming: insert every derivation at birth 0 (> max_birth) as it is
    // emitted. The insert during e(2,3)'s t(2,4) must stay invisible when
    // e(1,2) enumerates t — no cascading t(1,4).
    Database db2 = ChainDb(&p);
    std::vector<std::string> streamed;
    auto stream = [&](Fact fact,
                      const std::vector<Relation::FactRef>& parents) -> Status {
      streamed.push_back(fact.ToString(*p.symbols));
      db2.AddFact(std::move(fact), /*birth=*/0, SubsumptionMode::kNone, "",
                  parents);
      return Status::OK();
    };
    ASSERT_TRUE(ApplyRule(p.rules[0], db2, /*max_birth=*/-1,
                          /*require_delta=*/false, stream, use_index)
                    .ok());
    EXPECT_EQ(buffered, std::vector<std::string>{"t(2, 4)"});
    EXPECT_EQ(streamed, buffered);
  }
}

TEST(EvalTest, StreamingInsertAtMaxBirthCascades) {
  // Contrast case documenting why the contract requires birth > max_birth:
  // the size snapshot is taken per literal *entry*, once per outer
  // candidate, so a fact inserted at a visible birth while processing
  // e(2,3) IS seen when e(1,2) later enumerates t — the application
  // cascades within a single ApplyRule call.
  for (bool use_index : {false, true}) {
    SCOPED_TRACE(use_index ? "index" : "scan");
    Program p = ParseOrDie("t(X, Y) :- e(X, Z), t(Z, Y).\n");
    Database db = ChainDb(&p);
    std::vector<std::string> streamed;
    auto stream = [&](Fact fact,
                      const std::vector<Relation::FactRef>& parents) -> Status {
      streamed.push_back(fact.ToString(*p.symbols));
      db.AddFact(std::move(fact), /*birth=*/-1, SubsumptionMode::kNone, "",
                 parents);
      return Status::OK();
    };
    ASSERT_TRUE(ApplyRule(p.rules[0], db, /*max_birth=*/-1,
                          /*require_delta=*/false, stream, use_index)
                    .ok());
    EXPECT_EQ(streamed,
              (std::vector<std::string>{"t(2, 4)", "t(1, 4)"}));
  }
}

TEST(EvalTest, RejectsNegativeMaxIterations) {
  Program p = ParseOrDie("t(X, Y) :- e(X, Y).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}});
  EvalOptions options;
  options.max_iterations = -1;
  auto result = Evaluate(p, edb, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("max_iterations"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("-1"), std::string::npos);
}

TEST(EvalTest, RejectsNegativeThreads) {
  Program p = ParseOrDie("t(X, Y) :- e(X, Y).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}});
  EvalOptions options;
  options.threads = -4;
  auto result = Evaluate(p, edb, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("threads"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("-4"), std::string::npos);
}

TEST(EvalTest, ZeroIterationsReturnsEdbWithoutFixpoint) {
  Program p = ParseOrDie("t(X, Y) :- e(X, Y).\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}});
  EvalOptions options;
  options.max_iterations = 0;
  auto result = Evaluate(p, edb, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->db.TotalFacts(), 1u);
  EXPECT_FALSE(result->stats.reached_fixpoint);
}

TEST(EvalTest, UnsatisfiableRuleNeverFires) {
  Program p = ParseOrDie("q(X) :- e(X, Y), X <= 1, X >= 2.\n");
  Database edb = EdgeDb(p.symbols.get(), {{1, 2}});
  auto result = Evaluate(p, edb, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.derivations, 0);
}

}  // namespace
}  // namespace cqlopt
