#include "core/optimizer.h"

#include <gtest/gtest.h>

namespace cqlopt {
namespace {

const char* kProgram =
    "r1: q(X, Y) :- t(X, Y), X <= 4.\n"
    "t(X, Y) :- e(X, Y).\n"
    "t(X, Y) :- e(X, Z), t(Z, Y).\n"
    "?- q(1, Y).\n";

TEST(OptimizerTest, FromTextCollectsQueries) {
  auto opt = Optimizer::FromText(kProgram);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->program().rules.size(), 3u);
  ASSERT_EQ(opt->queries().size(), 1u);
  EXPECT_EQ(opt->program().symbols->PredicateName(
                opt->queries()[0].literal.pred),
            "q");
}

TEST(OptimizerTest, FromTextParseErrorPropagates) {
  auto opt = Optimizer::FromText("q(X :- e(X).");
  EXPECT_FALSE(opt.ok());
  EXPECT_EQ(opt.status().code(), StatusCode::kParseError);
}

TEST(OptimizerTest, ParseQuerySharesSymbolTable) {
  auto opt = Optimizer::FromText(kProgram);
  ASSERT_TRUE(opt.ok());
  auto query = opt->ParseQuery("?- t(2, Y).");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->literal.pred, opt->symbols()->LookupPredicate("t"));
}

TEST(OptimizerTest, RewriteRunAnswerLoop) {
  auto opt = Optimizer::FromText(kProgram);
  ASSERT_TRUE(opt.ok());
  Database db;
  auto add = [&](int a, int b) {
    ASSERT_TRUE(db.AddGroundFact(opt->symbols(), "e",
                                 {Database::Value::Number(Rational(a)),
                                  Database::Value::Number(Rational(b))})
                    .ok());
  };
  add(1, 2);
  add(2, 3);
  add(7, 8);
  auto rewritten = opt->Rewrite(opt->queries()[0], "pred,qrp,mg");
  ASSERT_TRUE(rewritten.ok());
  auto run = opt->Run(rewritten->program, db);
  ASSERT_TRUE(run.ok());
  auto answers = QueryAnswers(*run, rewritten->query);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // q(1,2), q(1,3)
}

TEST(OptimizerTest, RewriteRejectsUnknownSequence) {
  auto opt = Optimizer::FromText(kProgram);
  ASSERT_TRUE(opt.ok());
  auto rewritten = opt->Rewrite(opt->queries()[0], "nonsense");
  EXPECT_FALSE(rewritten.ok());
}

TEST(OptimizerTest, RewriteForPredicateExposesConstraints) {
  auto opt = Optimizer::FromText(
      "q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n"
      "p1(X, Y) :- b1(X, Y).\n"
      "p2(X) :- b2(X).\n");
  ASSERT_TRUE(opt.ok());
  PredId q = opt->symbols()->LookupPredicate("q");
  auto result = opt->RewriteForPredicate(q);
  ASSERT_TRUE(result.ok());
  PredId p2 = opt->symbols()->LookupPredicate("p2");
  ASSERT_TRUE(result->qrp_constraints.count(p2) > 0);
  EXPECT_FALSE(result->qrp_constraints.at(p2).IsTriviallyTrue());
}

TEST(OptimizerTest, GmtEntryPoint) {
  auto opt = Optimizer::FromText(
      "p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).\n"
      "p(X, Y) :- u(X, Y).\n"
      "q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).\n"
      "?- X > 10, p(X, Y).\n");
  ASSERT_TRUE(opt.ok());
  auto gmt = opt->Gmt(opt->queries()[0]);
  ASSERT_TRUE(gmt.ok());
  EXPECT_FALSE(gmt->grounded.rules.empty());
}

}  // namespace
}  // namespace cqlopt
