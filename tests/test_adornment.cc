#include "transform/adornment.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace cqlopt {
namespace {

struct Parsed {
  Program program;
  Query query;
};

Parsed ParseWithQuery(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->queries.size(), 1u);
  return Parsed{parsed->program, parsed->queries[0]};
}

TEST(AdornmentTest, FullLeftToRightKeepsPredicates) {
  Parsed in = ParseWithQuery(
      "fib(0, 1).\n"
      "fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
      "?- fib(N, 5).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kFullLeftToRight);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->query_pred, in.query.literal.pred);
  EXPECT_EQ(adorned->query_adornment, "bb");
  EXPECT_EQ(adorned->program.rules.size(), in.program.rules.size());
}

TEST(AdornmentTest, BoundIfGroundQueryPattern) {
  Parsed in = ParseWithQuery(
      "q(X, Y) :- e(X, Y).\n"
      "?- q(madison, Y).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBoundIfGround);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->query_adornment, "bf");
  EXPECT_EQ(adorned->info.at(adorned->query_pred).adornment, "bf");
  EXPECT_EQ(in.program.symbols->PredicateName(adorned->query_pred), "q_bf");
}

TEST(AdornmentTest, BindingsFlowLeftToRight) {
  Parsed in = ParseWithQuery(
      "q(X, Z) :- a(X, Y), b(Y, Z).\n"
      "a(X, Y) :- e1(X, Y).\n"
      "b(X, Y) :- e2(X, Y).\n"
      "?- q(1, Z).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBoundIfGround);
  ASSERT_TRUE(adorned.ok());
  EXPECT_TRUE(in.program.symbols->HasPredicate("a_bf"));
  // Y is ground after a(X, Y) is evaluated, so b is called bound-free too.
  EXPECT_TRUE(in.program.symbols->HasPredicate("b_bf"));
}

TEST(AdornmentTest, ArithmeticDeterminationBindsArgument) {
  // fib(N - 1, X1): first argument ground when N is (the paper's reading of
  // bound-if-ground with arithmetic).
  Parsed in = ParseWithQuery(
      "fib(0, 1).\n"
      "fib(N, X) :- N > 1, fib(N - 1, X1), fib(N - 2, X2), X = X1 + X2.\n"
      "?- fib(5, X).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBoundIfGround);
  ASSERT_TRUE(adorned.ok());
  EXPECT_TRUE(in.program.symbols->HasPredicate("fib_bf"));
  EXPECT_FALSE(in.program.symbols->HasPredicate("fib_ff"));
}

TEST(AdornmentTest, DistinctPatternsSplitPredicates) {
  Parsed in = ParseWithQuery(
      "q(X, Y) :- a(X, W), a(Z, Y), W = 1, Z = 2.\n"
      "a(X, Y) :- e(X, Y).\n"
      "?- q(1, Y).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBoundIfGround);
  ASSERT_TRUE(adorned.ok());
  // First occurrence a(X, W): X bound (query), W ground via W = 1 -> bb.
  // Second occurrence a(Z, Y): Z ground via Z = 2, Y free -> bf.
  EXPECT_TRUE(in.program.symbols->HasPredicate("a_bb"));
  EXPECT_TRUE(in.program.symbols->HasPredicate("a_bf"));
}

TEST(AdornmentTest, UnreachableRulesDropped) {
  Parsed in = ParseWithQuery(
      "q(X) :- a(X).\n"
      "a(X) :- e(X).\n"
      "orphan(X) :- f(X).\n"
      "?- q(1).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBoundIfGround);
  ASSERT_TRUE(adorned.ok());
  for (const Rule& rule : adorned->program.rules) {
    EXPECT_NE(in.program.symbols->PredicateName(rule.head.pred), "orphan");
  }
}

TEST(AdornmentTest, DatabasePredicatesNotAdorned) {
  Parsed in = ParseWithQuery(
      "q(X, Y) :- e(X, Y).\n"
      "?- q(1, Y).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBoundIfGround);
  ASSERT_TRUE(adorned.ok());
  ASSERT_EQ(adorned->program.rules.size(), 1u);
  EXPECT_EQ(in.program.symbols->PredicateName(
                adorned->program.rules[0].body[0].pred),
            "e");
}

TEST(AdornmentTest, BcfMarksConstrainedArguments) {
  // The paper's Example 6.1 adornments: p^cf, q^ccf.
  Parsed in = ParseWithQuery(
      "r1: p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).\n"
      "r2: p(X, Y) :- u(X, Y).\n"
      "r3: q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).\n"
      "?- X > 10, p(X, Y).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBcf);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->query_adornment, "cf");
  EXPECT_TRUE(in.program.symbols->HasPredicate("p_cf"));
  EXPECT_TRUE(in.program.symbols->HasPredicate("q_ccf"));
}

TEST(AdornmentTest, BcfGroundStillBeatsConstrained) {
  Parsed in = ParseWithQuery(
      "q(X, Y) :- e(X, Y).\n"
      "?- q(3, Y).\n");
  auto adorned = Adorn(in.program, in.query, SipStrategy::kBcf);
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned->query_adornment, "bf");
}

}  // namespace
}  // namespace cqlopt
