// Differential-testing suite over the evaluator: for every program in
// programs/*.cql and for workloads built from the core/workload.h
// generators, the naive, global semi-naive, and SCC-stratified strategies
// must agree — same fixpoint verdict and, when a fixpoint is reached,
// databases equal under mutual subsumption — across all three
// SubsumptionModes. This is the exact-vs-exact analogue of the
// exact-vs-approximate checking in Campagna et al.'s differential setup:
// the old global loop is the oracle, the stratified+indexed evaluation the
// system under test.

#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "eval/loader.h"
#include "eval/seminaive.h"

namespace cqlopt {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(CQLOPT_PROGRAMS_DIR) + "/" + name;
}

/// Corpus-style EDB: 12 numeric tuples per database predicate (matches
/// test_corpus.cc so divergence behaviour is the same there and here).
Database SyntheticEdb(const Program& program, uint64_t seed) {
  Database db;
  for (PredId pred : program.DatabasePredicates()) {
    const std::string& name = program.symbols->PredicateName(pred);
    int arity = program.Arity(pred);
    std::mt19937_64 rng(seed + static_cast<uint64_t>(pred));
    for (int i = 0; i < 12; ++i) {
      std::vector<Database::Value> values;
      for (int a = 0; a < arity; ++a) {
        values.push_back(Database::Value::Number(
            Rational(static_cast<int64_t>(rng() % 30))));
      }
      (void)db.AddGroundFact(program.symbols.get(), name, values);
    }
  }
  return db;
}

std::vector<Fact> FactsOf(const Database& db, PredId pred) {
  std::vector<Fact> out;
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return out;
  for (size_t i = 0; i < rel->size(); ++i) {
    out.push_back(rel->fact(i));
  }
  return out;
}

std::set<std::string> KeysOf(const Database& db, PredId pred) {
  std::set<std::string> out;
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return out;
  for (size_t i = 0; i < rel->size(); ++i) {
    out.insert(rel->fact(i).Key());
  }
  return out;
}

/// Database equality under mutual subsumption, per predicate: identical
/// canonical key sets count immediately (structural identity is the common
/// case — both strategies enumerate candidates in the same order); key-set
/// mismatches fall back to the semantic check, since reconciliation may
/// keep different but equivalent representatives of the same fact set.
::testing::AssertionResult DatabasesAgree(const Database& a,
                                          const Database& b,
                                          const SymbolTable& symbols) {
  std::set<PredId> preds;
  for (const auto& [pred, rel] : a.relations()) preds.insert(pred);
  for (const auto& [pred, rel] : b.relations()) preds.insert(pred);
  for (PredId pred : preds) {
    if (KeysOf(a, pred) == KeysOf(b, pred)) continue;
    std::vector<Fact> fa = FactsOf(a, pred);
    std::vector<Fact> fb = FactsOf(b, pred);
    if (fa.empty() != fb.empty() || !SameAnswers(fa, fb)) {
      return ::testing::AssertionFailure()
             << "databases differ on " << symbols.PredicateName(pred) << " ("
             << fa.size() << " vs " << fb.size() << " facts)";
    }
  }
  return ::testing::AssertionSuccess();
}

struct StrategyRun {
  const char* name;
  EvalResult result;
};

std::vector<StrategyRun> RunAllStrategies(const Program& program,
                                          const Database& db,
                                          SubsumptionMode mode,
                                          int max_iterations, bool prepass) {
  std::vector<StrategyRun> runs;
  for (auto [name, strategy] :
       {std::pair<const char*, EvalStrategy>{"naive", EvalStrategy::kNaive},
        {"semi-naive", EvalStrategy::kSemiNaive},
        {"stratified", EvalStrategy::kStratified}}) {
    EvalOptions options;
    options.strategy = strategy;
    options.subsumption = mode;
    options.max_iterations = max_iterations;
    options.prepass = prepass;
    auto run = Evaluate(program, db, options);
    EXPECT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    runs.push_back(StrategyRun{name, std::move(*run)});
  }
  return runs;
}

void ExpectStrategiesAgree(const Program& program, const Database& db,
                           const std::string& label,
                           int max_iterations = 48) {
  // Full matrix: strategies × subsumption modes × prepass on/off. The
  // prepass-on arm records a storage fingerprint per subsumption mode; the
  // prepass-off arm must reproduce it byte for byte — the approximate
  // decision tier never changes a verdict, a fact, or a counter.
  std::map<std::string, std::string> on_fingerprints;
  auto fingerprint = [](const EvalResult& r) {
    std::string out;
    for (const auto& [pred, rel] : r.db.relations()) {
      out += std::to_string(pred) + "{";
      for (size_t i = 0; i < rel.size(); ++i) {
        out += rel.fact(i).Key() + "@" + std::to_string(rel.birth(i)) + ";";
      }
      out += "}";
    }
    out += "|d=" + std::to_string(r.stats.derivations) +
           " i=" + std::to_string(r.stats.inserted) +
           " s=" + std::to_string(r.stats.subsumed) +
           " it=" + std::to_string(r.stats.iterations);
    return out;
  };
  for (bool prepass : {true, false}) {
    for (auto [mode_name, mode] :
         {std::pair<const char*, SubsumptionMode>{"none",
                                                  SubsumptionMode::kNone},
          {"single-fact", SubsumptionMode::kSingleFact},
          {"set-implication", SubsumptionMode::kSetImplication}}) {
      SCOPED_TRACE(label + " / subsumption=" + mode_name +
                   (prepass ? " / prepass=on" : " / prepass=off"));
      auto runs = RunAllStrategies(program, db, mode, max_iterations, prepass);
      const EvalResult& oracle = runs[1].result;  // global semi-naive
      for (const StrategyRun& run : runs) {
        EXPECT_EQ(run.result.stats.reached_fixpoint,
                  oracle.stats.reached_fixpoint)
            << run.name;
        // The toggle must gate the tier completely.
        if (!prepass) {
          EXPECT_EQ(run.result.stats.prepass_conclusive, 0) << run.name;
          EXPECT_EQ(run.result.stats.prepass_fallback, 0) << run.name;
        }
      }
      if (!oracle.stats.reached_fixpoint) continue;  // capped: frontiers
                                                     // differ
      for (const StrategyRun& run : runs) {
        SCOPED_TRACE(run.name);
        EXPECT_TRUE(
            DatabasesAgree(run.result.db, oracle.db, *program.symbols));
        EXPECT_EQ(run.result.stats.all_ground, oracle.stats.all_ground);
      }
      // Stratified bookkeeping must be coherent: per-stratum iterations sum
      // to the global count, and every derivation is attributed to a rule.
      const EvalStats& stratified = runs[2].result.stats;
      long scc_sum = 0;
      for (long n : stratified.scc_iterations) scc_sum += n;
      EXPECT_EQ(scc_sum, stratified.iterations);
      long per_rule = 0;
      for (const auto& [rule, n] : stratified.derivations_per_rule) {
        per_rule += n;
      }
      EXPECT_EQ(per_rule, stratified.derivations);
      // Cross-arm byte identity, per subsumption mode: the prepass-off
      // stratified run must reproduce the prepass-on one exactly.
      std::string fp = fingerprint(runs[2].result);
      if (prepass) {
        on_fingerprints[mode_name] = fp;
      } else {
        auto it = on_fingerprints.find(mode_name);
        if (it != on_fingerprints.end()) {
          EXPECT_EQ(fp, it->second)
              << "prepass-off storage/stats diverged from prepass-on";
        }
      }
    }
  }
}

class CorpusDifferentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusDifferentialTest, StrategiesAgree) {
  std::string text = ReadFile(ProgramPath(GetParam()));
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& program = parsed->program;
  Database db;
  if (std::string(GetParam()) == "flights.cql") {
    auto loaded = LoadDatabaseText(ReadFile(ProgramPath("flights_edb.cql")),
                                   program.symbols, &db);
    ASSERT_TRUE(loaded.ok());
  } else {
    db = SyntheticEdb(program, 1234);
  }
  // fib.cql diverges bottom-up under every strategy; a low cap keeps the
  // naive oracle from re-deriving the exploding frontier for 48 rounds
  // while still observing the shared divergence verdict.
  int cap = std::string(GetParam()) == "fib.cql" ? 14 : 48;
  ExpectStrategiesAgree(program, db, GetParam(), cap);
}

INSTANTIATE_TEST_SUITE_P(Programs, CorpusDifferentialTest,
                         ::testing::Values("flights.cql", "fib.cql",
                                           "example41.cql", "example42.cql",
                                           "example61.cql", "example71.cql",
                                           "example72.cql"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

Program ParseOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->program;
}

TEST(WorkloadDifferentialTest, TransitiveClosureOnLayeredGraph) {
  Program p = ParseOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n");
  Database db;
  ASSERT_TRUE(AddLayeredGraph(p.symbols.get(), "e", 5, 4, 2, 7, &db).ok());
  ExpectStrategiesAgree(p, db, "tc/layered-graph");
}

TEST(WorkloadDifferentialTest, MultiStratumSelectionOverClosure) {
  // Three strata above the EDB: t (recursive), then s, then top — exercises
  // the freeze-lower-strata discipline, not just single-SCC equivalence.
  Program p = ParseOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "s(X, Y) :- t(X, Y), X <= 5.\n"
      "top(X) :- s(X, Y), t(Y, Z).\n");
  Database db;
  ASSERT_TRUE(AddLayeredGraph(p.symbols.get(), "e", 4, 3, 2, 11, &db).ok());
  ExpectStrategiesAgree(p, db, "multi-stratum/layered-graph");
}

TEST(WorkloadDifferentialTest, FlightNetworkSymbolJoins) {
  Program p = ParseOrDie(
      "cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n"
      "cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n"
      "flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.\n"
      "flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), "
      "T = T1 + T2 + 30, C = C1 + C2.\n");
  Database db;
  FlightNetworkSpec spec;
  spec.airports = 8;
  spec.legs = 16;
  spec.seed = 5;
  ASSERT_TRUE(AddFlightNetwork(p.symbols.get(), spec, &db).ok());
  ExpectStrategiesAgree(p, db, "flights/generated-network");

  // The recursive flight join binds the connecting airport to a symbol, so
  // the stratified strategy must actually exercise the hash index here.
  EvalOptions options;
  options.strategy = EvalStrategy::kStratified;
  auto run = Evaluate(p, db, options);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->stats.index_probes, 0);
  EXPECT_LT(run->stats.index_candidates, run->stats.indexed_scan_equivalent);
}

TEST(WorkloadDifferentialTest, BinaryRelationJoin) {
  Program p = ParseOrDie(
      "j(X, Z) :- b1(X, Y), b2(Y, Z), X <= 20.\n"
      "k(X) :- j(X, Y), j(Y, Z).\n");
  Database db;
  ASSERT_TRUE(AddBinaryRelation(p.symbols.get(), "b1", 40, 12, 3, &db).ok());
  ASSERT_TRUE(AddBinaryRelation(p.symbols.get(), "b2", 40, 12, 4, &db).ok());
  ExpectStrategiesAgree(p, db, "binary-join");
}

TEST(WorkloadDifferentialTest, UnaryConstraintFactsAcrossStrata) {
  // Constraint facts (body-free rules with non-ground heads) must fire in
  // the first iteration of their own stratum, and subsumption must behave
  // identically in all strategies.
  Program p = ParseOrDie(
      "base(X) :- X >= 0, X <= 10.\n"
      "base(X) :- X >= 3, X <= 5.\n"
      "lifted(X) :- base(X), u(X).\n");
  Database db;
  ASSERT_TRUE(AddUnaryRelation(p.symbols.get(), "u", 20, 15, 9, &db).ok());
  ExpectStrategiesAgree(p, db, "constraint-facts");
}

}  // namespace
}  // namespace cqlopt
