#include "ast/printer.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace cqlopt {
namespace {

TEST(PrinterTest, RendersRuleWithLabelBodyAndConstraints) {
  auto parsed = ParseProgram("r1: q(X, Y) :- e(X, Y), X <= 4.");
  ASSERT_TRUE(parsed.ok());
  std::string out = RenderRule(parsed->program.rules[0],
                               *parsed->program.symbols);
  EXPECT_EQ(out, "r1: q(X, Y) :- e(X, Y), X <= 4.");
}

TEST(PrinterTest, RendersConstraintFact) {
  auto parsed = ParseProgram("fib(0, 1).");
  ASSERT_TRUE(parsed.ok());
  std::string out = RenderRule(parsed->program.rules[0],
                               *parsed->program.symbols);
  // Constants were normalized to fresh vars with equality constraints.
  EXPECT_NE(out.find("fib("), std::string::npos);
  EXPECT_NE(out.find("= 0"), std::string::npos);
  EXPECT_NE(out.find("= 1"), std::string::npos);
}

TEST(PrinterTest, RendersSymbolsByName) {
  auto parsed = ParseProgram("q(X) :- hub(X), X = madison.");
  ASSERT_TRUE(parsed.ok());
  std::string out = RenderRule(parsed->program.rules[0],
                               *parsed->program.symbols);
  EXPECT_NE(out.find("madison"), std::string::npos);
}

TEST(PrinterTest, GreaterThanRestoredFromNormalizedForm) {
  auto parsed = ParseProgram("q(X) :- e(X), X > 0.");
  ASSERT_TRUE(parsed.ok());
  std::string out = RenderRule(parsed->program.rules[0],
                               *parsed->program.symbols);
  EXPECT_NE(out.find("X > 0"), std::string::npos);
}

TEST(PrinterTest, DisambiguatesCollidingVariableNames) {
  // Force a collision: two rules merged by hand with the same name "X" on
  // different variables.
  auto parsed = ParseProgram("q(X) :- e(X).");
  ASSERT_TRUE(parsed.ok());
  Rule rule = parsed->program.rules[0];
  VarId other = 9000;
  rule.body.push_back(Literal(rule.body[0].pred, {other}));
  rule.var_names[other] = "X";
  std::string out = RenderRule(rule, *parsed->program.symbols);
  EXPECT_NE(out.find("X_2"), std::string::npos) << out;
}

TEST(PrinterTest, RenderQueryShowsConstraints) {
  auto parsed = ParseProgram("e(1, 2). ?- e(X, Y), X <= 3.");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->queries.size(), 1u);
  std::string out = RenderQuery(parsed->queries[0], *parsed->program.symbols);
  EXPECT_EQ(out.rfind("?- e(", 0), 0u) << out;
  EXPECT_NE(out.find("<= 3"), std::string::npos);
}

TEST(PrinterTest, RenderConstraintSetSortsDisjuncts) {
  Conjunction a;
  ASSERT_TRUE(
      a.AddLinear(LinearConstraint(LinearExpr::Var(1), CmpOp::kLt)).ok());
  Conjunction b;
  ASSERT_TRUE(
      b.AddLinear(LinearConstraint(-LinearExpr::Var(1), CmpOp::kLt)).ok());
  ConstraintSet s1 = ConstraintSet::Of(a);
  s1.AddDisjunct(b);
  ConstraintSet s2 = ConstraintSet::Of(b);
  s2.AddDisjunct(a);
  SymbolTable symbols;
  EXPECT_EQ(RenderConstraintSet(s1, symbols, DollarNames()),
            RenderConstraintSet(s2, symbols, DollarNames()));
}

TEST(PrinterTest, DollarNamesRenderPositions) {
  EXPECT_EQ(DollarNames()(3), "$3");
}

}  // namespace
}  // namespace cqlopt
